//! Fault-injection campaign (`faults` binary).
//!
//! Sweeps a row set of clean workloads **and** attack scenarios against
//! every [`rest_faults::FaultKind`] (plus a fault-free reference cell
//! per row), all under the paper's `rest-secure-full` configuration,
//! and classifies each run's outcome five ways:
//!
//! | outcome | meaning |
//! |---|---|
//! | `detected` | the run stopped with a REST violation |
//! | `masked` | clean exit, checksum matches the fault-free reference |
//! | `sdc` | clean exit, checksum **differs** — silent data corruption |
//! | `hang` | the guest cycle/uop budget expired (watchdog) |
//! | `crash` | guest fault or nonzero exit |
//!
//! Two derived flags capture the security-relevant deltas against the
//! fault-free reference cell of the same row:
//!
//! * **missed detection** — the reference detected a violation but the
//!   faulted run exited clean (a fail-open metadata fault defeated the
//!   defence),
//! * **false positive** — the reference exited clean but the faulted
//!   run raised a violation (a fail-closed fault fired spuriously).
//!
//! The campaign writes a detection-coverage table to stdout and a
//! `rest-faults/v1` JSON document to `results/faults.json`, both
//! byte-identical at any `--jobs` level. Finished cells are
//! checkpointed periodically ([`crate::checkpoint`]); an interrupted
//! campaign (`--max-cells N`, a crash, ^C between chunks) resumes with
//! `--resume` and produces byte-identical final output.

use rest_attacks::Attack;
use rest_core::Mode;
use rest_cpu::{SimResult, StopReason};
use rest_faults::{FaultKind, FaultSpec};
use rest_obs::Json;
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload};

use crate::checkpoint::Checkpoint;
use crate::cli::{BenchCli, Harness};
use crate::engine::{JobError, SimJob};
use crate::FigureRow;

/// Campaign document schema identifier.
pub const SCHEMA: &str = "rest-faults/v1";

/// Cells simulated between checkpoint saves.
const CKPT_CHUNK: usize = 8;

/// The campaign's expected fail-open cells at the default seed and test
/// scale: `(row, fault kind)` pairs where the fault-free reference
/// detects the attack but the faulted run sails through. Each is a
/// *documented* weakness of the injected fault model, not a simulator
/// bug:
///
/// * `meta-bit-clear` / `token-byte-flip` on `heap-overflow-write` —
///   the fault corrupts the armed redzone token before the overflow
///   lands, so the tripwire compare no longer matches and the store
///   goes through silently (fail-open metadata loss).
/// * `exception-suppress` on `heap-overflow-write` and
///   `use-after-free` — the detection fires but the fault swallows the
///   precise exception, so the guest keeps running (fail-open delivery
///   loss).
///
/// Any campaign run at [`BenchCli::DEFAULT_FAULT_SEED`]/`--test` whose
/// missed-detection set differs from this table **in either
/// direction** exits 1: a vanished miss is a silent fault-model change
/// just as much as a new one.
pub const KNOWN_MISSED_DETECTIONS: [(&str, &str); 4] = [
    ("heap-overflow-write", "meta-bit-clear"),
    ("heap-overflow-write", "token-byte-flip"),
    ("heap-overflow-write", "exception-suppress"),
    ("use-after-free", "exception-suppress"),
];

/// The expected fail-closed cells at the default seed and test scale:
/// clean workloads where a fault spuriously raises a violation.
/// `exception-spurious` plants a trap with no underlying access
/// violation, so both benign rows flag it; held to the same
/// both-direction drift gate as [`KNOWN_MISSED_DETECTIONS`].
pub const KNOWN_FALSE_POSITIVES: [(&str, &str); 2] = [
    ("lbm", "exception-spurious"),
    ("sjeng", "exception-spurious"),
];

/// One campaign row: a clean workload (expected to exit 0) or an attack
/// scenario (expected to be detected when fault-free).
#[derive(Debug, Clone, Copy)]
pub enum CampaignRow {
    /// A benign benchmark row.
    Workload(FigureRow),
    /// A memory-error attack scenario.
    Attack(Attack),
}

impl CampaignRow {
    /// Display name of the row.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignRow::Workload(row) => row.name,
            CampaignRow::Attack(a) => a.name(),
        }
    }

    /// `"workload"` or `"attack"` (serialised into the document).
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignRow::Workload(_) => "workload",
            CampaignRow::Attack(_) => "attack",
        }
    }

    /// The simulation job for this row under `spec` (None = the
    /// fault-free reference cell).
    fn job(&self, label: &str, spec: Option<FaultSpec>, scale: Scale, budget: u64) -> SimJob {
        let rt = RtConfig::rest(Mode::Secure, true);
        let mut job = match self {
            CampaignRow::Workload(row) => SimJob::new(row, label, rt, scale),
            CampaignRow::Attack(a) => SimJob::for_attack(*a, label, rt, scale),
        };
        // Any stop is data here — a violation on an attack row is the
        // expected reference outcome, not a failure.
        job.accept_any_stop = true;
        // Deterministic watchdog: a fault that livelocks the guest
        // classifies as "hang" identically on every host. The host
        // wall-clock deadline stays off — it is not deterministic.
        job.max_cycles = budget;
        job.fault = spec;
        job
    }
}

/// The campaign's row set: two clean workloads (false-positive
/// sentinels) and three attacks (missed-detection sentinels).
pub fn campaign_rows() -> Vec<CampaignRow> {
    vec![
        CampaignRow::Workload(FigureRow::of(Workload::Lbm)),
        CampaignRow::Workload(FigureRow::of(Workload::Sjeng)),
        CampaignRow::Attack(Attack::HeapOverflowWrite),
        CampaignRow::Attack(Attack::UseAfterFree),
        CampaignRow::Attack(Attack::Heartbleed),
    ]
}

/// The per-row fault column set: the fault-free reference first, then
/// one default [`FaultSpec`] per kind. Each row mixes the base seed
/// with its index so rows corrupt different token bits.
pub fn campaign_specs(fault_seed: u64, row_idx: usize) -> Vec<Option<FaultSpec>> {
    let seed = rest_faults::splitmix64(fault_seed ^ (row_idx as u64).wrapping_mul(0x9E37_79B9));
    let mut specs = vec![None];
    specs.extend(FaultKind::ALL.iter().map(|k| Some(k.default_spec(seed))));
    specs
}

/// Column labels, aligned with [`campaign_specs`] order.
fn column_labels() -> Vec<&'static str> {
    let mut labels = vec!["fault-free"];
    labels.extend(FaultKind::ALL.iter().map(|k| k.name()));
    labels
}

/// Guest cycle budget per cell: generous (every fault-free run fits
/// with two orders of magnitude to spare) but bounded, so a livelocked
/// guest classifies as `hang` instead of wedging the campaign.
fn cycle_budget(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 20_000_000,
        Scale::Ref => 400_000_000,
    }
}

/// FNV-1a over everything architecturally observable from a clean run:
/// the guest's output stream, its committed-instruction count, and the
/// allocator's externally visible counters. Cycle counts are excluded
/// on purpose — a fault that only perturbs *timing* is masked, not SDC.
pub fn result_checksum(result: &SimResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&result.output);
    for word in [
        result.core.insts,
        result.alloc.allocs,
        result.alloc.frees,
        result.alloc.bytes_requested,
        result.alloc.live_bytes,
        result.alloc.bad_frees,
    ] {
        eat(&word.to_le_bytes());
    }
    h
}

/// Deterministic name for a stop reason.
fn stop_name(stop: &StopReason) -> String {
    match stop {
        StopReason::Exit(0) => "exit-0".to_string(),
        StopReason::Exit(code) => format!("exit-{code}"),
        StopReason::Halted => "halted".to_string(),
        StopReason::Violation(_) => "violation".to_string(),
        StopReason::UopLimit => "uop-limit".to_string(),
        StopReason::CycleLimit => "cycle-limit".to_string(),
        StopReason::Fault(_) => "guest-fault".to_string(),
    }
}

fn fault_spec_json(spec: &FaultSpec) -> Json {
    Json::obj(vec![
        ("kind", Json::from(spec.kind.name())),
        ("seed", Json::UInt(spec.seed)),
        ("window_start", Json::UInt(spec.window_start)),
        ("window_len", Json::UInt(spec.window_len)),
        ("trigger_event", Json::UInt(spec.trigger_event())),
    ])
}

/// The raw (classification-free) JSON of one finished cell — exactly
/// what the checkpoint stores. Integer-only members, so the
/// serialise→parse round trip through the checkpoint is lossless.
fn raw_cell_json(
    label: &str,
    spec: Option<&FaultSpec>,
    outcome: &Result<SimResult, JobError>,
) -> Json {
    let mut members = vec![
        ("label", Json::from(label)),
        (
            "fault",
            spec.map(fault_spec_json).unwrap_or(Json::Null),
        ),
    ];
    match outcome {
        Err(e) => members.push((
            "error",
            Json::obj(vec![
                ("kind", Json::from(e.kind.as_str())),
                ("detail", Json::from(e.detail.as_str())),
            ]),
        )),
        Ok(result) => {
            let detected = matches!(result.stop, StopReason::Violation(_));
            let clean = matches!(result.stop, StopReason::Exit(0) | StopReason::Halted);
            members.push(("stop", Json::Str(stop_name(&result.stop))));
            members.push(("detected", Json::Bool(detected)));
            members.push(("clean_exit", Json::Bool(clean)));
            if clean {
                members.push((
                    "checksum",
                    Json::from(format!("{:#018x}", result_checksum(result))),
                ));
            }
            if let Some(report) = &result.fault {
                members.push((
                    "fault_report",
                    Json::obj(vec![
                        ("kind", Json::from(report.kind)),
                        ("triggered", Json::Bool(report.triggered)),
                        ("site_events", Json::UInt(report.site_events)),
                        ("trigger_event", Json::UInt(report.trigger_event)),
                        ("records", Json::UInt(report.records)),
                        ("suppressed_hits", Json::UInt(report.suppressed_hits)),
                    ]),
                ));
            }
            // Provenance: how many audit entries the injector left
            // behind, next to the total (which includes architectural
            // violations).
            let injector_entries = result
                .audit
                .entries()
                .iter()
                .filter(|e| e.detector == rest_obs::FAULT_INJECTOR)
                .count() as u64;
            members.push(("audit_total", Json::UInt(result.audit.total())));
            members.push(("audit_injector_entries", Json::UInt(injector_entries)));
        }
    }
    Json::obj(members)
}

/// Classification of one stored cell against its row's fault-free
/// reference cell: `(outcome, missed_detection, false_positive)`.
fn classify(cell: &Json, reference: &Json) -> (&'static str, bool, bool) {
    let truthy = |j: &Json, key: &str| j.get(key) == Some(&Json::Bool(true));
    if cell.get("error").is_some() {
        return ("error", false, false);
    }
    let detected = truthy(cell, "detected");
    let clean = truthy(cell, "clean_exit");
    let stop = cell.get("stop").and_then(Json::as_str).unwrap_or("");
    let ref_detected = truthy(reference, "detected");
    let ref_clean = truthy(reference, "clean_exit");
    let outcome = if detected {
        "detected"
    } else if stop == "cycle-limit" || stop == "uop-limit" {
        "hang"
    } else if clean {
        // A clean exit whose observable state matches the fault-free
        // reference is masked; any divergence (including "the
        // reference never exited cleanly at all") is silent data
        // corruption.
        let matches_ref =
            reference.get("checksum").is_some() && cell.get("checksum") == reference.get("checksum");
        if matches_ref {
            "masked"
        } else {
            "sdc"
        }
    } else {
        "crash"
    };
    let missed_detection = ref_detected && clean;
    let false_positive = ref_clean && detected;
    (outcome, missed_detection, false_positive)
}

/// Appends the classification members to a stored raw cell.
fn classified_cell(cell: &Json, reference: &Json) -> Json {
    let (outcome, missed, fp) = classify(cell, reference);
    let mut members = match cell {
        Json::Obj(m) => m.clone(),
        other => vec![("cell".to_string(), other.clone())],
    };
    members.push(("outcome".to_string(), Json::from(outcome)));
    members.push(("missed_detection".to_string(), Json::Bool(missed)));
    members.push(("false_positive".to_string(), Json::Bool(fp)));
    Json::Obj(members)
}

/// Runs the full campaign: simulate (or resume) every cell, checkpoint
/// periodically, then — unless interrupted by `--max-cells` — classify,
/// print the coverage table, write `results/faults.json`, and delete
/// the checkpoint.
pub fn run_campaign(h: &mut Harness) {
    let cli = h.cli.clone();
    let rows = campaign_rows();
    let budget = cycle_budget(cli.scale);
    let labels = column_labels();

    // Every cell of the campaign, row-major, with its stable key.
    struct Cell {
        row: usize,
        spec: Option<FaultSpec>,
        job: SimJob,
        key: String,
    }
    let mut cells = Vec::new();
    for (r, row) in rows.iter().enumerate() {
        for (c, spec) in campaign_specs(cli.fault_seed, r).into_iter().enumerate() {
            let job = row.job(labels[c], spec, cli.scale, budget);
            let key = job.cache_key();
            cells.push(Cell {
                row: r,
                spec,
                job,
                key,
            });
        }
    }

    // The fingerprint pins the checkpoint to these exact parameters.
    let fingerprint = format!(
        "{SCHEMA}|{}|seed={:#x}|budget={}|rows={}",
        cli.scale_name(),
        cli.fault_seed,
        budget,
        rows.iter().map(CampaignRow::name).collect::<Vec<_>>().join(",")
    );
    let mut ckpt = Checkpoint::open(&cli.ckpt_path(), &fingerprint, cli.resume);

    let pending: Vec<&Cell> = cells.iter().filter(|c| ckpt.get(&c.key).is_none()).collect();
    let cell_limit = cli.max_cells.unwrap_or(usize::MAX);
    let mut fresh = 0usize;
    let mut interrupted = false;
    for chunk in pending.chunks(CKPT_CHUNK) {
        let take = cell_limit.saturating_sub(fresh).min(chunk.len());
        if take == 0 {
            interrupted = true;
            break;
        }
        let chunk = &chunk[..take];
        let jobs: Vec<SimJob> = chunk.iter().map(|c| c.job.clone()).collect();
        let outcomes = h.run_all(&jobs);
        for (cell, outcome) in chunk.iter().zip(&outcomes) {
            ckpt.insert(
                cell.key.clone(),
                raw_cell_json(&cell.job.label, cell.spec.as_ref(), outcome),
            );
        }
        fresh += chunk.len();
        if let Err(e) = ckpt.save() {
            eprintln!("# FAILED writing checkpoint: {e}");
            std::process::exit(1);
        }
        if fresh >= cell_limit && fresh < pending.len() {
            interrupted = true;
            break;
        }
    }
    if interrupted {
        eprintln!(
            "# faults: stopped after {fresh} fresh cell(s) (--max-cells); \
             {} of {} recorded — rerun with --resume to finish",
            ckpt.len(),
            cells.len()
        );
        return;
    }

    // Assemble the final document from the checkpoint (every cell is
    // recorded by now, whether simulated this run or resumed).
    let per_row: Vec<Vec<&Json>> = rows
        .iter()
        .enumerate()
        .map(|(r, _)| {
            cells
                .iter()
                .filter(|c| c.row == r)
                .map(|c| ckpt.get(&c.key).expect("campaign completed every cell"))
                .collect()
        })
        .collect();

    // Coverage counters over all cells, plus the two derived flags.
    let mut counts: Vec<(&'static str, u64)> = [
        "detected", "masked", "sdc", "hang", "crash", "error",
    ]
    .iter()
    .map(|&k| (k, 0u64))
    .collect();
    let (mut missed_total, mut fp_total) = (0u64, 0u64);
    let (mut actual_missed, mut actual_fps) = (Vec::new(), Vec::new());
    let fault_kind = |cell: &Json| {
        cell.get("fault")
            .and_then(|f| f.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("fault-free")
            .to_string()
    };

    crate::print_machine_header(
        "faults — fault-injection detection coverage (rest-secure-full)",
    );
    print!("{:<22}{:<10}", "row", "kind");
    for label in &labels {
        print!("{label:>20}");
    }
    println!();
    let mut row_docs = Vec::new();
    for (r, row) in rows.iter().enumerate() {
        let reference = per_row[r][0];
        print!("{:<22}{:<10}", row.name(), row.kind());
        let mut cell_docs = Vec::new();
        for cell in &per_row[r] {
            let (outcome, missed, fp) = classify(cell, reference);
            for entry in counts.iter_mut() {
                if entry.0 == outcome {
                    entry.1 += 1;
                }
            }
            missed_total += missed as u64;
            fp_total += fp as u64;
            if missed {
                actual_missed.push((row.name().to_string(), fault_kind(cell)));
            }
            if fp {
                actual_fps.push((row.name().to_string(), fault_kind(cell)));
            }
            let marker = if missed {
                " *MISS"
            } else if fp {
                " *FP"
            } else {
                ""
            };
            print!("{:>20}", format!("{outcome}{marker}"));
            cell_docs.push(classified_cell(cell, reference));
        }
        println!();
        row_docs.push(Json::obj(vec![
            ("name", Json::from(row.name())),
            ("kind", Json::from(row.kind())),
            ("cells", Json::Arr(cell_docs)),
        ]));
    }
    println!();
    println!(
        "missed detections: {missed_total}   false positives: {fp_total}"
    );

    // The expected-outcome drift gate only binds the configuration the
    // committed document (and the tables above) describe; other seeds
    // or scales legitimately produce different fail-open/fail-closed
    // sets and are reported without judgement.
    let expected_checked =
        cli.fault_seed == BenchCli::DEFAULT_FAULT_SEED && cli.scale == Scale::Test;
    let diff_known = |what: &str, known: &[(&str, &str)], actual: &[(String, String)]| {
        let mut drift = Vec::new();
        for (row, kind) in known {
            if !actual.iter().any(|(r, k)| r == row && k == kind) {
                drift.push(format!("{what} ({row}, {kind}) expected but gone"));
            }
        }
        for (row, kind) in actual {
            if !known.iter().any(|(r, k)| r == row && k == kind) {
                drift.push(format!("{what} ({row}, {kind}) appeared, not in the known table"));
            }
        }
        drift
    };
    let mut drift = Vec::new();
    if expected_checked {
        drift.extend(diff_known(
            "missed detection",
            &KNOWN_MISSED_DETECTIONS,
            &actual_missed,
        ));
        drift.extend(diff_known(
            "false positive",
            &KNOWN_FALSE_POSITIVES,
            &actual_fps,
        ));
    }

    let known_json = |known: &[(&str, &str)]| {
        Json::Arr(
            known
                .iter()
                .map(|&(row, kind)| {
                    Json::obj(vec![("row", Json::from(row)), ("fault", Json::from(kind))])
                })
                .collect(),
        )
    };

    let mut sink = crate::sink::ResultSink::new(&cli);
    sink.push("schema", Json::from(SCHEMA));
    sink.push("fault_seed", Json::UInt(cli.fault_seed));
    sink.push("mode", Json::from("rest-secure-full"));
    sink.push("max_cycles", Json::UInt(budget));
    sink.push("columns", Json::Arr(labels.iter().map(|&l| Json::from(l)).collect()));
    sink.push("rows", Json::Arr(row_docs));
    let mut coverage: Vec<(&str, Json)> = counts
        .into_iter()
        .map(|(k, n)| (k, Json::UInt(n)))
        .collect();
    coverage.push(("missed_detections", Json::UInt(missed_total)));
    coverage.push(("false_positives", Json::UInt(fp_total)));
    sink.push("coverage", Json::obj(coverage));
    sink.push(
        "expected_outcomes",
        Json::obj(vec![
            ("checked", Json::Bool(expected_checked)),
            ("known_missed_detections", known_json(&KNOWN_MISSED_DETECTIONS)),
            ("known_false_positives", known_json(&KNOWN_FALSE_POSITIVES)),
        ]),
    );
    sink.finish();
    ckpt.remove();

    if !drift.is_empty() {
        eprintln!(
            "faults: detection coverage drifted from the known-outcome table \
             (update KNOWN_MISSED_DETECTIONS / KNOWN_FALSE_POSITIVES deliberately \
             if the fault model changed):"
        );
        for line in &drift {
            eprintln!("faults:   {line}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::BenchCli;

    #[test]
    fn campaign_shape_is_stable() {
        let rows = campaign_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.iter().filter(|r| r.kind() == "attack").count(), 3);
        let specs = campaign_specs(BenchCli::DEFAULT_FAULT_SEED, 0);
        assert_eq!(specs.len(), 1 + FaultKind::ALL.len());
        assert!(specs[0].is_none());
        assert_eq!(column_labels().len(), specs.len());
        // Different rows get different fault seeds.
        let other = campaign_specs(BenchCli::DEFAULT_FAULT_SEED, 1);
        assert_ne!(specs[1].unwrap().seed, other[1].unwrap().seed);
    }

    #[test]
    fn classification_matrix() {
        let cell = |detected: bool, clean: bool, stop: &str, sum: Option<&str>| {
            let mut m = vec![
                ("detected", Json::Bool(detected)),
                ("clean_exit", Json::Bool(clean)),
                ("stop", Json::from(stop)),
            ];
            if let Some(s) = sum {
                m.push(("checksum", Json::from(s)));
            }
            Json::obj(m)
        };
        let clean_ref = cell(false, true, "exit-0", Some("0xaa"));
        let detected_ref = cell(true, false, "violation", None);

        // Fault-free cells classify against themselves.
        assert_eq!(
            classify(&clean_ref, &clean_ref),
            ("masked", false, false)
        );
        assert_eq!(
            classify(&detected_ref, &detected_ref),
            ("detected", false, false)
        );
        // Fail-open: reference detected, faulted run sailed through.
        assert_eq!(
            classify(&cell(false, true, "exit-0", Some("0xbb")), &detected_ref),
            ("sdc", true, false)
        );
        // Fail-closed: clean reference, faulted run raised a violation.
        assert_eq!(
            classify(&cell(true, false, "violation", None), &clean_ref),
            ("detected", false, true)
        );
        // Checksum divergence on a clean row is SDC, not masked.
        assert_eq!(
            classify(&cell(false, true, "exit-0", Some("0xbb")), &clean_ref),
            ("sdc", false, false)
        );
        // Budget expiry is a hang; guest faults are crashes.
        assert_eq!(
            classify(&cell(false, false, "cycle-limit", None), &clean_ref),
            ("hang", false, false)
        );
        assert_eq!(
            classify(&cell(false, false, "guest-fault", None), &clean_ref),
            ("crash", false, false)
        );
        // Engine-level failures surface as "error".
        let err = Json::obj(vec![("error", Json::obj(vec![]))]);
        assert_eq!(classify(&err, &clean_ref), ("error", false, false));
    }

    #[test]
    fn committed_document_matches_known_outcome_tables() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/faults.json");
        let text = std::fs::read_to_string(path).expect("results/faults.json is committed");
        let doc = Json::parse(&text).expect("committed document parses");
        // The committed document is the configuration the tables bind.
        assert_eq!(
            doc.get("fault_seed").and_then(Json::as_u64),
            Some(BenchCli::DEFAULT_FAULT_SEED)
        );
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("test"));

        let mut missed = Vec::new();
        let mut fps = Vec::new();
        for row in doc.get("rows").and_then(Json::as_arr).unwrap() {
            let name = row.get("name").and_then(Json::as_str).unwrap().to_string();
            for cell in row.get("cells").and_then(Json::as_arr).unwrap() {
                let kind = cell
                    .get("fault")
                    .and_then(|f| f.get("kind"))
                    .and_then(Json::as_str)
                    .unwrap_or("fault-free")
                    .to_string();
                if cell.get("missed_detection") == Some(&Json::Bool(true)) {
                    missed.push((name.clone(), kind.clone()));
                }
                if cell.get("false_positive") == Some(&Json::Bool(true)) {
                    fps.push((name.clone(), kind));
                }
            }
        }
        let owned = |t: &[(&str, &str)]| -> Vec<(String, String)> {
            t.iter()
                .map(|&(r, k)| (r.to_string(), k.to_string()))
                .collect()
        };
        assert_eq!(missed, owned(&KNOWN_MISSED_DETECTIONS), "fail-open set drifted");
        assert_eq!(fps, owned(&KNOWN_FALSE_POSITIVES), "fail-closed set drifted");

        // The document's own copy of the tables matches the source.
        let expected = doc.get("expected_outcomes").expect("tables serialised");
        assert_eq!(expected.get("checked"), Some(&Json::Bool(true)));
        let doc_pairs = |key: &str| -> Vec<(String, String)> {
            expected
                .get(key)
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|e| {
                    (
                        e.get("row").and_then(Json::as_str).unwrap().to_string(),
                        e.get("fault").and_then(Json::as_str).unwrap().to_string(),
                    )
                })
                .collect()
        };
        assert_eq!(doc_pairs("known_missed_detections"), owned(&KNOWN_MISSED_DETECTIONS));
        assert_eq!(doc_pairs("known_false_positives"), owned(&KNOWN_FALSE_POSITIVES));
    }

    #[test]
    fn checksum_ignores_cycles_but_sees_output_and_insts() {
        let base = crate::run(Workload::Lbm, Scale::Test, RtConfig::plain());
        let mk = |output: &[u8], insts: u64, cycles: u64| {
            let mut r = base.clone();
            r.output = output.to_vec();
            r.core.insts = insts;
            r.core.cycles = cycles;
            r
        };
        let a = mk(b"hello", 100, 1000);
        let b = mk(b"hello", 100, 2000); // timing-only divergence
        let c = mk(b"hellp", 100, 1000);
        let d = mk(b"hello", 101, 1000);
        assert_eq!(result_checksum(&a), result_checksum(&b));
        assert_ne!(result_checksum(&a), result_checksum(&c));
        assert_ne!(result_checksum(&a), result_checksum(&d));
    }
}
