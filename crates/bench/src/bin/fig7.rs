//! Figure 7: runtime overheads of ASan and REST (debug/secure/PerfectHW
//! × full/heap) over the plain baseline, per benchmark, with the
//! weighted arithmetic mean and geometric mean the paper reports.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig7 [--test]`

use rest_bench::{
    fig7_configs, figure_rows, fmt_row, geo_mean_overhead, print_machine_header, run_seeded,
    scale_from_args, wtd_ari_mean_overhead,
};
use rest_runtime::RtConfig;

fn main() {
    let scale = scale_from_args();
    let configs = fig7_configs();
    print_machine_header("Figure 7 — runtime overhead over plain (%)");

    print!("{:<12}", "benchmark");
    for c in &configs {
        print!("{:>18}", c.label());
    }
    println!();

    let mut plain_cycles = Vec::new();
    let mut hardened_cycles: Vec<Vec<u64>> = vec![Vec::new(); configs.len()];

    for row in figure_rows() {
        let plain = run_seeded(row.workload, scale, RtConfig::plain(), row.seed);
        plain_cycles.push(plain.cycles());
        let mut cells = Vec::new();
        for (i, c) in configs.iter().enumerate() {
            let r = run_seeded(row.workload, scale, c.clone(), row.seed);
            hardened_cycles[i].push(r.cycles());
            cells.push(r.overhead_pct_vs(&plain));
        }
        println!("{}", fmt_row(row.name, &cells));
    }

    let wtd: Vec<f64> = hardened_cycles
        .iter()
        .map(|h| wtd_ari_mean_overhead(&plain_cycles, h))
        .collect();
    let geo: Vec<f64> = hardened_cycles
        .iter()
        .map(|h| geo_mean_overhead(&plain_cycles, h))
        .collect();
    println!("{}", fmt_row("WtdAriMean", &wtd));
    println!("{}", fmt_row("GeoMean", &geo));

    println!();
    println!("# paper (WtdAriMean): ASan ≈ 40%, REST debug ≈ 23–25%, REST secure ≈ 2%,");
    println!("# PerfectHW within 0.2% of secure; Full ≈ Heap + 0.16%.");
}
