//! Figure 7: runtime overheads of ASan and REST (debug/secure/PerfectHW
//! × full/heap) over the plain baseline, per benchmark, with the
//! weighted arithmetic mean and geometric mean the paper reports.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig7 -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING] \
//!         [--sample-interval N] [--trace-out PATH] [--profile-out PATH]`

use rest_bench::cli::Harness;
use rest_bench::engine::{ColumnSpec, MatrixSpec};
use rest_bench::{fig7_configs, figure_rows, print_machine_header};

fn main() {
    let mut h = Harness::new("fig7");
    let columns: Vec<ColumnSpec> = fig7_configs()
        .into_iter()
        .map(|rt| ColumnSpec::new(rt.label(), rt))
        .collect();
    let spec = MatrixSpec::new(h.cli.filter_rows(figure_rows()), columns, h.cli.scale)
        .with_observability(&h.cli);
    let matrix = h.run_matrix(&spec);

    print_machine_header("Figure 7 — runtime overhead over plain (%)");
    matrix.print_text_table();
    println!();
    println!("# paper (WtdAriMean): ASan ≈ 40%, REST debug ≈ 23–25%, REST secure ≈ 2%,");
    println!("# PerfectHW within 0.2% of secure; Full ≈ Heap + 0.16%.");

    let mut sink = h.sink();
    sink.push_matrix("matrix", &matrix);
    h.finish(sink, &matrix);
}
