//! Figure 7: runtime overheads of ASan and REST (debug/secure/PerfectHW
//! × full/heap) over the plain baseline, per benchmark, with the
//! weighted arithmetic mean and geometric mean the paper reports.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig7 -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING] \
//!         [--sample-interval N] [--trace-out PATH] [--profile-out PATH]`

use std::time::Instant;

use rest_bench::cli::BenchCli;
use rest_bench::engine::{ColumnSpec, Engine, MatrixSpec};
use rest_bench::sink::ResultSink;
use rest_bench::{fig7_configs, figure_rows, finish_observability, print_machine_header};
use rest_obs::HostProfile;

fn main() {
    let cli = BenchCli::parse("fig7");
    let columns: Vec<ColumnSpec> = fig7_configs()
        .into_iter()
        .map(|rt| ColumnSpec::new(rt.label(), rt))
        .collect();
    let spec = MatrixSpec::new(cli.filter_rows(figure_rows()), columns, cli.scale)
        .with_observability(&cli);

    let mut profile = HostProfile::new(&cli.experiment);
    let engine = Engine::new(cli.jobs);
    let started = Instant::now();
    let matrix = engine.run_matrix(&spec);
    profile.add_phase("simulate", started.elapsed());

    let started = Instant::now();
    print_machine_header("Figure 7 — runtime overhead over plain (%)");
    matrix.print_text_table();
    println!();
    println!("# paper (WtdAriMean): ASan ≈ 40%, REST debug ≈ 23–25%, REST secure ≈ 2%,");
    println!("# PerfectHW within 0.2% of secure; Full ≈ Heap + 0.16%.");

    let mut sink = ResultSink::new(&cli);
    sink.push_matrix("matrix", &matrix);
    sink.finish();
    profile.add_phase("report", started.elapsed());

    finish_observability(&cli, &engine, &matrix, profile);
}
