//! Guest hotspot profiler: the full benchmark set under `plain` and
//! `rest-secure-full` with per-PC profiling on, rolled up through CFG
//! recovery into per-block/per-function cycle reports plus the
//! per-allocation-site check-attribution table. See
//! [`rest_bench::hotspots`] for the campaign semantics and invariants.
//!
//! Writes `results/hotspots.json` (`rest-hotspots/v1`, byte-identical
//! at any `--jobs`), `results/hotspots.folded` (flamegraph input), and
//! `results/hotspots.perfetto.json` (counter tracks).
//!
//! Usage: `cargo run --release -p rest-bench --bin hotspots -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use rest_bench::cli::Harness;

fn main() {
    rest_bench::hotspots::run_campaign(Harness::new("hotspots"));
}
