//! Adversarial-corpus fuzz campaign (`results/fuzz.json`).
//!
//! Runs the tri-oracle differential campaign from [`rest_bench::fuzz`]:
//! seeded generator rounds until two consecutive rounds surface no new
//! disagreement signature, minimizing one exemplar per signature.

fn main() {
    rest_bench::fuzz::main();
}
