//! Table III: comparison of hardware memory-safety techniques. The prior
//! rows are the paper's qualitative assessment (reproduced verbatim);
//! the REST row's performance class is *measured* by this binary.
//!
//! Usage: `cargo run --release -p rest-bench --bin table3 -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use rest_bench::cli::Harness;
use rest_bench::engine::{ColumnSpec, MatrixSpec};
use rest_bench::sink::Json;
use rest_bench::FigureRow;
use rest_core::Mode;
use rest_runtime::RtConfig;
use rest_workloads::Workload;

struct Row {
    proposal: &'static str,
    spatial: &'static str,
    temporal: &'static str,
    shadow: &'static str,
    composable: &'static str,
    overhead: String,
    hardware: &'static str,
}

fn prior_rows() -> Vec<Row> {
    let r = |proposal, spatial, temporal, shadow, composable, overhead: &str, hardware| Row {
        proposal,
        spatial,
        temporal,
        shadow,
        composable,
        overhead: overhead.to_string(),
        hardware,
    };
    vec![
        r("Hardbound", "Complete", "None", "yes", "no", "Low", "µop injection, L1/TLB tags"),
        r("SafeProc", "Complete", "Complete", "no", "no", "Low", "CAMs, hash table + walker"),
        r("Watchdog", "Complete", "Complete", "yes", "no", "Moderate", "µop injection, lock-ID cache"),
        r("WatchdogLite", "Complete", "Complete", "yes", "no", "Moderate", "nominal"),
        r("Intel MPX", "Complete", "None", "no", "partial", "High", "not disclosed"),
        r("HDFI", "Linear", "None", "yes", "yes", "Negligible", "wider buses, tag tables"),
        r("SPARC ADI", "Linear", "Until realloc", "no", "yes", "Negligible", "4b/line at all cache levels"),
        r("CHERI", "Complete", "Complete", "no", "no", "Moderate", "capability coprocessor"),
        r("iWatcher", "N/A", "N/A", "no", "yes", "High", "per-byte line metadata, victim cache"),
        r("Unlimited WP", "N/A", "N/A", "no", "yes", "High", "range cache, metadata TLB"),
        r("SafeMem", "Linear", "None", "no", "yes", "High", "repurposed ECC bits"),
        r("MemTracker", "Linear", "Until realloc", "yes", "yes", "Low", "metadata caches, pipeline unit"),
        r("ARM PA", "Targeted", "None", "no", "yes", "Negligible", "not disclosed"),
    ]
}

fn main() {
    let mut h = Harness::new("table3");

    // Measure REST's overhead class on a representative subset.
    let subset = [Workload::Lbm, Workload::Gcc, Workload::Xalancbmk, Workload::Hmmer];
    let rows = h.cli.filter_rows(subset.into_iter().map(FigureRow::of).collect());
    let columns = vec![ColumnSpec::new(
        "rest-secure-full",
        RtConfig::rest(Mode::Secure, true),
    )];
    let matrix = h.run_matrix(&MatrixSpec::new(rows, columns, h.cli.scale));

    let (pct, _) = matrix.summary()[0];
    let class = match pct {
        p if p < 1.0 => "Negligible",
        p if p < 10.0 => "Low",
        p if p < 30.0 => "Moderate",
        _ => "High",
    };

    println!("# Table III — hardware memory-safety techniques (single-core)");
    println!();
    println!(
        "{:<14}{:<10}{:<15}{:<8}{:<12}{:<22}hardware",
        "proposal", "spatial", "temporal", "shadow", "composable", "overhead"
    );
    for row in prior_rows() {
        println!(
            "{:<14}{:<10}{:<15}{:<8}{:<12}{:<22}{}",
            row.proposal, row.spatial, row.temporal, row.shadow, row.composable, row.overhead,
            row.hardware
        );
    }
    println!(
        "{:<14}{:<10}{:<15}{:<8}{:<12}{:<22}1 metadata bit per L1-D line, 1 comparator",
        "REST (ours)",
        "Linear",
        "Until realloc",
        "no",
        "yes",
        format!("{class} ({pct:.1}% meas.)")
    );
    println!();
    println!("# prior rows: paper's qualitative assessment; REST row measured here.");

    let prior = prior_rows()
        .into_iter()
        .map(|r| {
            Json::obj(vec![
                ("proposal", Json::from(r.proposal)),
                ("spatial", Json::from(r.spatial)),
                ("temporal", Json::from(r.temporal)),
                ("shadow", Json::from(r.shadow)),
                ("composable", Json::from(r.composable)),
                ("overhead", Json::from(r.overhead)),
                ("hardware", Json::from(r.hardware)),
            ])
        })
        .collect();
    let mut sink = h.sink();
    sink.push("prior_rows", Json::Arr(prior));
    sink.push(
        "rest_measured",
        Json::obj(vec![
            ("wtd_ari_mean_pct", Json::Num(pct)),
            ("overhead_class", Json::from(class)),
            ("hardware", Json::from("1 metadata bit per L1-D line, 1 comparator")),
        ]),
    );
    sink.push_matrix("matrix", &matrix);
    h.finish(sink, &matrix);
}
