//! Design-choice ablations (DESIGN.md):
//!
//! 1. **Lazy vs naive arm** — the paper's arm defers the 64 B token
//!    write to eviction; the ablation writes it eagerly (w/8 store
//!    beats).
//! 2. **LSQ forwarding-check vs serialisation** — §III-B's rejected
//!    alternative executes each arm/disarm as the only in-flight
//!    instruction.
//! 3. **Quarantine budget** — temporal-safety window (evictions) vs
//!    allocator overhead.
//! 4. **§VIII future work, implemented** — the dedicated token cache
//!    and the REST-aware fast-pool allocator, measured against the
//!    paper's evaluated design.
//!
//! Usage: `cargo run --release -p rest-bench --bin ablations [--test]`

use rest_bench::{run, scale_from_args, stack_for};
use rest_core::Mode;
use rest_cpu::{SimConfig, StopReason, System};
use rest_runtime::RtConfig;
use rest_workloads::{Workload, WorkloadParams};

fn run_serialized(w: Workload, scale: rest_workloads::Scale, rt: RtConfig) -> rest_cpu::SimResult {
    let params = WorkloadParams {
        scale,
        stack_scheme: stack_for(&rt),
        token_width: rt.token_width,
        seed: 0xC0FFEE,
    };
    let program = w.build(&params);
    let mut cfg = SimConfig::isca2018(rt);
    cfg.core.serialize_rest_ops = true;
    let r = System::new(program, cfg).run();
    assert_eq!(r.stop, StopReason::Exit(0));
    r
}

fn main() {
    let scale = scale_from_args();
    let subjects = [Workload::Gcc, Workload::Xalancbmk, Workload::Sjeng];

    println!("# Ablation 1+2 — arm/disarm design alternatives, overhead over plain (%)");
    println!(
        "{:<12}{:>16}{:>16}{:>16}",
        "benchmark", "paper-design", "naive-wide-arm", "serialized"
    );
    for w in subjects {
        let plain = run(w, scale, RtConfig::plain());
        let lazy = run(w, scale, RtConfig::rest(Mode::Secure, true));
        let naive = run(
            w,
            scale,
            RtConfig {
                naive_wide_arm: true,
                ..RtConfig::rest(Mode::Secure, true)
            },
        );
        let serial = run_serialized(w, scale, RtConfig::rest(Mode::Secure, true));
        println!(
            "{:<12}{:>15.2}%{:>15.2}%{:>15.2}%",
            w.name(),
            lazy.overhead_pct_vs(&plain),
            naive.overhead_pct_vs(&plain),
            serial.overhead_pct_vs(&plain),
        );
    }

    println!();
    println!("# Ablation 3 — quarantine budget (xalancbmk, secure heap)");
    println!(
        "{:<12}{:>14}{:>16}{:>18}",
        "budget", "overhead %", "evictions", "quarantined-bytes"
    );
    let plain = run(Workload::Xalancbmk, scale, RtConfig::plain());
    for budget in [4u64 << 10, 64 << 10, 1 << 20] {
        let r = run(
            Workload::Xalancbmk,
            scale,
            RtConfig::rest(Mode::Secure, false).with_quarantine(budget),
        );
        println!(
            "{:<12}{:>13.2}%{:>16}{:>18}",
            format!("{}K", budget >> 10),
            r.overhead_pct_vs(&plain),
            r.alloc.quarantine_evictions,
            r.alloc.quarantine_bytes,
        );
    }
    println!();
    println!("# larger budgets widen the use-after-free detection window (fewer");
    println!("# evictions) at the cost of more armed memory held in quarantine.");

    println!();
    println!("# Ablation 4 — §VIII future-work optimisations (secure heap, tight quarantine)");
    println!(
        "{:<12}{:>16}{:>16}{:>16}",
        "benchmark", "paper-design", "fast-pool", "+token-cache"
    );
    for w in [Workload::Xalancbmk, Workload::Gcc] {
        let plain = run(w, scale, RtConfig::plain());
        let base_cfg = RtConfig::rest(Mode::Secure, false).with_quarantine(16 << 10);
        let base = run(w, scale, base_cfg.clone());
        let fast = run(w, scale, base_cfg.clone().with_fast_pool());
        // Token cache on top of the fast pool.
        let tc = {
            let params = WorkloadParams {
                scale,
                stack_scheme: stack_for(&base_cfg),
                token_width: base_cfg.token_width,
                seed: 0xC0FFEE,
            };
            let program = w.build(&params);
            let mut cfg = SimConfig::isca2018(base_cfg.clone().with_fast_pool());
            cfg.mem.token_cache_entries = 16;
            let r = System::new(program, cfg).run();
            assert_eq!(r.stop, StopReason::Exit(0));
            r
        };
        println!(
            "{:<12}{:>15.2}%{:>15.2}%{:>15.2}%",
            w.name(),
            base.overhead_pct_vs(&plain),
            fast.overhead_pct_vs(&plain),
            tc.overhead_pct_vs(&plain),
        );
    }
    println!();
    println!("# the fast pool removes release-time disarm sweeps and redzone");
    println!("# re-arming; the dedicated token cache accelerates armed-line");
    println!("# refetches (both proposed as future work in §VIII).");
}
