//! Design-choice ablations (DESIGN.md):
//!
//! 1. **Lazy vs naive arm** — the paper's arm defers the 64 B token
//!    write to eviction; the ablation writes it eagerly (w/8 store
//!    beats).
//! 2. **LSQ forwarding-check vs serialisation** — §III-B's rejected
//!    alternative executes each arm/disarm as the only in-flight
//!    instruction.
//! 3. **Quarantine budget** — temporal-safety window (evictions) vs
//!    allocator overhead.
//! 4. **§VIII future work, implemented** — the dedicated token cache
//!    and the REST-aware fast-pool allocator, measured against the
//!    paper's evaluated design.
//!
//! All three sweeps share one engine, so each benchmark's plain
//! baseline is simulated once (gcc and xalancbmk appear in several
//! sections).
//!
//! Usage: `cargo run --release -p rest-bench --bin ablations -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use rest_bench::cli::Harness;
use rest_bench::engine::{ColumnSpec, MatrixSpec};
use rest_bench::FigureRow;
use rest_core::Mode;
use rest_runtime::RtConfig;
use rest_workloads::Workload;

fn main() {
    let mut h = Harness::new("ablations");

    // Ablation 1+2: arm/disarm design alternatives.
    let secure_full = RtConfig::rest(Mode::Secure, true);
    let arm_spec = MatrixSpec::new(
        h.cli.filter_rows(
            [Workload::Gcc, Workload::Xalancbmk, Workload::Sjeng]
                .into_iter()
                .map(FigureRow::of)
                .collect(),
        ),
        vec![
            ColumnSpec::new("paper-design", secure_full.clone()),
            ColumnSpec::new(
                "naive-wide-arm",
                RtConfig {
                    naive_wide_arm: true,
                    ..secure_full.clone()
                },
            ),
            ColumnSpec {
                serialize_rest_ops: true,
                ..ColumnSpec::new("serialized", secure_full.clone())
            },
        ],
        h.cli.scale,
    );

    // Ablation 3: quarantine budget sweep on xalancbmk (secure heap).
    let budgets = [4u64 << 10, 64 << 10, 1 << 20];
    let budget_spec = MatrixSpec::new(
        h.cli.filter_rows(vec![FigureRow::of(Workload::Xalancbmk)]),
        budgets
            .iter()
            .map(|&b| {
                ColumnSpec::new(
                    format!("{}K", b >> 10),
                    RtConfig::rest(Mode::Secure, false).with_quarantine(b),
                )
            })
            .collect(),
        h.cli.scale,
    );

    // Ablation 4: §VIII future-work optimisations.
    let base_cfg = RtConfig::rest(Mode::Secure, false).with_quarantine(16 << 10);
    let future_spec = MatrixSpec::new(
        h.cli.filter_rows(
            [Workload::Xalancbmk, Workload::Gcc]
                .into_iter()
                .map(FigureRow::of)
                .collect(),
        ),
        vec![
            ColumnSpec::new("paper-design", base_cfg.clone()),
            ColumnSpec::new("fast-pool", base_cfg.clone().with_fast_pool()),
            ColumnSpec {
                token_cache_entries: 16,
                ..ColumnSpec::new("+token-cache", base_cfg.clone().with_fast_pool())
            },
        ],
        h.cli.scale,
    );

    // Observability flags apply to the first matrix; all three share
    // the harness engine, so the profile's job log covers every sweep.
    let arm_spec = arm_spec.with_observability(&h.cli);
    let arm = h.run_matrix(&arm_spec);
    let budget = h.run_matrix(&budget_spec);
    let future = h.run_matrix(&future_spec);

    println!("# Ablation 1+2 — arm/disarm design alternatives, overhead over plain (%)");
    println!(
        "{:<12}{:>16}{:>16}{:>16}",
        "benchmark", "paper-design", "naive-wide-arm", "serialized"
    );
    for row in &arm.rows {
        println!(
            "{:<12}{:>15.2}%{:>15.2}%{:>15.2}%",
            row.row.name,
            row.overhead_pct(0),
            row.overhead_pct(1),
            row.overhead_pct(2),
        );
    }

    println!();
    println!("# Ablation 3 — quarantine budget (xalancbmk, secure heap)");
    println!(
        "{:<12}{:>14}{:>16}{:>18}",
        "budget", "overhead %", "evictions", "quarantined-bytes"
    );
    for row in &budget.rows {
        for (c, col) in budget.columns.iter().enumerate() {
            let Some(r) = row.cell(c) else {
                println!("{:<12}  (failed; see stderr)", col.label);
                continue;
            };
            println!(
                "{:<12}{:>13.2}%{:>16}{:>18}",
                col.label,
                row.overhead_pct(c),
                r.alloc.quarantine_evictions,
                r.alloc.quarantine_bytes,
            );
        }
    }
    println!();
    println!("# larger budgets widen the use-after-free detection window (fewer");
    println!("# evictions) at the cost of more armed memory held in quarantine.");

    println!();
    println!("# Ablation 4 — §VIII future-work optimisations (secure heap, tight quarantine)");
    println!(
        "{:<12}{:>16}{:>16}{:>16}",
        "benchmark", "paper-design", "fast-pool", "+token-cache"
    );
    for row in &future.rows {
        println!(
            "{:<12}{:>15.2}%{:>15.2}%{:>15.2}%",
            row.row.name,
            row.overhead_pct(0),
            row.overhead_pct(1),
            row.overhead_pct(2),
        );
    }
    println!();
    println!("# the fast pool removes release-time disarm sweeps and redzone");
    println!("# re-arming; the dedicated token cache accelerates armed-line");
    println!("# refetches (both proposed as future work in §VIII).");

    let mut sink = h.sink();
    sink.push_matrix("arm_design", &arm);
    sink.push_matrix("quarantine_budget", &budget);
    sink.push_matrix("future_work", &future);
    h.finish(sink, &arm);
}
