//! §VI-B prose statistics:
//!
//! * cycles the ROB was blocked by a store — about an order of magnitude
//!   higher in debug mode than secure mode,
//! * IQ-full pressure — xalancbmk's secure/debug gap exceeds 100×
//!   in the paper,
//! * token lines crossing the L2/memory interface per kilo-instruction —
//!   ≈ 0.04 for xalancbmk secure-full (tokens almost always stay in the
//!   caches).
//!
//! Usage: `cargo run --release -p rest-bench --bin prose_stats [--test]`

use rest_bench::{print_machine_header, run, scale_from_args};
use rest_core::Mode;
use rest_runtime::RtConfig;
use rest_workloads::Workload;

fn main() {
    let scale = scale_from_args();
    print_machine_header("§VI-B prose statistics — secure vs debug (full protection)");
    println!(
        "{:<12}{:>16}{:>16}{:>10}{:>14}{:>14}{:>14}",
        "benchmark",
        "robblk-sec",
        "robblk-dbg",
        "ratio",
        "iqstall-sec",
        "iqstall-dbg",
        "tok/kinst"
    );

    for w in Workload::ALL {
        let secure = run(w, scale, RtConfig::rest(Mode::Secure, true));
        let debug = run(w, scale, RtConfig::rest(Mode::Debug, true));
        let ratio = debug.core.rob_blocked_store_cycles as f64
            / secure.core.rob_blocked_store_cycles.max(1) as f64;
        println!(
            "{:<12}{:>16}{:>16}{:>10.1}{:>14}{:>14}{:>14.4}",
            w.name(),
            secure.core.rob_blocked_store_cycles,
            debug.core.rob_blocked_store_cycles,
            ratio,
            secure.core.iq_stall_cycles,
            debug.core.iq_stall_cycles,
            secure.tokens_per_kiloinst_l2_mem(),
        );
    }

    println!();
    println!("# paper: robblk ratio ~10x; xalanc IQ-full gap >100x; xalanc");
    println!("# secure-full token traffic at L2/mem = 0.04 lines/kinst.");
}
