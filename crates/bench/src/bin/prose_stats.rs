//! §VI-B prose statistics:
//!
//! * cycles the ROB was blocked by a store — about an order of magnitude
//!   higher in debug mode than secure mode,
//! * IQ-full pressure — xalancbmk's secure/debug gap exceeds 100×
//!   in the paper,
//! * token lines crossing the L2/memory interface per kilo-instruction —
//!   ≈ 0.04 for xalancbmk secure-full (tokens almost always stay in the
//!   caches).
//!
//! Usage: `cargo run --release -p rest-bench --bin prose_stats -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use rest_bench::cli::Harness;
use rest_bench::engine::{ColumnSpec, MatrixSpec};
use rest_bench::sink::Json;
use rest_bench::{print_machine_header, FigureRow};
use rest_core::Mode;
use rest_runtime::RtConfig;
use rest_workloads::Workload;

fn main() {
    let mut h = Harness::new("prose_stats");
    let columns = vec![
        ColumnSpec::new("rest-secure-full", RtConfig::rest(Mode::Secure, true)),
        ColumnSpec::new("rest-debug-full", RtConfig::rest(Mode::Debug, true)),
    ];
    let rows: Vec<FigureRow> = Workload::ALL.into_iter().map(FigureRow::of).collect();
    let spec = MatrixSpec {
        // The prose statistics compare secure vs debug directly; no
        // plain baseline is involved.
        include_plain: false,
        ..MatrixSpec::new(h.cli.filter_rows(rows), columns, h.cli.scale)
    }
    .with_observability(&h.cli);
    let matrix = h.run_matrix(&spec);

    print_machine_header("§VI-B prose statistics — secure vs debug (full protection)");
    println!(
        "{:<12}{:>16}{:>16}{:>10}{:>14}{:>14}{:>14}",
        "benchmark",
        "robblk-sec",
        "robblk-dbg",
        "ratio",
        "iqstall-sec",
        "iqstall-dbg",
        "tok/kinst"
    );

    let mut derived = Vec::new();
    for row in &matrix.rows {
        let (Some(secure), Some(debug)) = (row.cell(0), row.cell(1)) else {
            println!("{:<12}  (failed; see stderr)", row.row.name);
            continue;
        };
        let ratio = debug.core.rob_blocked_store_cycles as f64
            / secure.core.rob_blocked_store_cycles.max(1) as f64;
        println!(
            "{:<12}{:>16}{:>16}{:>10.1}{:>14}{:>14}{:>14.4}",
            row.row.name,
            secure.core.rob_blocked_store_cycles,
            debug.core.rob_blocked_store_cycles,
            ratio,
            secure.core.iq_stall_cycles,
            debug.core.iq_stall_cycles,
            secure.tokens_per_kiloinst_l2_mem(),
        );
        derived.push(Json::obj(vec![
            ("benchmark", Json::from(row.row.name)),
            (
                "rob_blocked_store_cycles",
                Json::obj(vec![
                    ("secure", Json::UInt(secure.core.rob_blocked_store_cycles)),
                    ("debug", Json::UInt(debug.core.rob_blocked_store_cycles)),
                ]),
            ),
            ("debug_over_secure_ratio", Json::Num(ratio)),
            (
                "iq_stall_cycles",
                Json::obj(vec![
                    ("secure", Json::UInt(secure.core.iq_stall_cycles)),
                    ("debug", Json::UInt(debug.core.iq_stall_cycles)),
                ]),
            ),
            (
                "tokens_per_kiloinst_l2_mem",
                Json::Num(secure.tokens_per_kiloinst_l2_mem()),
            ),
        ]));
    }

    println!();
    println!("# paper: robblk ratio ~10x; xalanc IQ-full gap >100x; xalanc");
    println!("# secure-full token traffic at L2/mem = 0.04 lines/kinst.");

    let mut sink = h.sink();
    sink.push_matrix("matrix", &matrix);
    sink.push("derived", Json::Arr(derived));
    h.finish(sink, &matrix);
}
