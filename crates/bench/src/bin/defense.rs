//! Defense matrix: the six protection configurations (`plain`, `asan`,
//! `rest-secure-full`, `mte-sync`, `mte-async`, `pa`) over the full
//! benchmark set (runtime overhead) and all attack scenarios
//! (expectation-checked detection coverage). See
//! [`rest_bench::defense`] for the campaign semantics.
//!
//! Usage: `cargo run --release -p rest-bench --bin defense -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING] \
//!         [--profile-out PATH]`

use rest_bench::cli::Harness;

fn main() {
    rest_bench::defense::run_campaign(Harness::new("defense"));
}
