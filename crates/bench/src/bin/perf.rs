//! Guest-throughput benchmark: guest instructions per host second on
//! the functional emulator — superblock-trace tier, decoded-uop-cache
//! fast path, and re-decode-every-fetch reference path — per benchmark
//! row and protection configuration.
//!
//! Every cell doubles as a differential check — the three tiers must
//! retire identical instruction and micro-op counts with identical stop
//! reasons, or the sweep fails.
//!
//! Writes `results/BENCH_throughput.json` (`rest-throughput/v2`); wall
//! times are nondeterministic, so the file follows the `BENCH_` naming
//! convention and is never byte-compared in CI.
//!
//! Usage: `cargo run --release -p rest-bench --bin perf -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use std::path::PathBuf;

use rest_bench::cli::Harness;
use rest_bench::throughput::{cells_for, measure_all, ThroughputReport};
use rest_bench::{figure_rows, print_machine_header, write_text_file};
use rest_core::Mode;
use rest_runtime::RtConfig;

fn main() {
    let cli = Harness::new("perf").cli;
    let rows = cli.filter_rows(figure_rows());
    // Plain, the heaviest instrumentation (ASan injects uops per
    // access), and the paper's headline REST configuration.
    let configs = [
        RtConfig::plain(),
        RtConfig::asan(),
        RtConfig::rest(Mode::Secure, true),
    ];
    let cells = cells_for(&rows, &configs, cli.scale);

    let measured = match measure_all(&cells, cli.jobs) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf: decode paths diverged: {e}");
            std::process::exit(1);
        }
    };
    let report = ThroughputReport {
        scale: cli.scale_name().to_string(),
        effective_jobs: cli.jobs,
        cells: measured,
    };

    print_machine_header("Guest throughput — trace vs fast vs reference execution tier (guest-IPS)");
    report.print_text_table();

    let path = cli
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/BENCH_throughput.json"));
    write_text_file(&path, &report.render());
}
