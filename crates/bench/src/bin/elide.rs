//! Static check-elision campaign: the full benchmark set under
//! `rest-secure-full` and `asan`, each with checks in full and with the
//! `rest-verify` elision map applied, plus all ten attack scenarios
//! under elision. Every pair is held to a hard differential gate:
//! identical stop, output, and audit provenance, so the attacks lose
//! zero detections. See [`rest_bench::elide`] for the campaign
//! semantics.
//!
//! Writes `results/elision.json` (deterministic, byte-identical at any
//! `--jobs`) and `results/BENCH_elision.json` (wall-clock guest-IPS
//! with and without elision).
//!
//! Usage: `cargo run --release -p rest-bench --bin elide -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use rest_bench::cli::Harness;

fn main() {
    rest_bench::elide::run_campaign(Harness::new("elision"));
}
