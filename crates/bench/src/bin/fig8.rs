//! Figure 8: runtime overheads of 16 B, 32 B and 64 B tokens in secure
//! mode, for full and heap-only protection. The paper's finding: token
//! width makes no significant performance difference, so users can pick
//! the most robust (widest) token for free.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig8 [--test]`

use rest_bench::{
    fig8_widths, figure_rows, fmt_row, geo_mean_overhead, print_machine_header, run_seeded,
    scale_from_args, wtd_ari_mean_overhead,
};
use rest_core::Mode;
use rest_runtime::RtConfig;

fn main() {
    let scale = scale_from_args();
    print_machine_header("Figure 8 — token-width sweep, secure mode, overhead over plain (%)");

    let mut configs = Vec::new();
    for full in [true, false] {
        for width in fig8_widths() {
            let scope = if full { "full" } else { "heap" };
            configs.push((
                format!("{width}-{scope}"),
                RtConfig::rest(Mode::Secure, full).with_token_width(width),
            ));
        }
    }

    print!("{:<12}", "benchmark");
    for (name, _) in &configs {
        print!("{name:>18}");
    }
    println!();

    let mut plain_cycles = Vec::new();
    let mut hardened: Vec<Vec<u64>> = vec![Vec::new(); configs.len()];
    for row in figure_rows() {
        let plain = run_seeded(row.workload, scale, RtConfig::plain(), row.seed);
        plain_cycles.push(plain.cycles());
        let mut cells = Vec::new();
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let r = run_seeded(row.workload, scale, cfg.clone(), row.seed);
            hardened[i].push(r.cycles());
            cells.push(r.overhead_pct_vs(&plain));
        }
        println!("{}", fmt_row(row.name, &cells));
    }

    let wtd: Vec<f64> = hardened
        .iter()
        .map(|h| wtd_ari_mean_overhead(&plain_cycles, h))
        .collect();
    let geo: Vec<f64> = hardened
        .iter()
        .map(|h| geo_mean_overhead(&plain_cycles, h))
        .collect();
    println!("{}", fmt_row("WtdAriMean", &wtd));
    println!("{}", fmt_row("GeoMean", &geo));
    println!();
    println!("# paper: no single token width makes a significant difference;");
    println!("# wider tokens buy robustness without a performance cost.");
}
