//! Figure 8: runtime overheads of 16 B, 32 B and 64 B tokens in secure
//! mode, for full and heap-only protection. The paper's finding: token
//! width makes no significant performance difference, so users can pick
//! the most robust (widest) token for free.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig8 -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use rest_bench::cli::Harness;
use rest_bench::engine::{ColumnSpec, MatrixSpec};
use rest_bench::{fig8_widths, figure_rows, print_machine_header};
use rest_core::Mode;
use rest_runtime::RtConfig;

fn main() {
    let mut h = Harness::new("fig8");
    let mut columns = Vec::new();
    for full in [true, false] {
        for width in fig8_widths() {
            let scope = if full { "full" } else { "heap" };
            columns.push(ColumnSpec::new(
                format!("{width}-{scope}"),
                RtConfig::rest(Mode::Secure, full).with_token_width(width),
            ));
        }
    }
    let spec = MatrixSpec::new(h.cli.filter_rows(figure_rows()), columns, h.cli.scale)
        .with_observability(&h.cli);
    let matrix = h.run_matrix(&spec);

    print_machine_header("Figure 8 — token-width sweep, secure mode, overhead over plain (%)");
    matrix.print_text_table();
    println!();
    println!("# paper: no single token width makes a significant difference;");
    println!("# wider tokens buy robustness without a performance cost.");

    let mut sink = h.sink();
    sink.push_matrix("matrix", &matrix);
    h.finish(sink, &matrix);
}
