//! Figure 8: runtime overheads of 16 B, 32 B and 64 B tokens in secure
//! mode, for full and heap-only protection. The paper's finding: token
//! width makes no significant performance difference, so users can pick
//! the most robust (widest) token for free.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig8 -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use std::time::Instant;

use rest_bench::cli::BenchCli;
use rest_bench::engine::{ColumnSpec, Engine, MatrixSpec};
use rest_bench::sink::ResultSink;
use rest_bench::{fig8_widths, figure_rows, finish_observability, print_machine_header};
use rest_core::Mode;
use rest_obs::HostProfile;
use rest_runtime::RtConfig;

fn main() {
    let cli = BenchCli::parse("fig8");
    let mut columns = Vec::new();
    for full in [true, false] {
        for width in fig8_widths() {
            let scope = if full { "full" } else { "heap" };
            columns.push(ColumnSpec::new(
                format!("{width}-{scope}"),
                RtConfig::rest(Mode::Secure, full).with_token_width(width),
            ));
        }
    }
    let spec = MatrixSpec::new(cli.filter_rows(figure_rows()), columns, cli.scale)
        .with_observability(&cli);

    let mut profile = HostProfile::new(&cli.experiment);
    let engine = Engine::new(cli.jobs);
    let started = Instant::now();
    let matrix = engine.run_matrix(&spec);
    profile.add_phase("simulate", started.elapsed());

    let started = Instant::now();
    print_machine_header("Figure 8 — token-width sweep, secure mode, overhead over plain (%)");
    matrix.print_text_table();
    println!();
    println!("# paper: no single token width makes a significant difference;");
    println!("# wider tokens buy robustness without a performance cost.");

    let mut sink = ResultSink::new(&cli);
    sink.push_matrix("matrix", &matrix);
    sink.finish();
    profile.add_phase("report", started.elapsed());

    finish_observability(&cli, &engine, &matrix, profile);
}
