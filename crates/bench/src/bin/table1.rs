//! Table I: actions taken on various operations for L1-D cache hits and
//! misses — printed from the executable specification in
//! `rest_core::table1`, which the simulator's caches and LSQ are tested
//! against (see `crates/mem` unit tests and `tests/table1.rs`).
//!
//! No simulation runs: `--test`, `--jobs` and `--filter` are accepted
//! for CLI uniformity but have no effect.
//!
//! Usage: `cargo run -p rest-bench --bin table1 -- [--json PATH]`

use rest_bench::cli::Harness;
use rest_bench::sink::Json;
use rest_core::table1::{cache_decision, lsq_decision, Action, CacheDecision};

fn describe_lsq(action: Action) -> String {
    match action {
        Action::Arm => {
            let d = lsq_decision(action, false, false, false);
            format!("Create entry in SQ, tag as {:?}.", d.insert.unwrap())
        }
        Action::Disarm => {
            let bad = lsq_decision(action, false, true, false);
            format!(
                "Raise {} if SQ has disarm for same location; else insert entry with no store value, tag as disarm.",
                bad.exception.unwrap()
            )
        }
        Action::Load => {
            let bad = lsq_decision(action, true, false, true);
            format!(
                "If value can be forwarded from armed SQ entry, raise {}. As usual otherwise.",
                bad.exception.unwrap()
            )
        }
        Action::StoreSecure | Action::StoreDebug => {
            let bad = lsq_decision(action, true, false, false);
            format!(
                "Raise {} if SQ has arm for same location. As usual otherwise.",
                bad.exception.unwrap()
            )
        }
        Action::CoherenceMsg | Action::Eviction => "N/A".to_string(),
    }
}

fn describe_cache(d: CacheDecision) -> String {
    let mut parts = Vec::new();
    if let Some(e) = d.exception {
        parts.push(format!("raise {e}"));
    }
    if d.fetch_line {
        parts.push("fetch line".into());
    }
    if d.detect_token_on_fill {
        parts.push("detect token on fill".into());
    }
    if d.set_token_bit {
        parts.push("set token bit".into());
    }
    if d.clear_slot_unset_bit {
        parts.push("clear slot, unset bit".into());
    }
    if d.access_data {
        parts.push("access data".into());
    }
    if d.delay_commit_until_ack {
        parts.push("delay commit until L1-D ack".into());
    }
    if d.fill_token_in_outgoing {
        parts.push("fill token value in outgoing packet".into());
    }
    if parts.is_empty() {
        "as usual".into()
    } else {
        parts.join("; ")
    }
}

fn main() {
    let h = Harness::new("table1");
    println!("# Table I — actions on operations, for L1-D hits and misses");
    println!("# (executable specification; simulator conformance is enforced");
    println!("#  by crates/mem unit tests and tests/table1.rs)");
    println!();
    let mut actions = Vec::new();
    for action in Action::ALL {
        println!("== {} ==", action.name());
        println!("  LSQ       : {}", describe_lsq(action));
        let mut members = vec![
            ("action", Json::from(action.name())),
            ("lsq", Json::from(describe_lsq(action))),
        ];
        for (hit, key) in [(true, "hit"), (false, "miss")] {
            let mut arm = Vec::new();
            for token_bit in [false, true] {
                let desc = describe_cache(cache_decision(action, hit, token_bit));
                println!("  {key:<4} (token bit {}): {desc}", token_bit as u8);
                arm.push((format!("token_bit_{}", token_bit as u8), Json::from(desc)));
            }
            members.push((key, Json::Obj(arm)));
        }
        actions.push(Json::obj(members));
        println!();
    }

    let mut sink = h.sink();
    sink.push("actions", Json::Arr(actions));
    sink.finish();
}
