//! Table I: actions taken on various operations for L1-D cache hits and
//! misses — printed from the executable specification in
//! `rest_core::table1`, which the simulator's caches and LSQ are tested
//! against (see `crates/mem` unit tests and `tests/table1.rs`).
//!
//! Usage: `cargo run -p rest-bench --bin table1`

use rest_core::table1::{cache_decision, lsq_decision, Action, CacheDecision};

fn describe_lsq(action: Action) -> String {
    match action {
        Action::Arm => {
            let d = lsq_decision(action, false, false, false);
            format!("Create entry in SQ, tag as {:?}.", d.insert.unwrap())
        }
        Action::Disarm => {
            let bad = lsq_decision(action, false, true, false);
            format!(
                "Raise {} if SQ has disarm for same location; else insert entry with no store value, tag as disarm.",
                bad.exception.unwrap()
            )
        }
        Action::Load => {
            let bad = lsq_decision(action, true, false, true);
            format!(
                "If value can be forwarded from armed SQ entry, raise {}. As usual otherwise.",
                bad.exception.unwrap()
            )
        }
        Action::StoreSecure | Action::StoreDebug => {
            let bad = lsq_decision(action, true, false, false);
            format!(
                "Raise {} if SQ has arm for same location. As usual otherwise.",
                bad.exception.unwrap()
            )
        }
        Action::CoherenceMsg | Action::Eviction => "N/A".to_string(),
    }
}

fn describe_cache(d: CacheDecision) -> String {
    let mut parts = Vec::new();
    if let Some(e) = d.exception {
        parts.push(format!("raise {e}"));
    }
    if d.fetch_line {
        parts.push("fetch line".into());
    }
    if d.detect_token_on_fill {
        parts.push("detect token on fill".into());
    }
    if d.set_token_bit {
        parts.push("set token bit".into());
    }
    if d.clear_slot_unset_bit {
        parts.push("clear slot, unset bit".into());
    }
    if d.access_data {
        parts.push("access data".into());
    }
    if d.delay_commit_until_ack {
        parts.push("delay commit until L1-D ack".into());
    }
    if d.fill_token_in_outgoing {
        parts.push("fill token value in outgoing packet".into());
    }
    if parts.is_empty() {
        "as usual".into()
    } else {
        parts.join("; ")
    }
}

fn main() {
    println!("# Table I — actions on operations, for L1-D hits and misses");
    println!("# (executable specification; simulator conformance is enforced");
    println!("#  by crates/mem unit tests and tests/table1.rs)");
    println!();
    for action in Action::ALL {
        println!("== {} ==", action.name());
        println!("  LSQ       : {}", describe_lsq(action));
        for token_bit in [false, true] {
            let hit = describe_cache(cache_decision(action, true, token_bit));
            println!("  hit  (token bit {}): {hit}", token_bit as u8);
        }
        for token_bit in [false, true] {
            let miss = describe_cache(cache_decision(action, false, token_bit));
            println!("  miss (token bit {}): {miss}", token_bit as u8);
        }
        println!();
    }
}
