//! Figure 3: breakdown of ASan's overhead into its four components —
//! allocator, stack-frame setup, memory-access validation, and libc API
//! interception — measured, as in the paper, on an in-order core by
//! enabling the components cumulatively.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig3 [--test]`

use rest_bench::{fmt_row, run_with, scale_from_args};
use rest_runtime::{RtConfig, Scheme};
use rest_workloads::Workload;

/// Cumulative ASan configurations, in the order the components stack.
fn stages() -> Vec<(&'static str, RtConfig)> {
    let base = RtConfig {
        scheme: Scheme::Asan,
        stack_protection: false,
        access_checks: false,
        intercept_libc: false,
        ..RtConfig::asan()
    };
    vec![
        ("allocator", base.clone()),
        (
            "stack-setup",
            RtConfig {
                stack_protection: true,
                ..base.clone()
            },
        ),
        (
            "access-checks",
            RtConfig {
                stack_protection: true,
                access_checks: true,
                ..base.clone()
            },
        ),
        ("api-intercept", RtConfig::asan()),
    ]
}

fn main() {
    let scale = scale_from_args();
    println!("# Figure 3 — ASan overhead breakdown (%, incremental per component)");
    println!("# core: narrow in-order (as in the paper's Figure 3 measurement)");
    println!();
    print!("{:<12}", "benchmark");
    for (name, _) in stages() {
        print!("{:>18}", name);
    }
    print!("{:>18}", "total");
    println!();

    for w in Workload::ALL {
        let plain = run_with(w, scale, RtConfig::plain(), true);
        let mut prev = plain.cycles() as f64;
        let mut cells = Vec::new();
        let mut total = 0.0;
        for (_, cfg) in stages() {
            let r = run_with(w, scale, cfg, true);
            let inc = (r.cycles() as f64 - prev) / plain.cycles() as f64 * 100.0;
            cells.push(inc);
            total = (r.cycles() as f64 / plain.cycles() as f64 - 1.0) * 100.0;
            prev = r.cycles() as f64;
        }
        cells.push(total);
        println!("{}", fmt_row(w.name(), &cells));
    }

    println!();
    println!("# paper: access validation dominates everywhere; the allocator");
    println!("# contributes heavily for alloc-heavy benchmarks (gcc, xalancbmk).");
}
