//! Figure 3: breakdown of ASan's overhead into its four components —
//! allocator, stack-frame setup, memory-access validation, and libc API
//! interception — measured, as in the paper, on an in-order core by
//! enabling the components cumulatively.
//!
//! Usage: `cargo run --release -p rest-bench --bin fig3 -- \
//!         [--test] [--jobs N] [--json PATH] [--filter SUBSTRING]`

use rest_bench::cli::Harness;
use rest_bench::engine::{ColumnSpec, CoreKind, MatrixSpec};
use rest_bench::sink::Json;
use rest_bench::{fmt_row, FigureRow};
use rest_runtime::{RtConfig, Scheme};
use rest_workloads::Workload;

/// Cumulative ASan configurations, in the order the components stack.
fn stages() -> Vec<(&'static str, RtConfig)> {
    let base = RtConfig {
        scheme: Scheme::Asan,
        stack_protection: false,
        access_checks: false,
        intercept_libc: false,
        ..RtConfig::asan()
    };
    vec![
        ("allocator", base.clone()),
        (
            "stack-setup",
            RtConfig {
                stack_protection: true,
                ..base.clone()
            },
        ),
        (
            "access-checks",
            RtConfig {
                stack_protection: true,
                access_checks: true,
                ..base.clone()
            },
        ),
        ("api-intercept", RtConfig::asan()),
    ]
}

fn main() {
    let mut h = Harness::new("fig3");
    let columns: Vec<ColumnSpec> = stages()
        .into_iter()
        .map(|(name, rt)| ColumnSpec::new(name, rt))
        .collect();
    let rows: Vec<FigureRow> = Workload::ALL.into_iter().map(FigureRow::of).collect();
    let spec = MatrixSpec {
        core: CoreKind::InOrder,
        ..MatrixSpec::new(h.cli.filter_rows(rows), columns, h.cli.scale)
    }
    .with_observability(&h.cli);
    let matrix = h.run_matrix(&spec);

    println!("# Figure 3 — ASan overhead breakdown (%, incremental per component)");
    println!("# core: narrow in-order (as in the paper's Figure 3 measurement)");
    println!();
    print!("{:<12}", "benchmark");
    for col in &matrix.columns {
        print!("{:>18}", col.label);
    }
    print!("{:>18}", "total");
    println!();

    // The matrix cells are cumulative; the figure reports each
    // component's *incremental* contribution over the previous stage,
    // normalised to plain cycles.
    let mut incremental_rows = Vec::new();
    for row in &matrix.rows {
        let cells = incremental_cells(row, matrix.columns.len());
        println!("{}", fmt_row(row.row.name, &cells));
        let stages = matrix
            .columns
            .iter()
            .map(|c| c.label.clone())
            .chain(["total".to_string()])
            .zip(&cells)
            .map(|(label, &pct)| (label, Json::Num(pct)))
            .collect();
        incremental_rows.push(Json::obj(vec![
            ("benchmark", Json::from(row.row.name)),
            ("stages_pct", Json::Obj(stages)),
        ]));
    }

    println!();
    println!("# paper: access validation dominates everywhere; the allocator");
    println!("# contributes heavily for alloc-heavy benchmarks (gcc, xalancbmk).");

    let mut sink = h.sink();
    sink.push("core", Json::from("inorder"));
    sink.push_matrix("matrix", &matrix);
    sink.push("incremental", Json::Arr(incremental_rows));
    h.finish(sink, &matrix);
}

/// Per-stage incremental overhead percentages plus the cumulative
/// total, from the row's cumulative cycle counts. NaN where a run
/// failed.
fn incremental_cells(row: &rest_bench::engine::RowResults, ncols: usize) -> Vec<f64> {
    let Some(plain) = row.plain_result() else {
        return vec![f64::NAN; ncols + 1];
    };
    let plain_cycles = plain.cycles() as f64;
    let mut prev = plain_cycles;
    let mut cells = Vec::new();
    let mut total = f64::NAN;
    for c in 0..ncols {
        match row.cell(c) {
            Some(r) => {
                let cycles = r.cycles() as f64;
                cells.push((cycles - prev) / plain_cycles * 100.0);
                total = (cycles / plain_cycles - 1.0) * 100.0;
                prev = cycles;
            }
            None => {
                cells.push(f64::NAN);
                total = f64::NAN;
            }
        }
    }
    cells.push(total);
    cells
}
