//! Throughput regression gate: compares a fresh `rest-throughput/v2`
//! document against a committed baseline and exits nonzero when the
//! sweep-wide fast-path or trace-tier guest-IPS regressed beyond
//! tolerance. See [`rest_bench::benchdiff`].
//!
//! ```text
//! bench-diff --baseline results/BENCH_throughput.json \
//!            --current  /tmp/fresh.json \
//!            [--tolerance PCT] [--warn-only]
//! ```
//!
//! Exit codes: 0 = within tolerance (or `--warn-only`), 1 = regression,
//! 2 = usage or I/O error (malformed documents are errors, not passes).

use std::path::PathBuf;

use rest_bench::benchdiff::{diff, load, DEFAULT_TOLERANCE_PCT};

const USAGE: &str = "usage: bench-diff --baseline PATH --current PATH \
                     [--tolerance PCT] [--warn-only]\n\
                     \n\
                     --baseline PATH   committed rest-throughput/v2 document\n\
                     --current PATH    freshly measured document to gate\n\
                     --tolerance PCT   allowed aggregate guest-IPS drop (default 5)\n\
                     --warn-only       report a regression without failing (exit 0)";

fn die(msg: &str) -> ! {
    eprintln!("bench-diff: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_TOLERANCE_PCT;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => die("--baseline needs a path"),
            },
            "--current" => match it.next() {
                Some(v) => current = Some(PathBuf::from(v)),
                None => die("--current needs a path"),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tolerance = v,
                _ => die("--tolerance needs a non-negative percentage"),
            },
            "--warn-only" => warn_only = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let Some(baseline) = baseline else { die("--baseline is required") };
    let Some(current) = current else { die("--current is required") };

    let base_doc = load(&baseline).unwrap_or_else(|e| die(&e));
    let curr_doc = load(&current).unwrap_or_else(|e| die(&e));
    let report = diff(&base_doc, &curr_doc, tolerance).unwrap_or_else(|e| die(&e));
    print!("{}", report.render());
    if report.regressed() {
        if warn_only {
            eprintln!("bench-diff: regression detected, but --warn-only holds the gate open");
        } else {
            std::process::exit(1);
        }
    }
}
