//! `faults` — deterministic fault-injection campaign over the REST
//! defence: workloads × attacks × fault models, five-way outcome
//! classification, checkpoint/resume. See [`rest_bench::faults`].

fn main() {
    let mut h = rest_bench::cli::Harness::new("faults");
    rest_bench::faults::run_campaign(&mut h);
}
