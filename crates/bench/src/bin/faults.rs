//! `faults` — deterministic fault-injection campaign over the REST
//! defence: workloads × attacks × fault models, five-way outcome
//! classification, checkpoint/resume. See [`rest_bench::faults`].

fn main() {
    let cli = rest_bench::cli::BenchCli::parse("faults");
    rest_bench::faults::run_campaign(&cli);
}
