//! Defense-matrix campaign (`defense` binary).
//!
//! Sweeps the six protection configurations the backend seam makes
//! comparable — `plain`, `asan`, `rest-secure-full`, `mte-sync`,
//! `mte-async`, `pa` — over two halves:
//!
//! * **overheads**: the full 16-row benchmark set, reported as percent
//!   over the plain baseline (same machinery as Figure 7), and
//! * **coverage**: every [`Attack`] scenario under every scheme, each
//!   cell classified from the pipeline run's stop reason, audit log and
//!   output stream, then judged against the paper's §V expectation.
//!
//! A third section rides along when `tests/regress/` holds minimized
//! fuzz-campaign reproducers ([`rest_attacks::regress`]): each one
//! replays under every scheme and is judged with the same
//! [`Expectation::admits`] predicate against the expectations measured
//! at emission time. Any out-of-spec cell fails the campaign.
//!
//! Per attack cell the campaign derives the same [`AttackOutcome`] the
//! functional `rest-attacks` harness produces:
//!
//! | field | pipeline derivation |
//! |---|---|
//! | `detected` | stopped on a violation, **or** a detection-provenance audit entry exists |
//! | `delayed` | audit-only detection (MTE async/asymm TFSR: the run completed first) |
//! | `leaked_secret` | the planted [`SECRET`] reached the guest output |
//!
//! and checks it with [`Expectation::admits`] — the exact predicate the
//! functional path uses, so the two measurement paths cannot drift.
//! Both halves go into one `rest-defense/v1` JSON document
//! (`results/defense.json`), byte-identical at any `--jobs` level.

use rest_attacks::{Attack, AttackOutcome, Expectation, SECRET};
use rest_cpu::{SimResult, StopReason};
use rest_obs::Json;
use rest_runtime::RtConfig;

use std::sync::Arc;

use crate::cli::Harness;
use crate::engine::{ColumnSpec, JobError, MatrixResults, MatrixSpec, RegressProg, SimJob};

/// Campaign document schema identifier.
pub const SCHEMA: &str = "rest-defense/v1";

/// The compared configurations, by harness label, baseline first.
pub const SCHEMES: [&str; 6] = [
    "plain",
    "asan",
    "rest-secure-full",
    "mte-sync",
    "mte-async",
    "pa",
];

/// Audit-log detectors that count as a detection (provenance of the
/// four check mechanisms; the fault injector's entries do not count).
const DETECTORS: [&str; 4] = ["rest", "asan", rest_obs::MTE_TAGGER, rest_obs::PA_SIGNER];

/// The campaign's scheme set, resolved through the same
/// [`RtConfig::from_label`] table the CLI uses.
pub fn scheme_configs() -> Vec<(&'static str, RtConfig)> {
    SCHEMES
        .iter()
        .map(|&label| {
            let rt = RtConfig::from_label(label).expect("defense scheme labels are canonical");
            (label, rt)
        })
        .collect()
}

/// Derives the functional-harness verdict fields from a pipeline run:
/// precise detections stop the run, deferred ones (MTE async/asymm)
/// only reach the audit log, and a leak is the secret in the output.
pub fn outcome_of(result: &SimResult) -> AttackOutcome {
    let precise = matches!(result.stop, StopReason::Violation(_));
    let flagged = result
        .audit
        .entries()
        .iter()
        .any(|e| DETECTORS.contains(&e.detector));
    let leaked_secret = result
        .output
        .windows(SECRET.len())
        .any(|w| w == SECRET.as_slice());
    AttackOutcome {
        stop: result.stop.clone(),
        detected: precise || flagged,
        delayed: flagged && !precise,
        leaked_secret,
    }
}

/// Short display/JSON name for an attack cell's outcome.
fn verdict_name(out: &AttackOutcome) -> &'static str {
    if out.detected && !out.delayed {
        "detected"
    } else if out.delayed {
        "delayed"
    } else if out.leaked_secret {
        "leaked"
    } else {
        "quiet"
    }
}

/// One classified attack cell: `(json, ok)`.
fn attack_cell(
    scheme: &str,
    expect: Expectation,
    outcome: &Result<SimResult, JobError>,
) -> (Json, bool) {
    let mut members = vec![
        ("scheme", Json::from(scheme)),
        ("expectation", Json::from(expect.name())),
    ];
    let ok = match outcome {
        Err(e) => {
            members.push((
                "error",
                Json::obj(vec![
                    ("kind", Json::from(e.kind.as_str())),
                    ("detail", Json::from(e.detail.as_str())),
                ]),
            ));
            false
        }
        Ok(result) => {
            let out = outcome_of(result);
            let detector = result
                .audit
                .entries()
                .iter()
                .find(|e| DETECTORS.contains(&e.detector))
                .map(|e| Json::from(e.detector))
                .unwrap_or(Json::Null);
            let ok = expect.admits(&out);
            members.push(("stop", Json::from(format!("{:?}", out.stop))));
            members.push(("verdict", Json::from(verdict_name(&out))));
            members.push(("detected", Json::Bool(out.detected)));
            members.push(("delayed", Json::Bool(out.delayed)));
            members.push(("leaked_secret", Json::Bool(out.leaked_secret)));
            members.push(("detector", detector));
            members.push(("ok", Json::Bool(ok)));
            ok
        }
    };
    (Json::obj(members), ok)
}

/// Per-scheme aggregate of the allocation-site check attribution: how
/// many checks each scheme charged to guest allocation sites across the
/// whole overhead sweep, reconciled three ways against the per-PC
/// profiler and the backend's own `check_access` count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckAttribution {
    /// Allocation-site rows absorbed (one per live site per cell).
    pub sites: u64,
    /// Allocations / frees / bytes charged to those sites.
    pub allocs: u64,
    /// Frees charged to those sites.
    pub frees: u64,
    /// Bytes allocated at those sites.
    pub bytes: u64,
    /// Check invocations in the site table (includes runtime-internal
    /// hardened-free validations the per-PC profiler never sees).
    pub site_checks: u64,
    /// Injected check micro-ops in the site table.
    pub site_check_uops: u64,
    /// Check invocations in the per-PC profiler.
    pub pc_checks: u64,
    /// Injected check micro-ops in the per-PC profiler (== the site
    /// total, asserted per cell).
    pub pc_check_uops: u64,
    /// The backend seam's own `check_access` count (== site checks for
    /// every backend scheme, asserted per cell).
    pub backend_checks: u64,
    /// Pointer canonicalizations (REST's tagged-pointer strip).
    pub canonicalizations: u64,
    /// Deferred-fault latches (MTE async TFSR-style).
    pub deferred_latches: u64,
    /// Faults attributed back to the owning allocation site.
    pub faults: u64,
}

impl CheckAttribution {
    /// Folds one profiled run into the aggregate, asserting the
    /// per-cell reconciliation invariants. Errors are collection bugs.
    fn absorb(&mut self, cell: &str, result: &SimResult) -> Result<(), String> {
        let prof = result
            .profile
            .as_ref()
            .ok_or_else(|| format!("{cell}: result carries no guest profile"))?;
        let site_checks: u64 = prof.sites.iter().map(|(_, c)| c.checks).sum();
        let site_check_uops: u64 = prof.sites.iter().map(|(_, c)| c.check_uops).sum();
        // Check micro-ops reconcile exactly (only pipeline-visible
        // checks inject them); check counts may exceed the per-PC table
        // because runtime-internal validations have no access PC.
        if site_check_uops != prof.check_uops.total() {
            return Err(format!(
                "{cell}: site check-uop sum {site_check_uops} != per-PC total {}",
                prof.check_uops.total()
            ));
        }
        if prof.checks.total() > site_checks {
            return Err(format!(
                "{cell}: per-PC checks {} exceed site checks {site_checks}",
                prof.checks.total()
            ));
        }
        if prof.backend_checks > 0 && site_checks != prof.backend_checks {
            return Err(format!(
                "{cell}: site checks {site_checks} != backend checks {}",
                prof.backend_checks
            ));
        }
        self.sites += prof.sites.len() as u64;
        for (_, c) in &prof.sites {
            self.allocs += c.allocs;
            self.frees += c.frees;
            self.bytes += c.bytes;
            self.canonicalizations += c.canonicalizations;
            self.deferred_latches += c.deferred_latches;
            self.faults += c.faults;
        }
        self.site_checks += site_checks;
        self.site_check_uops += site_check_uops;
        self.pc_checks += prof.checks.total();
        self.pc_check_uops += prof.check_uops.total();
        self.backend_checks += prof.backend_checks;
        Ok(())
    }

    /// The aggregate as a JSON object (one per scheme in the document's
    /// `check_attribution` member).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sites", Json::UInt(self.sites)),
            ("allocs", Json::UInt(self.allocs)),
            ("frees", Json::UInt(self.frees)),
            ("bytes", Json::UInt(self.bytes)),
            ("site_checks", Json::UInt(self.site_checks)),
            ("site_check_uops", Json::UInt(self.site_check_uops)),
            ("pc_checks", Json::UInt(self.pc_checks)),
            ("pc_check_uops", Json::UInt(self.pc_check_uops)),
            ("backend_checks", Json::UInt(self.backend_checks)),
            ("canonicalizations", Json::UInt(self.canonicalizations)),
            ("deferred_latches", Json::UInt(self.deferred_latches)),
            ("faults", Json::UInt(self.faults)),
        ])
    }
}

/// Aggregates the per-allocation-site check attribution of a profiled
/// overhead matrix, per scheme: the shared plain baseline first, then
/// one entry per column in matrix order. Requires the matrix to have
/// run with `profile_guest` on.
pub fn check_attribution(
    matrix: &MatrixResults,
) -> Result<Vec<(String, CheckAttribution)>, String> {
    let mut per: Vec<(String, CheckAttribution)> =
        std::iter::once("plain".to_string())
            .chain(matrix.columns.iter().map(|c| c.label.clone()))
            .map(|label| (label, CheckAttribution::default()))
            .collect();
    for results in &matrix.rows {
        if let Some(result) = results.plain_result() {
            let cell = format!("{} plain", results.row.name);
            per[0].1.absorb(&cell, result)?;
        }
        for (col, _) in matrix.columns.iter().enumerate() {
            if let Some(result) = results.cell(col) {
                let cell = format!("{} {}", results.row.name, matrix.columns[col].label);
                per[col + 1].1.absorb(&cell, result)?;
            }
        }
    }
    Ok(per)
}

/// Per-scheme coverage counters over the attack half.
#[derive(Default, Clone, Copy)]
struct Coverage {
    detected: u64,
    delayed: u64,
    leaked: u64,
    unexpected: u64,
}

/// Runs the full campaign: the overhead matrix, then every attack under
/// every scheme, printing both tables and writing the document through
/// the harness sink (so `--json`, `--profile-out` and `--trace-out` all
/// behave like the other binaries).
pub fn run_campaign(mut h: Harness) {
    let cli = h.cli.clone();
    let configs = scheme_configs();

    // Overhead half: the five hardened schemes against the shared plain
    // baseline, over the standard benchmark rows.
    let columns: Vec<ColumnSpec> = configs
        .iter()
        .filter(|(label, _)| *label != "plain")
        .map(|(label, rt)| ColumnSpec::new(*label, rt.clone()))
        .collect();
    let mut spec = MatrixSpec::new(cli.filter_rows(crate::figure_rows()), columns, cli.scale)
        .with_observability(&cli);
    // Guest profiling rides along so the per-allocation-site check
    // attribution can be aggregated and reconciled per scheme.
    spec.profile_guest = true;
    let matrix = h.run_matrix(&spec);

    crate::print_machine_header("defense — runtime overhead over plain (%)");
    matrix.print_text_table();
    println!();

    let attribution = check_attribution(&matrix).unwrap_or_else(|e| {
        eprintln!("defense: check-attribution invariant violated: {e}");
        std::process::exit(1);
    });
    println!("defense — per-scheme check attribution (summed over allocation sites)");
    println!(
        "{:<18}{:>14}{:>16}{:>16}{:>14}{:>12}",
        "scheme", "site checks", "check uops", "backend chks", "canonical.", "deferred"
    );
    for (label, a) in &attribution {
        println!(
            "{:<18}{:>14}{:>16}{:>16}{:>14}{:>12}",
            label,
            a.site_checks,
            a.site_check_uops,
            a.backend_checks,
            a.canonicalizations,
            a.deferred_latches
        );
    }
    println!();

    // Coverage half: every attack × every scheme, on the pipeline.
    // Each scenario's runtime tweaks (Attack::rt_for) apply to every
    // scheme identically, so cells differ only in the protection
    // mechanism. The `--filter` flag narrows benchmark rows only; the
    // attack grid always runs in full.
    let mut jobs = Vec::new();
    for attack in Attack::ALL {
        for (label, rt) in &configs {
            jobs.push(SimJob::for_attack(
                attack,
                *label,
                attack.rt_for(rt.clone()),
                cli.scale,
            ));
        }
    }
    let outcomes = h.run_all(&jobs);

    println!("defense — attack coverage (expectation-checked verdict per cell)");
    print!("{:<28}", "attack");
    for (label, _) in &configs {
        print!("{label:>18}");
    }
    println!();
    let mut coverage = vec![Coverage::default(); configs.len()];
    let mut attack_docs = Vec::new();
    for (a, attack) in Attack::ALL.iter().enumerate() {
        print!("{:<28}", attack.name());
        let mut cell_docs = Vec::new();
        for (s, (label, rt)) in configs.iter().enumerate() {
            let expect = attack.expectation(rt.scheme);
            let outcome = &outcomes[a * configs.len() + s];
            let (cell, ok) = attack_cell(label, expect, outcome);
            let cov = &mut coverage[s];
            if let Ok(result) = outcome.as_ref() {
                let out = outcome_of(result);
                cov.detected += out.detected as u64;
                cov.delayed += out.delayed as u64;
                cov.leaked += out.leaked_secret as u64;
                print!(
                    "{:>18}",
                    format!("{}{}", verdict_name(&out), if ok { "" } else { " *UNEXP" })
                );
            } else {
                print!("{:>18}", "error *UNEXP");
            }
            cov.unexpected += (!ok) as u64;
            cell_docs.push(cell);
        }
        println!();
        attack_docs.push(Json::obj(vec![
            ("name", Json::from(attack.name())),
            ("cells", Json::Arr(cell_docs)),
        ]));
    }
    println!();
    let unexpected_total: u64 = coverage.iter().map(|c| c.unexpected).sum();
    println!(
        "detected per scheme: {}   unexpected cells: {unexpected_total}",
        configs
            .iter()
            .zip(&coverage)
            .map(|((label, _), c)| format!("{label}={}", c.detected))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Regression corpus: minimized fuzzer reproducers from
    // `tests/regress/`, replayed under the same six schemes and judged
    // with the same `Expectation::admits` predicate as the attacks.
    // The sidecar expectations were *measured* at emission time, so a
    // behaviour change anywhere in the stack flips a cell here.
    let corpus = rest_attacks::regress::corpus().unwrap_or_else(|e| {
        eprintln!("defense: regression corpus failed to load: {e}");
        std::process::exit(1);
    });
    let mut regress_jobs = Vec::new();
    for case in &corpus {
        let asm = Arc::new(case.asm.clone());
        for (label, rt) in &configs {
            regress_jobs.push(SimJob::for_regress(
                RegressProg {
                    name: case.name.clone(),
                    asm: Arc::clone(&asm),
                },
                *label,
                rt.clone(),
                cli.scale,
            ));
        }
    }
    let regress_outcomes = h.run_all(&regress_jobs);
    let mut regress_docs = Vec::new();
    let mut regress_unexpected: u64 = 0;
    if !corpus.is_empty() {
        println!();
        println!("defense — regression corpus (minimized fuzzer reproducers, same judge)");
        print!("{:<38}", "case");
        for (label, _) in &configs {
            print!("{label:>18}");
        }
        println!();
    }
    for (c, case) in corpus.iter().enumerate() {
        print!("{:<38}", case.name);
        let mut cell_docs = Vec::new();
        for (s, (label, _)) in configs.iter().enumerate() {
            let expect = case.expectation(label);
            let outcome = &regress_outcomes[c * configs.len() + s];
            let (cell, ok) = attack_cell(label, expect, outcome);
            if let Ok(result) = outcome.as_ref() {
                let out = outcome_of(result);
                print!(
                    "{:>18}",
                    format!("{}{}", verdict_name(&out), if ok { "" } else { " *UNEXP" })
                );
            } else {
                print!("{:>18}", "error *UNEXP");
            }
            regress_unexpected += (!ok) as u64;
            cell_docs.push(cell);
        }
        println!();
        regress_docs.push(Json::obj(vec![
            ("name", Json::from(case.name.as_str())),
            ("cells", Json::Arr(cell_docs)),
        ]));
    }
    if !corpus.is_empty() {
        println!();
        println!(
            "regression cases: {}   unexpected cells: {regress_unexpected}",
            corpus.len()
        );
    }

    let mut sink = h.sink();
    sink.push("schema", Json::from(SCHEMA));
    sink.push(
        "schemes",
        Json::Arr(SCHEMES.iter().map(|&l| Json::from(l)).collect()),
    );
    sink.push_matrix("overheads", &matrix);
    sink.push(
        "check_attribution",
        Json::obj(
            attribution
                .iter()
                .map(|(label, a)| (label.as_str(), a.to_json()))
                .collect(),
        ),
    );
    sink.push("attacks", Json::Arr(attack_docs));
    sink.push("regressions", Json::Arr(regress_docs));
    sink.push(
        "coverage",
        Json::obj(
            configs
                .iter()
                .zip(&coverage)
                .map(|((label, _), c)| {
                    (
                        *label,
                        Json::obj(vec![
                            ("detected", Json::UInt(c.detected)),
                            ("delayed", Json::UInt(c.delayed)),
                            ("leaked", Json::UInt(c.leaked)),
                            ("unexpected", Json::UInt(c.unexpected)),
                        ]),
                    )
                })
                .collect(),
        ),
    );
    h.finish(sink, &matrix);
    if regress_unexpected > 0 {
        eprintln!("defense: {regress_unexpected} regression-corpus cells out of spec");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_core::Mode;
    use rest_workloads::Scale;

    #[test]
    fn campaign_shape_is_stable() {
        let configs = scheme_configs();
        assert_eq!(configs.len(), 6);
        assert_eq!(configs[0].0, "plain");
        // Every label round-trips through the config it resolves to.
        for (label, rt) in &configs {
            assert_eq!(rt.label(), *label);
        }
        // 6 schemes × 10 attacks + 16 benchmark rows × (1 + 5) cells.
        assert_eq!(Attack::ALL.len() * configs.len(), 60);
        assert_eq!(crate::figure_rows().len(), 16);
    }

    #[test]
    fn pipeline_outcomes_match_functional_attack_verdicts() {
        // The derived AttackOutcome must agree with the functional
        // harness on both a precise and a deferred detection.
        let rest = SimJob::for_attack(
            Attack::HeapOverflowWrite,
            "rest-secure-full",
            RtConfig::rest(Mode::Secure, true),
            Scale::Test,
        )
        .execute()
        .unwrap();
        let out = outcome_of(&rest);
        assert!(out.detected && !out.delayed && !out.leaked_secret);
        assert_eq!(verdict_name(&out), "detected");
        assert!(Attack::HeapOverflowWrite
            .expectation(rest_runtime::Scheme::Rest)
            .admits(&out));

        // MTE async: the run completes, the leak happens, and only the
        // latched TFSR fault (audit entry) records the detection.
        let rt = RtConfig::from_label("mte-async").unwrap();
        let job = SimJob::for_attack(
            Attack::Heartbleed,
            "mte-async",
            Attack::Heartbleed.rt_for(rt),
            Scale::Test,
        );
        let mte = job.execute().unwrap();
        let out = outcome_of(&mte);
        assert!(out.detected && out.delayed, "stop: {:?}", mte.stop);
        assert_eq!(verdict_name(&out), "delayed");
        assert!(mte
            .audit
            .entries()
            .iter()
            .any(|e| e.detector == rest_obs::MTE_TAGGER));
    }

    #[test]
    fn check_attribution_reconciles_per_scheme() {
        use crate::engine::Engine;
        use crate::FigureRow;
        use rest_workloads::Workload;

        let mut spec = MatrixSpec::new(
            vec![FigureRow::of(Workload::Lbm)],
            vec![
                ColumnSpec::new("asan", RtConfig::asan()),
                ColumnSpec::new(
                    "rest-secure-full",
                    RtConfig::from_label("rest-secure-full").unwrap(),
                ),
                ColumnSpec::new("mte-sync", RtConfig::from_label("mte-sync").unwrap()),
            ],
            Scale::Test,
        );
        spec.profile_guest = true;
        let matrix = Engine::new(2).run_matrix(&spec);
        let per = check_attribution(&matrix).expect("reconciliation holds");
        let by_label: std::collections::HashMap<&str, &CheckAttribution> =
            per.iter().map(|(l, a)| (l.as_str(), a)).collect();

        let plain = by_label["plain"];
        assert_eq!(plain.site_checks, 0, "plain charges no checks");
        assert_eq!(plain.backend_checks, 0);
        assert!(plain.allocs > 0, "sites still record allocations");

        let asan = by_label["asan"];
        assert!(asan.site_checks > 0);
        assert_eq!(asan.backend_checks, 0, "ASan is shadow-memory, not a backend");
        assert!(asan.site_check_uops > 0, "ASan injects check micro-ops");
        assert_eq!(asan.site_check_uops, asan.pc_check_uops);

        let rest = by_label["rest-secure-full"];
        assert!(rest.backend_checks > 0);
        assert_eq!(rest.site_checks, rest.backend_checks);
        assert_eq!(rest.site_check_uops, 0, "REST checks ride the cache fill");
        assert_eq!(rest.canonicalizations, 0, "REST keeps pointers untagged");

        let mte = by_label["mte-sync"];
        assert_eq!(mte.site_checks, mte.backend_checks);
        assert!(mte.site_check_uops > 0, "MTE sync fetches tags inline");
        assert_eq!(mte.site_check_uops, mte.pc_check_uops);
        assert!(mte.canonicalizations > 0, "MTE strips pointer tags");
    }

    #[test]
    fn plain_cells_are_quiet_or_leaky_but_never_detected() {
        let rt = RtConfig::plain();
        let result = SimJob::for_attack(Attack::Heartbleed, "plain", rt, Scale::Test)
            .execute()
            .unwrap();
        let out = outcome_of(&result);
        assert!(!out.detected && out.leaked_secret);
        assert_eq!(verdict_name(&out), "leaked");
    }
}
