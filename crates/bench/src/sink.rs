//! Result sink: paper-formatted text stays on stdout; every experiment
//! additionally serialises a machine-readable JSON document.
//!
//! The JSON is hand-rolled (the build environment has no registry
//! access, so no serde): [`Json`] — re-exported from [`rest_obs`] — is
//! a minimal value tree whose object fields keep insertion order,
//! making the serialised output fully deterministic — the same
//! experiment matrix produces byte-identical JSON regardless of
//! `--jobs`.
//!
//! # Document schema
//!
//! Every document starts with the experiment identity:
//!
//! ```json
//! {
//!   "experiment": "fig7",
//!   "scale": "test" | "ref",
//!   "machine": "<Table II one-liner>",
//!   "filter": null | "<substring>",
//!   ...
//! }
//! ```
//!
//! Matrix experiments add a `"matrix"` member (see
//! [`ResultSink::push_matrix`]):
//!
//! ```json
//! "matrix": {
//!   "columns": ["asan", "rest-debug-full", ...],
//!   "rows": [
//!     {
//!       "benchmark": "bzip2", "workload": "bzip2", "seed": 12648430,
//!       "plain": { "cycles": 123, "stats": { "core.cycles": 123, ... },
//!                  "derived": { ... }, "cpi": { ... } },
//!       "cells": [
//!         { "label": "asan", "cycles": 456, "overhead_pct": 12.5,
//!           "stats": { ... }, "derived": { ... }, "cpi": { ... } },
//!         { "label": "...", "error": { "kind": "uop-limit",
//!           "detail": "..." } }
//!       ]
//!     }
//!   ],
//!   "summary": {
//!     "wtd_ari_mean_pct": { "asan": 40.1, ... },
//!     "geo_mean_pct": { "asan": 38.9, ... }
//!   }
//! }
//! ```
//!
//! Per-cell members:
//!
//! * `"stats"` — the flat counter snapshot from
//!   [`SimResult::stats_map`](rest_cpu::SimResult::stats_map).
//! * `"derived"` — headline rates computed from the counters:
//!   `"core.uipc"` (committed micro-ops per cycle),
//!   `"mem.l1d_hit_rate"` (L1-D hits over L1-D accesses), and
//!   `"tokens_per_kiloinst_l2_mem"` (token-line transfers crossing the
//!   L2↔memory boundary per thousand committed instructions, the
//!   paper's §VI-B traffic statistic).
//! * `"cpi"` — the commit-time cycle-attribution stack
//!   ([`rest_obs::CpiStack`]): one member per component
//!   (`"base"`, `"fetch_stall"`, `"branch"`, `"iq"`, `"rob"`, `"lsq"`,
//!   `"l1d_miss"`, `"l2_miss"`, `"dram"`, `"store_drain"`,
//!   `"rest_check"`) plus `"total"`; the components sum **exactly** to
//!   `"total"` == `stats["core.cycles"]`.
//! * `"series"` — present only when the run sampled
//!   (`--sample-interval N`): the [`rest_obs::TimeSeries`] document
//!   `{"interval", "dropped", "samples": [{"insts", "cycles",
//!   "gauges", "counters"}]}` with one sample per N committed
//!   instructions.
//! * `"audit"` — present only when the run recorded violations: the
//!   [`rest_obs::AuditLog`] document `{"total", "entries": [{
//!   "detector", "kind", "pc", "addr", ...}]}`.
//! * `"fault"` — present only when the run injected a hardware fault
//!   (`rest-faults`): the [`rest_faults::FaultReport`] summary
//!   `{"kind", "triggered", "site_events", "trigger_event",
//!   "records", "suppressed_hits"}`.
//!
//! Failed jobs serialise as `"error"` cells; non-finite floats
//! serialise as `null`.

use std::io;
use std::path::Path;

use rest_cpu::SimResult;

use crate::cli::BenchCli;
use crate::engine::{MatrixResults, RowResults};

pub use rest_obs::Json;

/// Accumulates an experiment's JSON document and writes it to the
/// `--json` path (default `results/<experiment>.json`).
pub struct ResultSink {
    cli: BenchCli,
    root: Vec<(String, Json)>,
}

impl ResultSink {
    /// A sink pre-populated with the experiment identity (name, scale,
    /// machine, filter).
    pub fn new(cli: &BenchCli) -> ResultSink {
        let filter = match &cli.filter {
            Some(f) => Json::Str(f.clone()),
            None => Json::Null,
        };
        ResultSink {
            cli: cli.clone(),
            root: vec![
                ("experiment".to_string(), Json::Str(cli.experiment.clone())),
                ("scale".to_string(), Json::Str(cli.scale_name().to_string())),
                ("machine".to_string(), Json::Str(crate::MACHINE.to_string())),
                ("filter".to_string(), filter),
            ],
        }
    }

    /// Appends one top-level member.
    pub fn push(&mut self, key: &str, value: Json) {
        self.root.push((key.to_string(), value));
    }

    /// Appends the standard serialisation of a matrix under `key`.
    pub fn push_matrix(&mut self, key: &str, matrix: &MatrixResults) {
        self.push(key, matrix_json(matrix));
    }

    /// The complete document as a pretty-printed string (with trailing
    /// newline). This is what [`ResultSink::write`] persists — tests
    /// compare it byte-for-byte across `--jobs` levels.
    pub fn to_json_string(&self) -> String {
        let mut s = Json::Obj(self.root.clone()).to_string_pretty();
        s.push('\n');
        s
    }

    /// Writes the document to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }

    /// Writes to the CLI-selected path and reports it on stderr (never
    /// stdout: the text tables must stay byte-stable).
    pub fn finish(&self) {
        let path = self.cli.json_path();
        match self.write(&path) {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => {
                eprintln!("# FAILED writing {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// A successful run as a JSON cell body: headline cycles, the flat
/// stats snapshot, derived rates, and the commit-time CPI stack.
/// Optional sections (`series`, `audit`) appear only when the run
/// carries them, keeping default documents compact.
pub fn result_json(result: &SimResult) -> Vec<(&'static str, Json)> {
    let stats = result
        .stats_map()
        .into_iter()
        .map(|(k, v)| (k.to_string(), Json::UInt(v)))
        .collect();
    let derived = Json::obj(vec![
        ("core.uipc", Json::Num(result.core.uipc())),
        ("mem.l1d_hit_rate", Json::Num(result.mem.l1d_hit_rate())),
        (
            "tokens_per_kiloinst_l2_mem",
            Json::Num(result.tokens_per_kiloinst_l2_mem()),
        ),
    ]);
    let mut body = vec![
        ("cycles", Json::UInt(result.cycles())),
        ("stats", Json::Obj(stats)),
        ("derived", derived),
        ("cpi", result.core.cpi.to_json()),
    ];
    if let Some(series) = &result.series {
        body.push(("series", series.to_json()));
    }
    if !result.audit.is_empty() {
        body.push(("audit", result.audit.to_json()));
    }
    if let Some(report) = &result.fault {
        body.push((
            "fault",
            Json::obj(vec![
                ("kind", Json::from(report.kind)),
                ("triggered", Json::Bool(report.triggered)),
                ("site_events", Json::UInt(report.site_events)),
                ("trigger_event", Json::UInt(report.trigger_event)),
                ("records", Json::UInt(report.records)),
                ("suppressed_hits", Json::UInt(report.suppressed_hits)),
            ]),
        ));
    }
    body
}

fn outcome_json(
    label: &str,
    outcome: &Result<SimResult, crate::engine::JobError>,
    overhead_pct: Option<f64>,
) -> Json {
    let mut members = vec![("label", Json::from(label))];
    match outcome {
        Ok(result) => {
            let mut body = result_json(result);
            if let Some(pct) = overhead_pct {
                body.insert(1, ("overhead_pct", Json::Num(pct)));
            }
            members.extend(body);
        }
        Err(e) => {
            members.push((
                "error",
                Json::obj(vec![
                    ("kind", Json::from(e.kind.as_str())),
                    ("detail", Json::from(e.detail.as_str())),
                ]),
            ));
        }
    }
    Json::obj(members)
}

fn row_json(row: &RowResults, columns: &[crate::engine::ColumnSpec]) -> Json {
    let mut members = vec![
        ("benchmark", Json::from(row.row.name)),
        ("workload", Json::from(row.row.workload.name())),
        ("seed", Json::UInt(row.row.seed)),
    ];
    if let Some(plain) = &row.plain {
        members.push(("plain", outcome_json("plain", plain, None)));
    }
    let cells = columns
        .iter()
        .enumerate()
        .map(|(c, col)| {
            let pct = row.overhead_pct(c);
            let pct = pct.is_finite().then_some(pct);
            outcome_json(&col.label, &row.cells[c], pct)
        })
        .collect();
    members.push(("cells", Json::Arr(cells)));
    Json::obj(members)
}

/// The standard matrix serialisation (columns, rows, mean summaries).
pub fn matrix_json(matrix: &MatrixResults) -> Json {
    let columns = matrix
        .columns
        .iter()
        .map(|c| Json::from(c.label.as_str()))
        .collect();
    let rows = matrix
        .rows
        .iter()
        .map(|r| row_json(r, &matrix.columns))
        .collect();
    let mut members = vec![("columns", Json::Arr(columns)), ("rows", Json::Arr(rows))];
    let has_plain = matrix.rows.iter().any(|r| r.plain.is_some());
    if has_plain {
        let summary = matrix.summary();
        let pair = |pick: fn(&(f64, f64)) -> f64| {
            Json::Obj(
                matrix
                    .columns
                    .iter()
                    .zip(&summary)
                    .map(|(c, s)| (c.label.clone(), Json::Num(pick(s))))
                    .collect(),
            )
        };
        members.push((
            "summary",
            Json::obj(vec![
                ("wtd_ari_mean_pct", pair(|s| s.0)),
                ("geo_mean_pct", pair(|s| s.1)),
            ]),
        ));
    }
    Json::obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_escaped() {
        let doc = Json::obj(vec![
            ("b", Json::Int(-3)),
            ("a", Json::from(1.5)),
            ("nan", Json::Num(f64::NAN)),
            ("s", Json::from("a\"b\\c\nd\u{1}")),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("empty", Json::obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        // Insertion order preserved ("b" before "a"), NaN → null.
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains(r#""a\"b\\c\nd\u0001""#));
        assert!(text.contains("\"empty\": {}"));
        assert_eq!(text, doc.to_string_pretty());
    }

    #[test]
    fn floats_render_as_json_numbers() {
        assert_eq!(Json::Num(1.0).to_string_pretty(), "1");
        assert_eq!(Json::Num(0.04).to_string_pretty(), "0.04");
        assert_eq!(Json::Num(-2.5).to_string_pretty(), "-2.5");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null");
        assert_eq!(Json::UInt(u64::MAX).to_string_pretty(), u64::MAX.to_string());
    }
}
