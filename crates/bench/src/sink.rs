//! Result sink: paper-formatted text stays on stdout; every experiment
//! additionally serialises a machine-readable JSON document.
//!
//! The JSON is hand-rolled (the build environment has no registry
//! access, so no serde): [`Json`] is a minimal value tree whose object
//! fields keep insertion order, making the serialised output fully
//! deterministic — the same experiment matrix produces byte-identical
//! JSON regardless of `--jobs`.
//!
//! # Document schema
//!
//! Every document starts with the experiment identity:
//!
//! ```json
//! {
//!   "experiment": "fig7",
//!   "scale": "test" | "ref",
//!   "machine": "<Table II one-liner>",
//!   "filter": null | "<substring>",
//!   ...
//! }
//! ```
//!
//! Matrix experiments add a `"matrix"` member (see
//! [`ResultSink::push_matrix`]):
//!
//! ```json
//! "matrix": {
//!   "columns": ["asan", "rest-debug-full", ...],
//!   "rows": [
//!     {
//!       "benchmark": "bzip2", "workload": "bzip2", "seed": 12648430,
//!       "plain": { "cycles": 123, "stats": { "core.cycles": 123, ... } },
//!       "cells": [
//!         { "label": "asan", "cycles": 456, "overhead_pct": 12.5,
//!           "stats": { ... } },
//!         { "label": "...", "error": { "kind": "uop-limit",
//!           "detail": "..." } }
//!       ]
//!     }
//!   ],
//!   "summary": {
//!     "wtd_ari_mean_pct": { "asan": 40.1, ... },
//!     "geo_mean_pct": { "asan": 38.9, ... }
//!   }
//! }
//! ```
//!
//! `"stats"` is the flat counter snapshot from
//! [`SimResult::stats_map`](rest_cpu::SimResult::stats_map). Failed
//! jobs serialise as `"error"` cells; non-finite floats serialise as
//! `null`.

use std::io;
use std::path::Path;

use rest_cpu::SimResult;

use crate::cli::BenchCli;
use crate::engine::{MatrixResults, RowResults};

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    /// Finite floats only; non-finite values serialise as `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialises the value as pretty-printed JSON (2-space indent,
    /// trailing newline at the document level is the caller's choice).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // f64 Display is the shortest round-trip decimal,
                    // which is valid JSON ("1", "0.04", "22.47").
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Accumulates an experiment's JSON document and writes it to the
/// `--json` path (default `results/<experiment>.json`).
pub struct ResultSink {
    cli: BenchCli,
    root: Vec<(String, Json)>,
}

impl ResultSink {
    /// A sink pre-populated with the experiment identity (name, scale,
    /// machine, filter).
    pub fn new(cli: &BenchCli) -> ResultSink {
        let filter = match &cli.filter {
            Some(f) => Json::Str(f.clone()),
            None => Json::Null,
        };
        ResultSink {
            cli: cli.clone(),
            root: vec![
                ("experiment".to_string(), Json::Str(cli.experiment.clone())),
                ("scale".to_string(), Json::Str(cli.scale_name().to_string())),
                ("machine".to_string(), Json::Str(crate::MACHINE.to_string())),
                ("filter".to_string(), filter),
            ],
        }
    }

    /// Appends one top-level member.
    pub fn push(&mut self, key: &str, value: Json) {
        self.root.push((key.to_string(), value));
    }

    /// Appends the standard serialisation of a matrix under `key`.
    pub fn push_matrix(&mut self, key: &str, matrix: &MatrixResults) {
        self.push(key, matrix_json(matrix));
    }

    /// The complete document as a pretty-printed string (with trailing
    /// newline). This is what [`ResultSink::write`] persists — tests
    /// compare it byte-for-byte across `--jobs` levels.
    pub fn to_json_string(&self) -> String {
        let mut s = Json::Obj(self.root.clone()).to_string_pretty();
        s.push('\n');
        s
    }

    /// Writes the document to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }

    /// Writes to the CLI-selected path and reports it on stderr (never
    /// stdout: the text tables must stay byte-stable).
    pub fn finish(&self) {
        let path = self.cli.json_path();
        match self.write(&path) {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => {
                eprintln!("# FAILED writing {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// A successful run as a JSON cell body: headline cycles plus the flat
/// stats snapshot.
pub fn result_json(result: &SimResult) -> Vec<(&'static str, Json)> {
    let stats = result
        .stats_map()
        .into_iter()
        .map(|(k, v)| (k.to_string(), Json::UInt(v)))
        .collect();
    vec![
        ("cycles", Json::UInt(result.cycles())),
        ("stats", Json::Obj(stats)),
    ]
}

fn outcome_json(
    label: &str,
    outcome: &Result<SimResult, crate::engine::JobError>,
    overhead_pct: Option<f64>,
) -> Json {
    let mut members = vec![("label", Json::from(label))];
    match outcome {
        Ok(result) => {
            let mut body = result_json(result);
            if let Some(pct) = overhead_pct {
                body.insert(1, ("overhead_pct", Json::Num(pct)));
            }
            members.extend(body);
        }
        Err(e) => {
            members.push((
                "error",
                Json::obj(vec![
                    ("kind", Json::from(e.kind.as_str())),
                    ("detail", Json::from(e.detail.as_str())),
                ]),
            ));
        }
    }
    Json::obj(members)
}

fn row_json(row: &RowResults, columns: &[crate::engine::ColumnSpec]) -> Json {
    let mut members = vec![
        ("benchmark", Json::from(row.row.name)),
        ("workload", Json::from(row.row.workload.name())),
        ("seed", Json::UInt(row.row.seed)),
    ];
    if let Some(plain) = &row.plain {
        members.push(("plain", outcome_json("plain", plain, None)));
    }
    let cells = columns
        .iter()
        .enumerate()
        .map(|(c, col)| {
            let pct = row.overhead_pct(c);
            let pct = pct.is_finite().then_some(pct);
            outcome_json(&col.label, &row.cells[c], pct)
        })
        .collect();
    members.push(("cells", Json::Arr(cells)));
    Json::obj(members)
}

/// The standard matrix serialisation (columns, rows, mean summaries).
pub fn matrix_json(matrix: &MatrixResults) -> Json {
    let columns = matrix
        .columns
        .iter()
        .map(|c| Json::from(c.label.as_str()))
        .collect();
    let rows = matrix
        .rows
        .iter()
        .map(|r| row_json(r, &matrix.columns))
        .collect();
    let mut members = vec![("columns", Json::Arr(columns)), ("rows", Json::Arr(rows))];
    let has_plain = matrix.rows.iter().any(|r| r.plain.is_some());
    if has_plain {
        let summary = matrix.summary();
        let pair = |pick: fn(&(f64, f64)) -> f64| {
            Json::Obj(
                matrix
                    .columns
                    .iter()
                    .zip(&summary)
                    .map(|(c, s)| (c.label.clone(), Json::Num(pick(s))))
                    .collect(),
            )
        };
        members.push((
            "summary",
            Json::obj(vec![
                ("wtd_ari_mean_pct", pair(|s| s.0)),
                ("geo_mean_pct", pair(|s| s.1)),
            ]),
        ));
    }
    Json::obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_escaped() {
        let doc = Json::obj(vec![
            ("b", Json::Int(-3)),
            ("a", Json::from(1.5)),
            ("nan", Json::Num(f64::NAN)),
            ("s", Json::from("a\"b\\c\nd\u{1}")),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("empty", Json::obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        // Insertion order preserved ("b" before "a"), NaN → null.
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains(r#""a\"b\\c\nd\u0001""#));
        assert!(text.contains("\"empty\": {}"));
        assert_eq!(text, doc.to_string_pretty());
    }

    #[test]
    fn floats_render_as_json_numbers() {
        assert_eq!(Json::Num(1.0).to_string_pretty(), "1");
        assert_eq!(Json::Num(0.04).to_string_pretty(), "0.04");
        assert_eq!(Json::Num(-2.5).to_string_pretty(), "-2.5");
        assert_eq!(Json::Num(f64::INFINITY).to_string_pretty(), "null");
        assert_eq!(Json::UInt(u64::MAX).to_string_pretty(), u64::MAX.to_string());
    }
}
