//! Adversarial-corpus fuzz campaign (`fuzz` binary).
//!
//! Generates a seeded stream of randomized-but-well-formed allocator
//! traces with injected bugs of known ground truth ([`rest_fuzz`]) and
//! runs every case through the tri-oracle differential harness: the
//! static verifier's must-trap verdict, the functional emulator at all
//! three execution tiers, and the cycle-level timing path. Each case
//! classifies into a [`Class`]; the campaign runs **rounds** of
//! `--round-size` programs until two consecutive rounds surface no new
//! `truth/class` signature (and at least `--min-programs` ran), then
//! minimizes one exemplar per signature to a 1-minimal reproducer.
//!
//! The campaign writes a signature table to stdout and a `rest-fuzz/v1`
//! JSON document to `results/fuzz.json`, byte-identical at any `--jobs`
//! level and across interrupt (`--max-cells N`) + `--resume`, using the
//! same checkpoint machinery as the fault campaign
//! ([`crate::checkpoint`]). Any case whose class is not *explained*
//! (cross-oracle agreement or a documented §V-C known miss) fails the
//! run with exit status 1 — the hard zero-unexplained gate CI enforces.
//!
//! With `--emit-regress DIR`, every bug signature's minimized exemplar
//! is written as an assembly reproducer (`<slug>.s`) plus an alloc-trace
//! sidecar (`<slug>.trace`) carrying per-scheme `expect` lines computed
//! empirically on the pipeline — the regression-corpus format the
//! defense and elision campaigns replay.

use std::collections::{BTreeMap, BTreeSet};

use rest_fuzz::{
    lower, minimize, run_case, Case, CaseRecord, CaseStream, Class, GroundTruth, BUG_SLOT,
};
use rest_obs::Json;

use crate::checkpoint::Checkpoint;
use crate::cli::Harness;
use crate::engine::{RegressProg, SimJob};

/// Campaign document schema identifier.
pub const SCHEMA: &str = "rest-fuzz/v1";

/// Cases simulated between checkpoint saves.
const CKPT_CHUNK: usize = 64;

/// Consecutive signature-free rounds required to stop.
const DRY_ROUNDS: usize = 2;

/// Hard round cap: a backstop against a pathological stream that keeps
/// minting signatures, far above what the finite `truth/class` space
/// can reach.
const MAX_ROUNDS: usize = 64;

/// Checkpoint key for one case index.
fn case_key(index: u64) -> String {
    format!("case-{index:06}")
}

/// FNV-1a over the guest output stream (recorded instead of the bytes
/// themselves, so checkpoints stay small but divergence stays visible).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `truth/class` disagreement signature of a recorded case.
fn signature(record: &Json) -> String {
    let field = |key| record.get(key).and_then(Json::as_str).unwrap_or("?");
    format!("{}/{}", field("truth"), field("class"))
}

/// One case's checkpointed record: scalars only (strings, ints, bools),
/// so the serialise→parse round trip through the checkpoint is
/// lossless and resumed campaigns render byte-identical documents.
fn record_json(case: &Case, rec: &CaseRecord) -> Json {
    Json::obj(vec![
        ("case", Json::UInt(case.index)),
        ("truth", Json::from(case.truth.name())),
        ("class", Json::from(rec.class.name())),
        ("ops", Json::UInt(case.ops.len() as u64)),
        ("stop", Json::from(rec.stop.as_str())),
        ("detail", Json::from(rec.detail.as_str())),
        ("detected", Json::Bool(rec.detected)),
        ("musttrap", Json::Bool(rec.musttrap)),
        ("static_errors", Json::UInt(rec.static_errors)),
        ("static_findings", Json::UInt(rec.static_findings)),
        ("output_len", Json::UInt(rec.output.len() as u64)),
        (
            "output_fnv",
            Json::from(format!("{:#018x}", fnv1a(&rec.output))),
        ),
        ("insts", Json::UInt(rec.insts)),
        ("cycles", Json::UInt(rec.cycles)),
    ])
}

/// File-name slug for a signature (`oob-write/agree-detected` →
/// `oob-write--agree-detected`).
fn sig_slug(sig: &str) -> String {
    sig.replace('/', "--")
}

/// Empirical per-scheme expectation of a minimized reproducer: the
/// pipeline runs the program under each defense scheme and the verdict
/// maps onto the [`rest_attacks::Expectation`] vocabulary the regression
/// replay judges with. Generated programs plant no secret, so
/// `detected`/`undetected` are exact; a REST miss on a ground-truth
/// known-miss case is the documented §V-C `false-negative`.
fn scheme_expectations(h: &Harness, case: &Case, asm: &str, slug: &str) -> Vec<(String, String)> {
    let known_miss = matches!(case.truth, GroundTruth::Miss(_));
    crate::defense::scheme_configs()
        .into_iter()
        .map(|(label, rt)| {
            let prog = RegressProg {
                name: slug.to_string(),
                asm: std::sync::Arc::new(asm.to_string()),
            };
            let job = SimJob::for_regress(prog, label, rt, h.cli.scale);
            let expect = match job.execute() {
                Err(e) => {
                    eprintln!("# fuzz: {slug} failed under {label}: {}", e.detail);
                    std::process::exit(1);
                }
                Ok(result) => {
                    let out = crate::defense::outcome_of(&result);
                    if out.detected {
                        "detected"
                    } else if known_miss && label == "rest-secure-full" {
                        "false-negative"
                    } else {
                        "undetected"
                    }
                }
            };
            (label.to_string(), expect.to_string())
        })
        .collect()
}

/// Writes one minimized reproducer as `<slug>.s` + `<slug>.trace` into
/// `dir`, with provenance headers and empirical `expect` lines.
fn emit_regress(h: &Harness, dir: &std::path::Path, sig: &str, case: &Case) {
    let slug = sig_slug(sig);
    let header = format!(
        "# rest-fuzz minimized reproducer\n\
         # seed: {:#x}  case: {}\n\
         # signature: {sig}\n",
        h.cli.fuzz_seed, case.index
    );
    let asm = format!("{header}{}", lower(case).to_asm());
    let mut trace = format!("{header}");
    for op in &case.ops {
        trace.push_str(&format!("op {}\n", op.line()));
    }
    for (scheme, expect) in scheme_expectations(h, case, &asm, &slug) {
        trace.push_str(&format!("expect {scheme} {expect}\n"));
    }
    crate::write_text_file(&dir.join(format!("{slug}.s")), &asm);
    crate::write_text_file(&dir.join(format!("{slug}.trace")), &trace);
}

/// Runs the full campaign: generate + tri-oracle rounds until dry
/// (checkpointing every [`CKPT_CHUNK`] cases), then — unless
/// interrupted by `--max-cells` — minimize one exemplar per signature,
/// print the table, write `results/fuzz.json`, delete the checkpoint,
/// and exit 1 if any case classified as unexplained.
pub fn run_campaign(h: &mut Harness) {
    let cli = h.cli.clone();
    let rt = rest_fuzz::campaign_rt();
    let fingerprint = format!(
        "{SCHEMA}|{}|seed={:#x}|round={}|min={}|dry={DRY_ROUNDS}|mode=rest-secure-full",
        cli.scale_name(),
        cli.fuzz_seed,
        cli.round_size,
        cli.min_programs,
    );
    let mut ckpt = Checkpoint::open(&cli.ckpt_path(), &fingerprint, cli.resume);

    let mut stream = CaseStream::new(cli.fuzz_seed);
    let mut cases: Vec<Case> = Vec::new();
    let mut seen_sigs: BTreeSet<String> = BTreeSet::new();
    let mut round_docs: Vec<Json> = Vec::new();
    let cell_limit = cli.max_cells.unwrap_or(usize::MAX);
    let mut fresh = 0usize;
    let mut dry = 0usize;
    let mut ran_dry = false;
    let mut interrupted = false;

    'rounds: for round in 1..=MAX_ROUNDS {
        // Generation is pure and cheap: the stream always replays from
        // the seed, so resumed campaigns see the exact same cases and
        // only the oracle runs are skipped.
        let start = cases.len();
        for _ in 0..cli.round_size {
            cases.push(stream.next_case());
        }
        let round_cases = &cases[start..];

        let pending: Vec<&Case> = round_cases
            .iter()
            .filter(|c| ckpt.get(&case_key(c.index)).is_none())
            .collect();
        for chunk in pending.chunks(CKPT_CHUNK) {
            if fresh >= cell_limit {
                interrupted = true;
                break 'rounds;
            }
            let take = (cell_limit - fresh).min(chunk.len());
            let part = &chunk[..take];
            let records = h.engine.run_tasks(part.len(), |i| run_case(part[i], &rt));
            for (case, rec) in part.iter().zip(&records) {
                ckpt.insert(case_key(case.index), record_json(case, rec));
            }
            fresh += take;
            if let Err(e) = ckpt.save() {
                eprintln!("# FAILED writing checkpoint: {e}");
                std::process::exit(1);
            }
            if take < chunk.len() {
                interrupted = true;
                break 'rounds;
            }
        }

        // Round bookkeeping runs off the recorded cells only, so a
        // resumed campaign recomputes the identical dry sequence.
        let mut new_sigs: Vec<Json> = Vec::new();
        for case in round_cases {
            let record = ckpt.get(&case_key(case.index)).expect("round completed");
            let sig = signature(record);
            if seen_sigs.insert(sig.clone()) {
                new_sigs.push(Json::Str(sig));
            }
        }
        dry = if new_sigs.is_empty() { dry + 1 } else { 0 };
        eprintln!(
            "# fuzz: round {round}: {} program(s), {} new signature(s), dry {dry}/{DRY_ROUNDS}",
            round_cases.len(),
            new_sigs.len()
        );
        round_docs.push(Json::obj(vec![
            ("round", Json::UInt(round as u64)),
            ("programs", Json::UInt(round_cases.len() as u64)),
            ("new_signatures", Json::Arr(new_sigs)),
        ]));
        if dry >= DRY_ROUNDS && cases.len() >= cli.min_programs {
            ran_dry = true;
            break;
        }
    }
    if interrupted {
        eprintln!(
            "# fuzz: stopped after {fresh} fresh case(s) (--max-cells); \
             {} recorded — rerun with --resume to finish",
            ckpt.len()
        );
        return;
    }

    // Aggregate the recorded cells: per-class counts, per-signature
    // stats, and the unexplained set the gate fires on.
    struct SigStat {
        count: u64,
        first_case: u64,
        truth: String,
        class: String,
        explained: bool,
    }
    let mut classes: BTreeMap<String, u64> = BTreeMap::new();
    let mut sigs: BTreeMap<String, SigStat> = BTreeMap::new();
    let mut unexplained_cases: Vec<Json> = Vec::new();
    for case in &cases {
        let record = ckpt.get(&case_key(case.index)).expect("campaign completed");
        let class_name = record.get("class").and_then(Json::as_str).unwrap_or("?");
        let explained = Class::from_name(class_name).is_some_and(Class::is_explained);
        *classes.entry(class_name.to_string()).or_insert(0) += 1;
        let sig = signature(record);
        sigs.entry(sig)
            .and_modify(|s| s.count += 1)
            .or_insert_with(|| SigStat {
                count: 1,
                first_case: case.index,
                truth: case.truth.name().to_string(),
                class: class_name.to_string(),
                explained,
            });
        if !explained && unexplained_cases.len() < 50 {
            unexplained_cases.push(Json::UInt(case.index));
        }
    }
    let unexplained_total: u64 = classes
        .iter()
        .filter(|(name, _)| !Class::from_name(name).is_some_and(Class::is_explained))
        .map(|(_, n)| n)
        .sum();

    // Minimize one exemplar per signature: the earliest case, shrunk to
    // a 1-minimal reproducer of the same class.
    crate::print_machine_header("fuzz — adversarial tri-oracle campaign (rest-secure-full)");
    println!(
        "{:<42}{:>9}{:>12}{:>12}{:>9}",
        "signature", "count", "first case", "explained", "min ops"
    );
    let mut sig_docs: Vec<(String, Json)> = Vec::new();
    for (sig, stat) in &sigs {
        let minimized = minimize(&cases[stat.first_case as usize], &rt);
        println!(
            "{:<42}{:>9}{:>12}{:>12}{:>9}",
            sig,
            stat.count,
            stat.first_case,
            if stat.explained { "yes" } else { "NO" },
            minimized.ops.len()
        );
        if let Some(dir) = &cli.emit_regress {
            // Known-miss classes are runtime-vacuous (nothing traps or
            // must-traps), so the class-preserving minimizer deletes
            // every op; the committed reproducer falls back to the
            // injected bug ops. Clean signatures have no bug ops and
            // emit nothing.
            let exemplar = if minimized.ops.is_empty() {
                let first = &cases[stat.first_case as usize];
                Case {
                    index: first.index,
                    ops: first
                        .ops
                        .iter()
                        .filter(|op| op.slot() == BUG_SLOT)
                        .copied()
                        .collect(),
                    truth: first.truth,
                }
            } else {
                minimized.clone()
            };
            if !exemplar.ops.is_empty() {
                emit_regress(h, dir, sig, &exemplar);
            }
        }
        sig_docs.push((
            sig.clone(),
            Json::obj(vec![
                ("count", Json::UInt(stat.count)),
                ("first_case", Json::UInt(stat.first_case)),
                ("truth", Json::from(stat.truth.as_str())),
                ("class", Json::from(stat.class.as_str())),
                ("explained", Json::Bool(stat.explained)),
                (
                    "minimized_ops",
                    Json::Arr(
                        minimized
                            .ops
                            .iter()
                            .map(|op| Json::Str(op.line()))
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    println!();
    println!(
        "programs: {}   signatures: {}   unexplained: {unexplained_total}",
        cases.len(),
        sigs.len()
    );

    let mut sink = h.sink();
    sink.push("schema", Json::from(SCHEMA));
    sink.push("fuzz_seed", Json::UInt(cli.fuzz_seed));
    sink.push("round_size", Json::UInt(cli.round_size as u64));
    sink.push("min_programs", Json::UInt(cli.min_programs as u64));
    sink.push("dry_rounds", Json::UInt(DRY_ROUNDS as u64));
    sink.push("mode", Json::from("rest-secure-full"));
    sink.push("programs", Json::UInt(cases.len() as u64));
    sink.push("ran_dry", Json::Bool(ran_dry));
    sink.push("rounds", Json::Arr(round_docs));
    sink.push(
        "classes",
        Json::Obj(
            classes
                .iter()
                .map(|(name, &n)| (name.clone(), Json::UInt(n)))
                .collect(),
        ),
    );
    sink.push("signatures", Json::Obj(sig_docs));
    sink.push(
        "unexplained",
        Json::obj(vec![
            ("count", Json::UInt(unexplained_total)),
            ("cases", Json::Arr(unexplained_cases)),
        ]),
    );
    sink.finish();
    ckpt.remove();

    if unexplained_total > 0 {
        eprintln!(
            "fuzz: {unexplained_total} unexplained disagreement(s) — every case must \
             cross-check across the oracles or land in the documented known-miss table"
        );
        std::process::exit(1);
    }
}

/// Entry point of the `fuzz` binary.
pub fn main() {
    let mut h = Harness::new("fuzz");
    run_campaign(&mut h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::BenchCli;

    #[test]
    fn case_keys_sort_in_case_order() {
        assert_eq!(case_key(0), "case-000000");
        assert_eq!(case_key(123_456), "case-123456");
        let keys: Vec<String> = (0..200).map(case_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn records_round_trip_through_checkpoint_canonicalisation() {
        let rt = rest_fuzz::campaign_rt();
        let mut stream = CaseStream::new(BenchCli::DEFAULT_FUZZ_SEED);
        let case = stream.next_case();
        let record = record_json(&case, &run_case(&case, &rt));
        let reparsed = Json::parse(&record.to_string_pretty()).unwrap();
        assert_eq!(record.to_string_pretty(), reparsed.to_string_pretty());
        // The signature reads back out of the canonicalised record.
        assert!(signature(&reparsed).contains('/'));
        assert!(!signature(&reparsed).contains('?'));
    }

    #[test]
    fn signatures_and_slugs_are_stable() {
        let record = Json::obj(vec![
            ("truth", Json::from("oob-write")),
            ("class", Json::from("agree-detected")),
        ]);
        let sig = signature(&record);
        assert_eq!(sig, "oob-write/agree-detected");
        assert_eq!(sig_slug(&sig), "oob-write--agree-detected");
    }

    #[test]
    fn fnv_distinguishes_outputs() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
        assert_eq!(fnv1a(b"same"), fnv1a(b"same"));
    }
}
