//! Static check-elision campaign (`elide` binary).
//!
//! Runs the full benchmark set under the paper's headline
//! `rest-secure-full` configuration twice — checks in full, and with
//! the `rest-verify` elision map applied — plus the matching ASan pair
//! (the scheme that actually pays per-access check micro-ops, so the
//! recovered-uop measurement is visible in the pipeline). Every pair is
//! held to a hard differential gate: byte-identical guest output and
//! byte-identical audit logs, or the campaign exits nonzero.
//!
//! The attack section re-runs all ten attack scenarios under
//! `rest-secure-full` with elision enabled. Attacks whose violation the
//! linter can prove carry error-or-worse findings, so the elision pass
//! produces *empty* maps for them by construction; attacks that lint
//! clean (e.g. the padding-gap overread, which stays inside its padded
//! granule) may have genuinely in-bounds accesses elided. Either way
//! the campaign verifies end to end that every attack stops with the
//! same outcome and the same audit provenance as the un-elided run —
//! zero detection loss is an output of the artifact, not a promise.
//! Minimized fuzz-campaign reproducers committed under `tests/regress/`
//! ([`rest_attacks::regress`]) run through the identical full/elided
//! differential gate, so every fuzzer find also pins elision soundness.
//!
//! Two artefacts come out of one campaign:
//!
//! * `results/elision.json` — the deterministic figure: per-row static
//!   classification counts, dynamic elided-check counters, per-site
//!   attribution, the per-program `rest-elide/v1` maps (each validated
//!   against [`rest_obs::elide`]), and the attack-coverage section.
//!   Byte-identical at any `--jobs` level.
//! * `results/BENCH_elision.json` — host wall-clock guest-IPS of the
//!   functional emulator with checks in full versus elided, following
//!   the `BENCH_` convention because wall times are nondeterministic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rest_attacks::Attack;
use rest_cpu::{Emulator, ExecEngine, SimConfig, SimResult, StopReason};
use rest_obs::Json;
use rest_runtime::RtConfig;
use rest_verify::{elide_program, ElideScheme, ElisionReport};
use rest_workloads::{Scale, WorkloadParams};

use crate::cli::Harness;
use crate::engine::{RegressProg, SimJob};
use crate::{stack_for, FigureRow};

/// The campaign's column labels, in job order: each base scheme is
/// immediately followed by its elided twin.
pub const SCHEMES: [&str; 4] = ["rest-secure-full", "rest-elided", "asan", "asan-elided"];

/// The two (base runtime, elided label) pairs the campaign simulates.
pub fn scheme_pairs() -> Vec<(&'static str, &'static str, RtConfig)> {
    vec![
        (
            "rest-secure-full",
            "rest-elided",
            RtConfig::from_label("rest-secure-full").expect("canonical label"),
        ),
        ("asan", "asan-elided", RtConfig::asan()),
    ]
}

/// The four jobs of one benchmark row: (full, elided) × both schemes,
/// all profiled so the per-site and per-PC check counters are carried.
pub fn jobs_for(row: &FigureRow, scale: Scale) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (full_label, elided_label, rt) in scheme_pairs() {
        let base = SimJob {
            profile_guest: true,
            ..SimJob::new(row, full_label, rt, scale)
        };
        jobs.push(base.clone());
        jobs.push(SimJob {
            elide: true,
            label: elided_label.to_string(),
            ..base
        });
    }
    jobs
}

/// One scheme pair's measurements for a row.
#[derive(Debug, Clone)]
pub struct PairCell {
    /// Dynamic checks performed by the full run (backend `check_access`
    /// for REST, shadow classifications for ASan).
    pub checks_full: u64,
    /// Dynamic checks the elided run still performed.
    pub checks_elided_run: u64,
    /// Dynamic checks skipped via the static map.
    pub elided_dynamic: u64,
    /// Injected check micro-ops in the full run.
    pub check_uops_full: u64,
    /// Injected check micro-ops left in the elided run.
    pub check_uops_elided: u64,
    /// Committed cycles, full run.
    pub cycles_full: u64,
    /// Committed cycles, elided run.
    pub cycles_elided: u64,
    /// Retired micro-ops, full run.
    pub uops_full: u64,
    /// Retired micro-ops, elided run.
    pub uops_elided: u64,
    /// Per-site elided-check attribution rows from the elided run.
    pub elided_sites: Vec<(u64, u64)>,
}

impl PairCell {
    /// Share of the full run's dynamic checks the elided run skipped.
    pub fn elided_dynamic_pct(&self) -> f64 {
        if self.checks_full == 0 {
            0.0
        } else {
            self.elided_dynamic as f64 * 100.0 / self.checks_full as f64
        }
    }

    /// Check micro-ops the elision recovered (full minus elided).
    pub fn check_uops_recovered(&self) -> u64 {
        self.check_uops_full.saturating_sub(self.check_uops_elided)
    }

    fn to_json(&self) -> Json {
        let sites = self
            .elided_sites
            .iter()
            .map(|&(site, n)| {
                Json::obj(vec![("site", Json::UInt(site)), ("elided", Json::UInt(n))])
            })
            .collect();
        Json::obj(vec![
            ("checks_full", Json::UInt(self.checks_full)),
            ("checks_elided_run", Json::UInt(self.checks_elided_run)),
            ("elided_dynamic", Json::UInt(self.elided_dynamic)),
            ("elided_dynamic_pct", Json::Num(self.elided_dynamic_pct())),
            ("check_uops_full", Json::UInt(self.check_uops_full)),
            ("check_uops_elided", Json::UInt(self.check_uops_elided)),
            ("check_uops_recovered", Json::UInt(self.check_uops_recovered())),
            ("cycles_full", Json::UInt(self.cycles_full)),
            ("cycles_elided", Json::UInt(self.cycles_elided)),
            ("uops_full", Json::UInt(self.uops_full)),
            ("uops_elided", Json::UInt(self.uops_elided)),
            ("elided_sites", Json::Arr(sites)),
        ])
    }
}

/// One benchmark row of the campaign report.
#[derive(Debug, Clone)]
pub struct ElideRow {
    /// Row display name.
    pub benchmark: String,
    /// Workload kernel name.
    pub workload: &'static str,
    /// Input seed.
    pub seed: u64,
    /// Static REST-scheme elision report for the row's program.
    pub rest_static: ElisionReport,
    /// Static ASan-scheme elision report.
    pub asan_static: ElisionReport,
    /// REST dynamic pair.
    pub rest: PairCell,
    /// ASan dynamic pair.
    pub asan: PairCell,
}

impl ElideRow {
    fn static_json(r: &ElisionReport) -> Json {
        Json::obj(vec![
            ("access_pcs", Json::UInt(r.access_pcs as u64)),
            ("elided", Json::UInt(r.map.len() as u64)),
            ("must_be_safe", Json::UInt(r.must_be_safe as u64)),
            ("redundant", Json::UInt(r.redundant as u64)),
            ("may_fault", Json::UInt(r.may_fault as u64)),
            ("elide_pct", Json::Num(r.elide_pct())),
        ])
    }

    /// The row as a figure-row object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("workload", Json::from(self.workload)),
            ("seed", Json::UInt(self.seed)),
            ("rest_static", Self::static_json(&self.rest_static)),
            ("asan_static", Self::static_json(&self.asan_static)),
            ("rest", self.rest.to_json()),
            ("asan", self.asan.to_json()),
        ])
    }
}

/// One attack row of the coverage section: the same attack with checks
/// in full and elided must stop identically with identical audit
/// provenance.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Attack scenario name.
    pub attack: &'static str,
    /// Whether the (identical) runs stopped on a violation.
    pub detected: bool,
    /// Audit-log entries recorded (identical in both runs).
    pub audit_entries: u64,
    /// Whether the attack program's elision map is empty. Attacks with
    /// error-or-worse lint findings always are; attacks that lint
    /// clean may elide genuinely in-bounds accesses.
    pub map_empty: bool,
    /// Checks dynamically skipped in the elided run (0 whenever
    /// `map_empty`).
    pub elided_dynamic: u64,
}

impl AttackRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("attack", Json::from(self.attack)),
            ("detected", Json::Bool(self.detected)),
            ("audit_entries", Json::UInt(self.audit_entries)),
            ("map_empty", Json::Bool(self.map_empty)),
            ("elided_dynamic", Json::UInt(self.elided_dynamic)),
        ])
    }
}

/// One regression-corpus row: a minimized fuzzer reproducer from
/// `tests/regress/` replayed with checks in full and elided, held to
/// the same differential gate as the attacks.
#[derive(Debug, Clone)]
pub struct RegressRow {
    /// Corpus file stem.
    pub name: String,
    /// Whether the (identical) runs stopped on a violation.
    pub detected: bool,
    /// Audit-log entries recorded (identical in both runs).
    pub audit_entries: u64,
    /// Whether the reproducer's elision map is empty.
    pub map_empty: bool,
    /// Checks dynamically skipped in the elided run (0 whenever
    /// `map_empty`).
    pub elided_dynamic: u64,
}

impl RegressRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("detected", Json::Bool(self.detected)),
            ("audit_entries", Json::UInt(self.audit_entries)),
            ("map_empty", Json::Bool(self.map_empty)),
            ("elided_dynamic", Json::UInt(self.elided_dynamic)),
        ])
    }
}

/// Fails the campaign if the full and elided runs of one cell differ in
/// any architecturally visible way: stop reason, guest output bytes, or
/// the audit log (entry-for-entry, provenance included).
pub fn assert_differential(cell: &str, full: &SimResult, elided: &SimResult) -> Result<(), String> {
    if full.stop != elided.stop {
        return Err(format!(
            "{cell}: stop reasons diverge under elision — full {:?}, elided {:?}",
            full.stop, elided.stop
        ));
    }
    if full.output != elided.output {
        return Err(format!("{cell}: guest output diverges under elision"));
    }
    if full.audit != elided.audit {
        return Err(format!(
            "{cell}: audit logs diverge under elision — full {} entries, elided {}",
            full.audit.total(),
            elided.audit.total()
        ));
    }
    Ok(())
}

/// Builds one [`ElideRow`] from the four simulated cells, re-deriving
/// the static reports from identically parameterised program builds and
/// enforcing the differential gate plus the check-count reconciliation
/// (full checks == elided-run checks + dynamically skipped checks).
pub fn rollup(
    row: &FigureRow,
    scale: Scale,
    cells: &[&SimResult; 4],
) -> Result<ElideRow, String> {
    let [rest_full, rest_elided, asan_full, asan_elided] = *cells;
    let mut pairs = Vec::new();
    for (full, elided, full_label) in [
        (rest_full, rest_elided, "rest-secure-full"),
        (asan_full, asan_elided, "asan"),
    ] {
        let cell = format!("{} {full_label}", row.name);
        assert_differential(&cell, full, elided)?;
        let fp = full
            .profile
            .as_ref()
            .ok_or_else(|| format!("{cell}: full run carries no profile"))?;
        let ep = elided
            .profile
            .as_ref()
            .ok_or_else(|| format!("{cell}: elided run carries no profile"))?;
        let (checks_full, checks_elided_run) = if fp.backend_checks > 0 {
            (fp.backend_checks, ep.backend_checks)
        } else {
            (fp.checks.total(), ep.checks.total())
        };
        let skipped = elided.core.elided_checks;
        if full.core.elided_checks != 0 {
            return Err(format!("{cell}: full run skipped checks without a map"));
        }
        // Every application access is either still checked or skipped;
        // runtime-internal validations appear identically in both runs.
        if checks_elided_run + skipped != checks_full {
            return Err(format!(
                "{cell}: check counts do not reconcile — full {checks_full}, \
                 elided-run {checks_elided_run} + skipped {skipped}"
            ));
        }
        pairs.push(PairCell {
            checks_full,
            checks_elided_run,
            elided_dynamic: skipped,
            check_uops_full: fp.check_uops.total(),
            check_uops_elided: ep.check_uops.total(),
            cycles_full: full.core.cycles,
            cycles_elided: elided.core.cycles,
            uops_full: full.core.uops,
            uops_elided: elided.core.uops,
            elided_sites: ep.elided_sites.clone(),
        });
    }
    let asan = pairs.pop().expect("two pairs");
    let rest = pairs.pop().expect("two pairs");

    let build = |rt: &RtConfig| {
        let params = WorkloadParams {
            scale,
            stack_scheme: stack_for(rt),
            token_width: rt.token_width,
            seed: row.seed,
        };
        row.workload.build(&params)
    };
    let rest_rt = RtConfig::from_label("rest-secure-full").expect("canonical label");
    let rest_static = elide_program(&build(&rest_rt), ElideScheme::Rest);
    let asan_static = elide_program(&build(&RtConfig::asan()), ElideScheme::Asan);
    Ok(ElideRow {
        benchmark: row.name.to_string(),
        workload: row.workload.name(),
        seed: row.seed,
        rest_static,
        asan_static,
        rest,
        asan,
    })
}

/// The assembled campaign report.
#[derive(Debug, Clone)]
pub struct ElideFigure {
    /// Benchmark rows, in figure order.
    pub rows: Vec<ElideRow>,
    /// Attack-coverage rows, in [`Attack::ALL`] order.
    pub attacks: Vec<AttackRow>,
    /// Regression-corpus rows, in corpus (sorted-name) order.
    pub regressions: Vec<RegressRow>,
}

impl ElideFigure {
    /// Rows with a static REST elision share of at least 20%.
    pub fn rows_at_20pct(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.rest_static.elide_pct() >= 20.0)
            .count()
    }

    /// The per-program `rest-elide/v1` documents (both schemes per
    /// row), each of which must satisfy [`rest_obs::validate_elide`].
    pub fn programs_json(&self) -> Result<Json, String> {
        let mut docs = Vec::new();
        for row in &self.rows {
            for report in [&row.rest_static, &row.asan_static] {
                let doc = report.to_json(&row.benchmark);
                rest_obs::validate_elide(&doc).map_err(|e| {
                    format!("{} {}: invalid elision map: {e}", row.benchmark, report.scheme.name())
                })?;
                docs.push(doc);
            }
        }
        Ok(Json::Arr(docs))
    }

    /// The `summary` member: campaign-wide totals and the hard-gate
    /// inputs.
    pub fn summary_json(&self) -> Json {
        let total_pcs: u64 = self.rows.iter().map(|r| r.rest_static.access_pcs as u64).sum();
        let total_elided: u64 = self.rows.iter().map(|r| r.rest_static.map.len() as u64).sum();
        let dynamic: u64 = self.rows.iter().map(|r| r.rest.elided_dynamic).sum();
        let recovered: u64 = self.rows.iter().map(|r| r.asan.check_uops_recovered()).sum();
        Json::obj(vec![
            ("rows", Json::UInt(self.rows.len() as u64)),
            ("rows_at_20pct", Json::UInt(self.rows_at_20pct() as u64)),
            ("access_pcs", Json::UInt(total_pcs)),
            ("elided_pcs", Json::UInt(total_elided)),
            ("elided_dynamic", Json::UInt(dynamic)),
            ("check_uops_recovered", Json::UInt(recovered)),
            ("attacks", Json::UInt(self.attacks.len() as u64)),
            (
                "attacks_detected",
                Json::UInt(self.attacks.iter().filter(|a| a.detected).count() as u64),
            ),
            ("regressions", Json::UInt(self.regressions.len() as u64)),
        ])
    }

    /// The `rows` member.
    pub fn rows_json(&self) -> Json {
        Json::Arr(self.rows.iter().map(ElideRow::to_json).collect())
    }

    /// The `attacks` member.
    pub fn attacks_json(&self) -> Json {
        Json::Arr(self.attacks.iter().map(AttackRow::to_json).collect())
    }

    /// The `regressions` member.
    pub fn regressions_json(&self) -> Json {
        Json::Arr(self.regressions.iter().map(RegressRow::to_json).collect())
    }

    /// Prints the per-row summary table to stdout.
    pub fn print_text_table(&self) {
        println!(
            "{:<16}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}{:>14}",
            "benchmark", "accesses", "elided", "static %", "dyn %", "checks off", "uops rec.", "cycles Δ"
        );
        for r in &self.rows {
            let dc = r.rest.cycles_full as i64 - r.rest.cycles_elided as i64;
            println!(
                "{:<16}{:>10}{:>10}{:>10.1}{:>10.1}{:>12}{:>12}{:>14}",
                r.benchmark,
                r.rest_static.access_pcs,
                r.rest_static.map.len(),
                r.rest_static.elide_pct(),
                r.rest.elided_dynamic_pct(),
                r.rest.elided_dynamic,
                r.asan.check_uops_recovered(),
                dc
            );
        }
        println!();
        println!("attack coverage under elision (stop + audit identical by gate):");
        for a in &self.attacks {
            println!(
                "  {:<28}{}  audit entries: {}  elided: {}",
                a.attack,
                if a.detected { "DETECTED" } else { "clean" },
                a.audit_entries,
                a.elided_dynamic
            );
        }
    }
}

/// One functional-emulator throughput measurement: the same guest work
/// with checks in full and with the elision map applied.
#[derive(Debug, Clone)]
pub struct IpsCell {
    /// Row display name.
    pub name: String,
    /// Guest macro instructions retired (identical in both runs).
    pub insts: u64,
    /// Wall time with every check performed.
    pub full_wall: Duration,
    /// Wall time with proven-safe checks skipped.
    pub elided_wall: Duration,
}

fn ips(insts: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        insts as f64 / secs
    } else {
        0.0
    }
}

impl IpsCell {
    /// Guest-IPS with checks in full.
    pub fn full_ips(&self) -> f64 {
        ips(self.insts, self.full_wall)
    }

    /// Guest-IPS with the elision map applied.
    pub fn elided_ips(&self) -> f64 {
        ips(self.insts, self.elided_wall)
    }

    /// Relative guest-IPS change, in percent (positive = elision is
    /// faster).
    pub fn delta_pct(&self) -> f64 {
        let full = self.full_ips();
        if full > 0.0 {
            (self.elided_ips() / full - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// Measures one row's functional guest-IPS under `rest-secure-full`,
/// full versus elided, verifying both runs retire identical instruction
/// counts and exit cleanly.
pub fn measure_ips(row: &FigureRow, scale: Scale) -> Result<IpsCell, String> {
    let rt = RtConfig::from_label("rest-secure-full").expect("canonical label");
    let params = WorkloadParams {
        scale,
        stack_scheme: stack_for(&rt),
        token_width: rt.token_width,
        seed: row.seed,
    };
    let program = row.workload.build(&params);
    let map = Arc::new(elide_program(&program, ElideScheme::Rest).map);

    let run = |elision: Option<Arc<rest_core::ElisionMap>>| {
        let mut cfg = SimConfig::isca2018(rt.clone());
        cfg.elision = elision;
        let mut emu = Emulator::new(row.workload.build(&params), &cfg);
        let started = Instant::now();
        emu.run_functional();
        let wall = started.elapsed();
        let stop = emu.take_stop().expect("run_functional stops");
        (wall, stop, emu.insts())
    };
    let (full_wall, full_stop, full_insts) = run(None);
    let (elided_wall, elided_stop, elided_insts) = run(Some(map));
    if full_stop != StopReason::Exit(0) || full_stop != elided_stop {
        return Err(format!(
            "{}: stops diverge or abnormal — full {full_stop:?}, elided {elided_stop:?}",
            row.name
        ));
    }
    if full_insts != elided_insts {
        return Err(format!(
            "{}: instruction counts diverge — full {full_insts}, elided {elided_insts}",
            row.name
        ));
    }
    Ok(IpsCell {
        name: row.name.to_string(),
        insts: full_insts,
        full_wall,
        elided_wall,
    })
}

/// The `rest-elide-bench/v1` wall-clock document.
pub fn bench_json(scale: &str, cells: &[IpsCell]) -> Json {
    let insts: u64 = cells.iter().map(|c| c.insts).sum();
    let full: Duration = cells.iter().map(|c| c.full_wall).sum();
    let elided: Duration = cells.iter().map(|c| c.elided_wall).sum();
    Json::obj(vec![
        ("schema", Json::from("rest-elide-bench/v1")),
        ("scale", Json::from(scale)),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("benchmark", Json::from(c.name.as_str())),
                            ("guest_insts", Json::UInt(c.insts)),
                            ("full_wall_s", Json::Num(c.full_wall.as_secs_f64())),
                            ("elided_wall_s", Json::Num(c.elided_wall.as_secs_f64())),
                            ("full_ips", Json::Num(c.full_ips())),
                            ("elided_ips", Json::Num(c.elided_ips())),
                            ("ips_delta_pct", Json::Num(c.delta_pct())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            Json::obj(vec![
                ("cells", Json::UInt(cells.len() as u64)),
                ("guest_insts", Json::UInt(insts)),
                ("full_ips", Json::Num(ips(insts, full))),
                ("elided_ips", Json::Num(ips(insts, elided))),
                (
                    "ips_delta_pct",
                    Json::Num(if full.as_secs_f64() > 0.0 && elided.as_secs_f64() > 0.0 {
                        (ips(insts, elided) / ips(insts, full) - 1.0) * 100.0
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ])
}

fn fail(msg: &str) -> ! {
    eprintln!("elide: {msg}");
    std::process::exit(1);
}

/// Runs the full campaign: 16 rows × the four scheme cells plus the ten
/// attack pairs, enforces every differential and reconciliation gate,
/// writes `results/elision.json` and `results/BENCH_elision.json`.
pub fn run_campaign(mut h: Harness) {
    let cli = h.cli.clone();
    let rows = cli.filter_rows(crate::figure_rows());
    let mut jobs: Vec<SimJob> = Vec::new();
    for row in &rows {
        jobs.extend(jobs_for(row, cli.scale));
    }
    let rest_rt = RtConfig::from_label("rest-secure-full").expect("canonical label");
    let attack_jobs: Vec<SimJob> = Attack::ALL
        .iter()
        .flat_map(|&attack| {
            let full = SimJob::for_attack(attack, "rest-secure-full", rest_rt.clone(), cli.scale);
            let elided = SimJob {
                elide: true,
                label: "rest-elided".to_string(),
                ..full.clone()
            };
            [full, elided]
        })
        .collect();
    // Regression corpus: each minimized reproducer runs as a
    // full/elided pair under the headline scheme, held to the same
    // differential gate as the attacks.
    let corpus = rest_attacks::regress::corpus().unwrap_or_else(|e| {
        fail(&format!("regression corpus failed to load: {e}"));
    });
    let regress_jobs: Vec<SimJob> = corpus
        .iter()
        .flat_map(|case| {
            let full = SimJob::for_regress(
                RegressProg {
                    name: case.name.clone(),
                    asm: Arc::new(case.asm.clone()),
                },
                "rest-secure-full",
                rest_rt.clone(),
                cli.scale,
            );
            let elided = SimJob {
                elide: true,
                label: "rest-elided".to_string(),
                ..full.clone()
            };
            [full, elided]
        })
        .collect();
    let all: Vec<SimJob> = jobs
        .iter()
        .chain(attack_jobs.iter())
        .chain(regress_jobs.iter())
        .cloned()
        .collect();
    let outcomes = h.run_all(&all);
    let (row_outcomes, rest_outcomes) = outcomes.split_at(jobs.len());
    let (attack_outcomes, regress_outcomes) = rest_outcomes.split_at(attack_jobs.len());

    crate::print_machine_header(
        "elide — static check-elision: proven-safe accesses skip their checks",
    );
    let mut figure = ElideFigure {
        rows: Vec::new(),
        attacks: Vec::new(),
        regressions: Vec::new(),
    };
    for (row, chunk) in rows.iter().zip(row_outcomes.chunks(4)) {
        let mut cells = Vec::new();
        for (outcome, label) in chunk.iter().zip(SCHEMES) {
            match outcome.as_ref() {
                Ok(result) => cells.push(result),
                Err(e) => fail(&format!("{} {label} failed: {e}", row.name)),
            }
        }
        let cells: &[&SimResult; 4] = &[cells[0], cells[1], cells[2], cells[3]];
        match rollup(row, cli.scale, cells) {
            Ok(r) => figure.rows.push(r),
            Err(e) => fail(&e),
        }
    }
    for (&attack, chunk) in Attack::ALL.iter().zip(attack_outcomes.chunks(2)) {
        let full = match chunk[0].as_ref() {
            Ok(r) => r,
            Err(e) => fail(&format!("attack {} full run failed: {e}", attack.name())),
        };
        let elided = match chunk[1].as_ref() {
            Ok(r) => r,
            Err(e) => fail(&format!("attack {} elided run failed: {e}", attack.name())),
        };
        if let Err(e) = assert_differential(&format!("attack {}", attack.name()), full, elided) {
            fail(&format!("DETECTION LOSS: {e}"));
        }
        let map = elide_program(&attack.build(stack_for(&rest_rt)), ElideScheme::Rest).map;
        if map.is_empty() && elided.core.elided_checks != 0 {
            fail(&format!(
                "attack {}: {} checks skipped with an empty map",
                attack.name(),
                elided.core.elided_checks
            ));
        }
        figure.attacks.push(AttackRow {
            attack: attack.name(),
            detected: matches!(full.stop, StopReason::Violation(_)),
            audit_entries: full.audit.total(),
            map_empty: map.is_empty(),
            elided_dynamic: elided.core.elided_checks,
        });
    }
    for (case, chunk) in corpus.iter().zip(regress_outcomes.chunks(2)) {
        let full = match chunk[0].as_ref() {
            Ok(r) => r,
            Err(e) => fail(&format!("regress {} full run failed: {e}", case.name)),
        };
        let elided = match chunk[1].as_ref() {
            Ok(r) => r,
            Err(e) => fail(&format!("regress {} elided run failed: {e}", case.name)),
        };
        if let Err(e) = assert_differential(&format!("regress {}", case.name), full, elided) {
            fail(&format!("DETECTION LOSS: {e}"));
        }
        let program = match rest_isa::parse_asm(&case.asm) {
            Ok(p) => p,
            Err(e) => fail(&format!("regress {}: unparseable assembly: {e:?}", case.name)),
        };
        let map = elide_program(&program, ElideScheme::Rest).map;
        if map.is_empty() && elided.core.elided_checks != 0 {
            fail(&format!(
                "regress {}: {} checks skipped with an empty map",
                case.name, elided.core.elided_checks
            ));
        }
        figure.regressions.push(RegressRow {
            name: case.name.clone(),
            detected: matches!(full.stop, StopReason::Violation(_)),
            audit_entries: full.audit.total(),
            map_empty: map.is_empty(),
            elided_dynamic: elided.core.elided_checks,
        });
    }
    // The headline acceptance gate: without --filter, at least 4 rows
    // must elide >= 20% of their access PCs.
    if cli.filter.is_none() && figure.rows_at_20pct() < 4 {
        fail(&format!(
            "only {} rows reach 20% static elision (4 required)",
            figure.rows_at_20pct()
        ));
    }
    figure.print_text_table();

    let programs = match figure.programs_json() {
        Ok(p) => p,
        Err(e) => fail(&e),
    };
    let mut sink = h.sink();
    sink.push("schema", Json::from(rest_obs::ELIDE_SCHEMA));
    sink.push(
        "schemes",
        Json::Arr(SCHEMES.iter().map(|&s| Json::from(s)).collect()),
    );
    sink.push("rows", figure.rows_json());
    sink.push("attacks", figure.attacks_json());
    sink.push("regressions", figure.regressions_json());
    sink.push("programs", programs);
    sink.push("summary", figure.summary_json());

    // Wall-clock guest-IPS sweep (sequential: concurrent cells would
    // contend for cores and distort every measurement).
    let mut cells = Vec::new();
    for row in &rows {
        match measure_ips(row, cli.scale) {
            Ok(c) => {
                eprintln!(
                    "# ips {}: {:.0} full vs {:.0} elided ({:+.1}%)",
                    c.name,
                    c.full_ips(),
                    c.elided_ips(),
                    c.delta_pct()
                );
                cells.push(c);
            }
            Err(e) => fail(&e),
        }
    }
    let mut text = bench_json(cli.scale_name(), &cells).to_string_pretty();
    text.push('\n');
    crate::write_text_file(
        &std::path::PathBuf::from("results/BENCH_elision.json"),
        &text,
    );
    // No matrix ran (the campaign drives plain job lists), so the
    // observability teardown gets an empty one.
    let matrix = crate::engine::MatrixResults {
        columns: Vec::new(),
        rows: Vec::new(),
    };
    h.finish(sink, &matrix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_workloads::Workload;

    fn pair(row: &FigureRow, label: &str, rt: RtConfig) -> (SimResult, SimResult) {
        let full = SimJob {
            profile_guest: true,
            ..SimJob::new(row, label, rt, Scale::Test)
        };
        let elided = SimJob {
            elide: true,
            ..full.clone()
        };
        (
            full.execute().expect("full run exits cleanly"),
            elided.execute().expect("elided run exits cleanly"),
        )
    }

    #[test]
    fn elision_changes_nothing_architecturally_visible() {
        let row = FigureRow::of(Workload::Bzip2);
        let (full, elided) = pair(&row, "rest-secure-full", RtConfig::from_label("rest-secure-full").unwrap());
        assert_differential("bzip2 rest-secure-full", &full, &elided).expect("identical");
        assert!(elided.core.elided_checks > 0, "bzip2 elides many checks");
        assert_eq!(full.core.elided_checks, 0);
        // Checks reconcile: skipped + still-performed == full.
        let fp = full.profile.as_ref().unwrap();
        let ep = elided.profile.as_ref().unwrap();
        assert_eq!(
            ep.backend_checks + elided.core.elided_checks,
            fp.backend_checks
        );
        assert!(!ep.elided_sites.is_empty(), "skips attribute to sites");
        let site_total: u64 = ep.elided_sites.iter().map(|&(_, n)| n).sum();
        assert_eq!(site_total, elided.core.elided_checks);
    }

    #[test]
    fn asan_elision_recovers_check_uops() {
        let row = FigureRow::of(Workload::Hmmer);
        let (full, elided) = pair(&row, "asan", RtConfig::asan());
        assert_differential("hmmer asan", &full, &elided).expect("identical");
        let fp = full.profile.as_ref().unwrap();
        let ep = elided.profile.as_ref().unwrap();
        assert!(elided.core.elided_checks > 0);
        // ASan injects 5 uops per checked access; every skipped check
        // recovers exactly that sequence from the uop stream.
        assert_eq!(
            fp.check_uops.total() - ep.check_uops.total(),
            5 * elided.core.elided_checks
        );
        assert_eq!(
            full.core.uops - elided.core.uops,
            5 * elided.core.elided_checks
        );
    }

    /// Attack-coverage differential at the engine level: a detected
    /// attack, a false-negative attack that lints clean (and so carries
    /// a non-empty elision map), and a UAF all behave identically with
    /// elision on and off.
    #[test]
    fn attacks_keep_their_detection_under_elision() {
        use rest_attacks::Attack;
        let rt = RtConfig::from_label("rest-secure-full").unwrap();
        for attack in [
            Attack::Heartbleed,
            Attack::PaddingGapOverread,
            Attack::UseAfterFree,
        ] {
            let full = SimJob::for_attack(attack, "rest-secure-full", rt.clone(), Scale::Test);
            let elided = SimJob {
                elide: true,
                ..full.clone()
            };
            let full = full.execute().expect("full attack run completes");
            let elided = elided.execute().expect("elided attack run completes");
            assert_differential(&format!("attack {}", attack.name()), &full, &elided)
                .expect("zero detection loss under elision");
        }
    }

    #[test]
    fn rollup_builds_a_consistent_row() {
        let row = FigureRow::of(Workload::Lbm);
        let jobs = jobs_for(&row, Scale::Test);
        assert_eq!(jobs.len(), 4);
        let results: Vec<SimResult> = jobs
            .iter()
            .map(|j| j.execute().expect("cell completes"))
            .collect();
        let cells: [&SimResult; 4] = [&results[0], &results[1], &results[2], &results[3]];
        let r = rollup(&row, Scale::Test, &cells).expect("gates hold");
        assert_eq!(r.benchmark, "lbm");
        assert!(r.rest_static.preconditions_ok);
        assert_eq!(r.rest.elided_dynamic + r.rest.checks_elided_run, r.rest.checks_full);
        // REST injects no check uops, so nothing to recover there; the
        // ASan pair carries the recovered micro-ops.
        assert_eq!(r.rest.check_uops_recovered(), 0);
        if r.asan.elided_dynamic > 0 {
            assert_eq!(r.asan.check_uops_recovered(), 5 * r.asan.elided_dynamic);
        }
        let doc = Json::parse(&r.to_json().to_string_pretty()).expect("valid JSON");
        assert_eq!(
            doc.get("rest").unwrap().get("elided_dynamic").unwrap().as_u64(),
            Some(r.rest.elided_dynamic)
        );
    }

    #[test]
    fn ips_measurement_agrees_on_guest_work() {
        let row = FigureRow::of(Workload::Lbm);
        let cell = measure_ips(&row, Scale::Test).expect("runs agree");
        assert!(cell.insts > 0);
        assert!(cell.delta_pct().is_finite());
        let doc = Json::parse(&bench_json("test", &[cell]).to_string_pretty()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("rest-elide-bench/v1")
        );
        assert_eq!(doc.get("summary").unwrap().get("cells").unwrap().as_u64(), Some(1));
    }
}
