//! Shared experiment engine: declarative simulation jobs, a
//! deterministic thread-pool runner, and job matrices.
//!
//! Every harness binary describes its experiment as a [`MatrixSpec`]
//! (benchmark rows × hardened configurations) or a list of [`SimJob`]s
//! and hands it to an [`Engine`]. The engine:
//!
//! * fans independent `System::run()` calls across `--jobs N` worker
//!   threads (each simulation is single-threaded and independent),
//! * caches results by job identity, so the plain baseline for a
//!   benchmark is simulated once even when several matrices or columns
//!   share it,
//! * converts panicking or failing simulations into structured
//!   [`JobError`]s instead of aborting the whole sweep,
//! * reports per-job progress and wall time on **stderr** only —
//!   results (stdout tables, JSON) contain no timing, so the same job
//!   matrix produces byte-identical output at any `--jobs` level.
//!
//! Results are assembled strictly in job-submission order; worker
//! scheduling affects only wall-clock time.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rest_cpu::{SimConfig, SimResult, StopReason, System};
use rest_obs::JobTiming;
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload, WorkloadParams};

use crate::{stack_for, FigureRow};

/// Which pipeline model a job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// The paper's Table II 8-wide out-of-order core.
    OutOfOrder,
    /// The narrow in-order core (Figure 3's measurement platform).
    InOrder,
}

/// One simulation to run: a benchmark row under one configuration.
///
/// The job is pure data; [`SimJob::execute`] performs the simulation.
/// Two jobs with identical simulation-relevant fields (everything
/// except the display `label`) are the same experiment and share one
/// cached result in the [`Engine`].
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Row display name (`"gobmk-capture"`, `"lbm"`, …).
    pub name: String,
    /// Column display label (`"asan"`, `"rest-secure-full"`, …).
    pub label: String,
    /// Workload kernel.
    pub workload: Workload,
    /// Input seed (gobmk sub-inputs vary the board position).
    pub seed: u64,
    /// Runtime / protection-scheme configuration.
    pub rt: RtConfig,
    /// Pipeline model.
    pub core: CoreKind,
    /// Input-set scale.
    pub scale: Scale,
    /// Ablation: serialise arm/disarm execution (§III-B's rejected
    /// alternative).
    pub serialize_rest_ops: bool,
    /// Dedicated token-cache entries (0 = paper's evaluated design).
    pub token_cache_entries: usize,
    /// Micro-op budget override; `None` keeps the generous default.
    /// (Small values force [`StopReason::UopLimit`] — used by tests to
    /// inject failing jobs.)
    pub max_uops: Option<u64>,
    /// Interval sampler period in committed instructions (0 = off);
    /// the result then carries a [`rest_obs::TimeSeries`].
    pub sample_interval: u64,
    /// Pipeline-trace length in micro-ops (0 = off); the result then
    /// carries a [`rest_cpu::PipelineTrace`].
    pub trace_uops: usize,
    /// Run the static ARM/DISARM verifier over the built program before
    /// simulating, failing fast (kind `"verify"`) on any error-or-worse
    /// finding instead of burning cycles on a bad program.
    pub verify: bool,
    /// Simulate on the reference decode path (re-decode every fetch)
    /// instead of the decoded-uop cache. Results are identical by
    /// construction; CI diffs the two byte-for-byte (`--reference`).
    pub reference_path: bool,
}

impl SimJob {
    /// A job running `row` under `rt` on the out-of-order core.
    pub fn new(row: &FigureRow, label: impl Into<String>, rt: RtConfig, scale: Scale) -> SimJob {
        SimJob {
            name: row.name.to_string(),
            label: label.into(),
            workload: row.workload,
            seed: row.seed,
            rt,
            core: CoreKind::OutOfOrder,
            scale,
            serialize_rest_ops: false,
            token_cache_entries: 0,
            max_uops: None,
            sample_interval: 0,
            trace_uops: 0,
            verify: false,
            reference_path: false,
        }
    }

    /// The unprotected baseline job for `row`.
    pub fn plain(row: &FigureRow, core: CoreKind, scale: Scale) -> SimJob {
        SimJob {
            core,
            ..SimJob::new(row, "plain", RtConfig::plain(), scale)
        }
    }

    /// The job for `row` under matrix column `col`.
    pub fn for_column(row: &FigureRow, col: &ColumnSpec, core: CoreKind, scale: Scale) -> SimJob {
        SimJob {
            core,
            serialize_rest_ops: col.serialize_rest_ops,
            token_cache_entries: col.token_cache_entries,
            ..SimJob::new(row, col.label.clone(), col.rt.clone(), scale)
        }
    }

    /// Identity of the simulation this job performs. Everything that
    /// influences the simulated outcome participates; display strings
    /// do not.
    pub fn cache_key(&self) -> String {
        format!(
            "{:?}|{:#x}|{:?}|{:?}|{:?}|{}|{}|{:?}|{}|{}|{}|{}",
            self.workload,
            self.seed,
            self.rt,
            self.core,
            self.scale,
            self.serialize_rest_ops,
            self.token_cache_entries,
            self.max_uops,
            // Observability settings don't change the simulated cycles,
            // but they change what the result carries (series / trace),
            // so results must not be shared across different settings.
            self.sample_interval,
            self.trace_uops,
            // The verify gate can turn a would-be simulation into a
            // verify error, so gated and ungated runs are distinct.
            self.verify,
            // The decode paths must be measured independently — sharing
            // a cached result would defeat the differential gate.
            self.reference_path,
        )
    }

    /// Builds the workload and simulates it, mapping panics and
    /// abnormal stops to [`JobError`].
    pub fn execute(&self) -> Result<SimResult, JobError> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let params = WorkloadParams {
                scale: self.scale,
                stack_scheme: stack_for(&self.rt),
                token_width: self.rt.token_width,
                seed: self.seed,
            };
            let program = self.workload.build(&params);
            if self.verify {
                let lint = rest_verify::verify_program(&program);
                let worst: Vec<_> = lint.at_least(rest_verify::Severity::Error).collect();
                if !worst.is_empty() {
                    let f = worst[0];
                    return Err(JobError {
                        kind: "verify".to_string(),
                        detail: format!(
                            "{} (seed {:#x}): {} finding(s) at error or above; first: \
                             [{}] pc {:#x} {}: {}",
                            self.workload,
                            self.seed,
                            worst.len(),
                            f.severity.name(),
                            f.pc,
                            f.pass,
                            f.message
                        ),
                    });
                }
            }
            let mut cfg = match self.core {
                CoreKind::OutOfOrder => SimConfig::isca2018(self.rt.clone()),
                CoreKind::InOrder => SimConfig::inorder(self.rt.clone()),
            };
            cfg.core.serialize_rest_ops = self.serialize_rest_ops;
            cfg.mem.token_cache_entries = self.token_cache_entries;
            cfg.sample_interval = self.sample_interval;
            cfg.trace_uops = self.trace_uops;
            cfg.reference_path = self.reference_path;
            if let Some(budget) = self.max_uops {
                cfg.max_uops = budget;
            }
            Ok(System::new(program, cfg).run())
        }));
        let result = match outcome {
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return Err(JobError {
                    kind: "panic".to_string(),
                    detail,
                });
            }
            Ok(Err(e)) => return Err(e),
            Ok(Ok(r)) => r,
        };
        match result.stop {
            StopReason::Exit(0) => Ok(result),
            ref stop => Err(JobError {
                kind: match stop {
                    StopReason::Halted => "halted",
                    StopReason::Exit(_) => "nonzero-exit",
                    StopReason::Violation(_) => "violation",
                    StopReason::UopLimit => "uop-limit",
                    StopReason::Fault(_) => "fault",
                }
                .to_string(),
                detail: format!(
                    "{} (seed {:#x}) stopped with {:?} under {}",
                    self.workload, self.seed, stop, result.label
                ),
            }),
        }
    }
}

/// A simulation that did not complete normally: the guest stopped with
/// anything other than `exit(0)`, or the simulator panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Machine-readable class: `"panic"`, `"violation"`, `"uop-limit"`,
    /// `"fault"`, `"halted"`, or `"nonzero-exit"`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Shared outcome of one job (cached, so cheap to clone).
pub type JobOutcome = Arc<Result<SimResult, JobError>>;

/// The job runner: a fixed-size worker pool plus a result cache keyed
/// by [`SimJob::cache_key`].
///
/// One engine can serve several matrices in sequence; jobs they share
/// (typically plain baselines) are simulated once.
pub struct Engine {
    workers: usize,
    cache: Mutex<HashMap<String, JobOutcome>>,
    timings: Mutex<Vec<JobTiming>>,
}

impl Engine {
    /// An engine running at most `workers` simulations concurrently.
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            cache: Mutex::new(HashMap::new()),
            timings: Mutex::new(Vec::new()),
        }
    }

    /// Per-job wall-time records accumulated so far (submission order;
    /// cache hits appear with `cached: true` and zero wall time).
    /// Draining resets the log, so successive experiments on one
    /// engine can profile separately.
    pub fn take_timings(&self) -> Vec<JobTiming> {
        std::mem::take(&mut self.timings.lock().unwrap())
    }

    /// Runs every job not already cached, in parallel, and returns one
    /// outcome per input job **in input order** (duplicates and cache
    /// hits resolve to the same shared result).
    pub fn run_all(&self, jobs: &[SimJob]) -> Vec<JobOutcome> {
        let fresh: Vec<&SimJob> = {
            let cache = self.cache.lock().unwrap();
            let mut seen = HashSet::new();
            jobs.iter()
                .filter(|j| {
                    let key = j.cache_key();
                    !cache.contains_key(&key) && seen.insert(key)
                })
                .collect()
        };
        let total = fresh.len();
        let fresh_walls: Mutex<HashMap<String, Duration>> = Mutex::new(HashMap::new());
        if total > 0 {
            let started = Instant::now();
            let next = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let workers = self.workers.min(total);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let job = fresh[i];
                        let job_started = Instant::now();
                        let result = job.execute();
                        let wall = job_started.elapsed();
                        let secs = wall.as_secs_f64();
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        match &result {
                            Ok(r) => eprintln!(
                                "[{n}/{total}] {} {}: {} cycles, {secs:.2}s",
                                job.name,
                                job.label,
                                r.cycles()
                            ),
                            Err(e) => eprintln!(
                                "[{n}/{total}] {} {}: FAILED ({e}), {secs:.2}s",
                                job.name, job.label
                            ),
                        }
                        fresh_walls.lock().unwrap().insert(job.cache_key(), wall);
                        self.cache
                            .lock()
                            .unwrap()
                            .insert(job.cache_key(), Arc::new(result));
                    });
                }
            });
            eprintln!(
                "# {total} jobs on {workers} workers in {:.2}s",
                started.elapsed().as_secs_f64()
            );
        }
        // Log per-job wall times in submission order: the first request
        // for a key that was simulated this call gets the measured
        // time; duplicates and pre-cached keys log as cache hits.
        {
            let mut walls = fresh_walls.into_inner().unwrap();
            let mut timings = self.timings.lock().unwrap();
            for job in jobs {
                let label = format!("{} {}", job.name, job.label);
                match walls.remove(&job.cache_key()) {
                    Some(wall) => timings.push(JobTiming {
                        label,
                        wall,
                        cached: false,
                    }),
                    None => timings.push(JobTiming {
                        label,
                        wall: Duration::ZERO,
                        cached: true,
                    }),
                }
            }
        }
        let cache = self.cache.lock().unwrap();
        jobs.iter().map(|j| cache[&j.cache_key()].clone()).collect()
    }

    /// Runs a full experiment matrix. Plain baselines (when
    /// `spec.include_plain`) and hardened cells all go through the same
    /// worker pool and cache.
    pub fn run_matrix(&self, spec: &MatrixSpec) -> MatrixResults {
        let mut jobs = Vec::new();
        for row in &spec.rows {
            if spec.include_plain {
                jobs.push(SimJob::plain(row, spec.core, spec.scale));
            }
            for col in &spec.columns {
                jobs.push(SimJob::for_column(row, col, spec.core, spec.scale));
            }
        }
        for job in &mut jobs {
            job.sample_interval = spec.sample_interval;
            job.verify = spec.verify;
            job.reference_path = spec.reference_path;
        }
        // Tracing is bounded to the matrix's first job: one Perfetto
        // document per experiment is plenty, and tracing every job
        // would multiply memory use for no added insight.
        if let Some(first) = jobs.first_mut() {
            first.trace_uops = spec.trace_uops;
        }
        let outcomes = self.run_all(&jobs);
        let stride = spec.columns.len() + usize::from(spec.include_plain);
        let rows = spec
            .rows
            .iter()
            .zip(outcomes.chunks(stride.max(1)))
            .map(|(row, chunk)| {
                let (plain, cells) = if spec.include_plain {
                    (Some(chunk[0].clone()), chunk[1..].to_vec())
                } else {
                    (None, chunk.to_vec())
                };
                RowResults {
                    row: *row,
                    plain,
                    cells,
                }
            })
            .collect();
        MatrixResults {
            columns: spec.columns.clone(),
            rows,
        }
    }
}

/// One hardened column of an experiment matrix.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Display label (also the JSON cell label).
    pub label: String,
    /// Runtime configuration.
    pub rt: RtConfig,
    /// Ablation: serialised arm/disarm execution.
    pub serialize_rest_ops: bool,
    /// Dedicated token-cache entries (0 = disabled).
    pub token_cache_entries: usize,
}

impl ColumnSpec {
    /// A plain column: `rt` on the stock machine.
    pub fn new(label: impl Into<String>, rt: RtConfig) -> ColumnSpec {
        ColumnSpec {
            label: label.into(),
            rt,
            serialize_rest_ops: false,
            token_cache_entries: 0,
        }
    }
}

/// A declarative experiment: rows × columns at one core/scale.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Benchmark rows.
    pub rows: Vec<FigureRow>,
    /// Hardened configurations.
    pub columns: Vec<ColumnSpec>,
    /// Pipeline model for every job in the matrix.
    pub core: CoreKind,
    /// Input-set scale.
    pub scale: Scale,
    /// Also simulate the plain baseline per row (needed for overhead
    /// columns and mean summaries).
    pub include_plain: bool,
    /// Interval sampler period applied to **every** job of the matrix
    /// (0 = off).
    pub sample_interval: u64,
    /// Pipeline-trace length applied to the matrix's **first** job
    /// only (0 = off).
    pub trace_uops: usize,
    /// Run the static verifier over every program before simulating
    /// (`--verify`): jobs with error-or-worse lint findings fail fast.
    pub verify: bool,
    /// Simulate every job on the reference decode path (`--reference`)
    /// instead of the decoded-uop cache; output must stay byte-identical.
    pub reference_path: bool,
}

impl MatrixSpec {
    /// A standard overhead matrix: out-of-order core, plain baselines
    /// included.
    pub fn new(rows: Vec<FigureRow>, columns: Vec<ColumnSpec>, scale: Scale) -> MatrixSpec {
        MatrixSpec {
            rows,
            columns,
            core: CoreKind::OutOfOrder,
            scale,
            include_plain: true,
            sample_interval: 0,
            trace_uops: 0,
            verify: false,
            reference_path: false,
        }
    }

    /// Applies the CLI's observability flags: the sampler interval to
    /// every job, tracing (when `--trace-out` was given) to the first,
    /// the `--verify` pre-run lint gate to every job, and `--reference`
    /// decode-path selection to every job.
    pub fn with_observability(mut self, cli: &crate::cli::BenchCli) -> MatrixSpec {
        self.sample_interval = cli.sample_interval;
        self.trace_uops = if cli.trace_out.is_some() {
            cli.trace_uops
        } else {
            0
        };
        self.verify = cli.verify;
        self.reference_path = cli.reference;
        self
    }
}

/// Outcomes for one matrix row.
#[derive(Clone)]
pub struct RowResults {
    /// The benchmark row.
    pub row: FigureRow,
    /// Plain-baseline outcome (present iff the spec included it).
    pub plain: Option<JobOutcome>,
    /// One outcome per matrix column.
    pub cells: Vec<JobOutcome>,
}

impl RowResults {
    /// The plain baseline, if it ran and succeeded.
    pub fn plain_result(&self) -> Option<&SimResult> {
        self.plain.as_deref().and_then(|r| r.as_ref().ok())
    }

    /// Column `col`'s result, if it succeeded.
    pub fn cell(&self, col: usize) -> Option<&SimResult> {
        self.cells.get(col).and_then(|r| r.as_ref().as_ref().ok())
    }

    /// Column `col`'s overhead over this row's plain baseline, in
    /// percent; NaN when either run failed.
    pub fn overhead_pct(&self, col: usize) -> f64 {
        match (self.plain_result(), self.cell(col)) {
            (Some(plain), Some(cell)) => cell.overhead_pct_vs(plain),
            _ => f64::NAN,
        }
    }
}

/// All outcomes of one matrix, in row-major submission order.
pub struct MatrixResults {
    /// The matrix's columns (labels + configurations).
    pub columns: Vec<ColumnSpec>,
    /// Per-row outcomes, in spec order.
    pub rows: Vec<RowResults>,
}

impl MatrixResults {
    /// The first successful result carrying a pipeline trace (the
    /// matrix's first job, when the spec enabled tracing).
    pub fn first_trace(&self) -> Option<&rest_cpu::PipelineTrace> {
        self.rows
            .iter()
            .flat_map(|r| r.plain.iter().chain(r.cells.iter()))
            .filter_map(|o| o.as_ref().as_ref().ok())
            .find_map(|r| r.trace.as_ref())
    }

    /// Per-column `(WtdAriMean, GeoMean)` overhead summaries over the
    /// rows whose plain and hardened runs both succeeded.
    pub fn summary(&self) -> Vec<(f64, f64)> {
        (0..self.columns.len())
            .map(|col| {
                let (mut plain, mut hardened) = (Vec::new(), Vec::new());
                for row in &self.rows {
                    if let (Some(p), Some(h)) = (row.plain_result(), row.cell(col)) {
                        plain.push(p.cycles());
                        hardened.push(h.cycles());
                    }
                }
                (
                    crate::wtd_ari_mean_overhead(&plain, &hardened),
                    crate::geo_mean_overhead(&plain, &hardened),
                )
            })
            .collect()
    }

    /// Prints the standard overhead table (benchmark rows, one column
    /// per configuration, WtdAriMean/GeoMean summary rows) to stdout.
    pub fn print_text_table(&self) {
        print!("{:<12}", "benchmark");
        for col in &self.columns {
            print!("{:>18}", col.label);
        }
        println!();
        for row in &self.rows {
            let cells: Vec<f64> = (0..self.columns.len())
                .map(|c| row.overhead_pct(c))
                .collect();
            println!("{}", crate::fmt_row(row.row.name, &cells));
        }
        let summary = self.summary();
        let wtd: Vec<f64> = summary.iter().map(|&(w, _)| w).collect();
        let geo: Vec<f64> = summary.iter().map(|&(_, g)| g).collect();
        println!("{}", crate::fmt_row("WtdAriMean", &wtd));
        println!("{}", crate::fmt_row("GeoMean", &geo));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbm_row() -> FigureRow {
        FigureRow {
            name: "lbm",
            workload: Workload::Lbm,
            seed: 0xC0FFEE,
        }
    }

    #[test]
    fn cache_key_ignores_display_label_only() {
        let row = lbm_row();
        let a = SimJob::new(&row, "a", RtConfig::plain(), Scale::Test);
        let b = SimJob::new(&row, "b", RtConfig::plain(), Scale::Test);
        assert_eq!(a.cache_key(), b.cache_key());
        let asan = SimJob::new(&row, "a", RtConfig::asan(), Scale::Test);
        assert_ne!(a.cache_key(), asan.cache_key());
        let inorder = SimJob {
            core: CoreKind::InOrder,
            ..a.clone()
        };
        assert_ne!(a.cache_key(), inorder.cache_key());
        let budget = SimJob {
            max_uops: Some(100),
            ..a.clone()
        };
        assert_ne!(a.cache_key(), budget.cache_key());
        let gated = SimJob {
            verify: true,
            ..a.clone()
        };
        assert_ne!(a.cache_key(), gated.cache_key());
        let reference = SimJob {
            reference_path: true,
            ..a.clone()
        };
        assert_ne!(a.cache_key(), reference.cache_key());
    }

    #[test]
    fn reference_and_fast_paths_simulate_identically() {
        let row = lbm_row();
        let fast = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
            .execute()
            .unwrap();
        let reference = SimJob {
            reference_path: true,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        }
        .execute()
        .unwrap();
        assert_eq!(fast.stats_map(), reference.stats_map());
        assert_eq!(fast.stop, reference.stop);
        assert_eq!(fast.output, reference.output);
    }

    #[test]
    fn verify_gate_passes_clean_programs() {
        let row = lbm_row();
        let job = SimJob {
            verify: true,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        // lbm lints clean, so the gated run simulates normally and
        // matches the ungated result.
        let gated = job.execute().expect("clean program must pass the gate");
        let plain = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
            .execute()
            .unwrap();
        assert_eq!(gated.core.insts, plain.core.insts);
        assert_eq!(gated.core.cycles, plain.core.cycles);
    }

    #[test]
    fn engine_caches_identical_jobs() {
        let row = lbm_row();
        let engine = Engine::new(2);
        let job = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test);
        let first = engine.run_all(std::slice::from_ref(&job));
        let again = engine.run_all(&[job.clone(), job]);
        assert!(first[0].is_ok());
        // Same allocation: the cached Arc is reused, not re-simulated.
        assert!(Arc::ptr_eq(&first[0], &again[0]));
        assert!(Arc::ptr_eq(&again[0], &again[1]));
    }

    #[test]
    fn uop_budget_becomes_job_error() {
        let row = lbm_row();
        let job = SimJob {
            max_uops: Some(50),
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        let err = job.execute().unwrap_err();
        assert_eq!(err.kind, "uop-limit");
        assert!(err.detail.contains("lbm"));
    }
}
