//! Shared experiment engine: declarative simulation jobs, a
//! deterministic thread-pool runner, and job matrices.
//!
//! Every harness binary describes its experiment as a [`MatrixSpec`]
//! (benchmark rows × hardened configurations) or a list of [`SimJob`]s
//! and hands it to an [`Engine`]. The engine:
//!
//! * fans independent `System::run()` calls across `--jobs N` worker
//!   threads (each simulation is single-threaded and independent),
//! * caches results by job identity, so the plain baseline for a
//!   benchmark is simulated once even when several matrices or columns
//!   share it,
//! * converts panicking or failing simulations into structured
//!   [`JobError`]s instead of aborting the whole sweep,
//! * reports per-job progress and wall time on **stderr** only —
//!   results (stdout tables, JSON) contain no timing, so the same job
//!   matrix produces byte-identical output at any `--jobs` level.
//!
//! Results are assembled strictly in job-submission order; worker
//! scheduling affects only wall-clock time.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rest_cpu::{ExecTier, SimConfig, SimResult, StopReason, System};
use rest_obs::JobTiming;
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload, WorkloadParams};

use crate::{stack_for, FigureRow};

/// Which pipeline model a job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// The paper's Table II 8-wide out-of-order core.
    OutOfOrder,
    /// The narrow in-order core (Figure 3's measurement platform).
    InOrder,
}

/// One simulation to run: a benchmark row under one configuration.
///
/// The job is pure data; [`SimJob::execute`] performs the simulation.
/// Two jobs with identical simulation-relevant fields (everything
/// except the display `label`) are the same experiment and share one
/// cached result in the [`Engine`].
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Row display name (`"gobmk-capture"`, `"lbm"`, …).
    pub name: String,
    /// Column display label (`"asan"`, `"rest-secure-full"`, …).
    pub label: String,
    /// Workload kernel.
    pub workload: Workload,
    /// Input seed (gobmk sub-inputs vary the board position).
    pub seed: u64,
    /// Runtime / protection-scheme configuration.
    pub rt: RtConfig,
    /// Pipeline model.
    pub core: CoreKind,
    /// Input-set scale.
    pub scale: Scale,
    /// Ablation: serialise arm/disarm execution (§III-B's rejected
    /// alternative).
    pub serialize_rest_ops: bool,
    /// Dedicated token-cache entries (0 = paper's evaluated design).
    pub token_cache_entries: usize,
    /// Micro-op budget override; `None` keeps the generous default.
    /// (Small values force [`StopReason::UopLimit`] — used by tests to
    /// inject failing jobs.)
    pub max_uops: Option<u64>,
    /// Interval sampler period in committed instructions (0 = off);
    /// the result then carries a [`rest_obs::TimeSeries`].
    pub sample_interval: u64,
    /// Pipeline-trace length in micro-ops (0 = off); the result then
    /// carries a [`rest_cpu::PipelineTrace`].
    pub trace_uops: usize,
    /// Run the static ARM/DISARM verifier over the built program before
    /// simulating, failing fast (kind `"verify"`) on any error-or-worse
    /// finding instead of burning cycles on a bad program.
    pub verify: bool,
    /// Functional execution tier: reference re-decode (`--reference`),
    /// the decoded-uop cache (default), or superblock traces
    /// (`--trace`). Results are identical by construction; CI diffs the
    /// tiers byte-for-byte.
    pub tier: ExecTier,
    /// Attack scenario to run instead of `workload` (fault-injection
    /// campaigns mix clean workload rows with attack rows). When set,
    /// `workload` is an ignored placeholder and the verify gate is
    /// skipped — attacks violate the ARM/DISARM discipline on purpose.
    pub attack: Option<rest_attacks::Attack>,
    /// Hardware fault to inject during the run (`rest-faults`).
    pub fault: Option<rest_faults::FaultSpec>,
    /// Treat **any** guest stop as a successful simulation instead of
    /// mapping non-`exit(0)` stops to [`JobError`]s. Fault campaigns
    /// need the full result (stop reason, output, fault report) for
    /// every cell — a detected violation is data, not a failure.
    pub accept_any_stop: bool,
    /// Guest cycle budget (0 = off): the simulation stops with
    /// [`StopReason::CycleLimit`] once the pipeline clock (or, for
    /// functional runs, the committed-uop count) reaches it. This is
    /// the deterministic half of the watchdog.
    pub max_cycles: u64,
    /// Host wall-clock deadline in milliseconds (0 = off): the attempt
    /// runs on a helper thread and is abandoned with a `"timeout"`
    /// [`JobError`] when it overruns. Host-speed dependent, so
    /// experiments that must stay byte-deterministic leave it 0 and
    /// rely on `max_cycles` instead.
    pub wall_deadline_ms: u64,
    /// Bounded retry budget for transient host errors (kind
    /// `"transient-io"`): up to this many extra attempts with
    /// exponential backoff before the error is reported.
    pub retry_transient: u32,
    /// Test knob: the first N attempts fail with a `"transient-io"`
    /// error before any simulation runs — exercises the retry path.
    pub inject_transient_failures: u32,
    /// Test knob: the attempt panics before simulating — exercises the
    /// panic-isolation path.
    pub inject_panic: bool,
    /// Collect the guest hotspot profile (dense per-PC cycle/uop/check
    /// counters plus the per-allocation-site table); the result then
    /// carries a [`rest_cpu::GuestProfile`].
    pub profile_guest: bool,
    /// Run the static check-elision pass (`rest-verify`) over the built
    /// program and hand its map to the simulator: proven-safe accesses
    /// skip check injection and validation, counted in
    /// `CoreStats::elided_checks`. Applied to attack rows too: attacks
    /// with Error+ lint findings get empty maps by construction, and
    /// any residual elisions on clean-linting attacks are pinned by the
    /// differential attack-coverage gate (identical stop and audit).
    pub elide: bool,
    /// Minimized regression program to run instead of `workload`
    /// (assembly text from `tests/regress/`, see `rest_attacks::regress`).
    /// Like `attack`, the workload is an ignored placeholder and the
    /// verify gate is skipped — reproducers trip REST on purpose.
    pub regress: Option<RegressProg>,
}

/// A regression-corpus program: minimized reproducer assembly replayed
/// by defense/elide campaigns alongside the hand-written attacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegressProg {
    /// Corpus file stem (`"oob-write-agree-detected"`, …).
    pub name: String,
    /// Assembly text (shared: one corpus load serves every scheme).
    pub asm: Arc<String>,
}

/// FNV-1a over a byte string — regression assembly identity in cache
/// keys without embedding the whole program text.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

impl SimJob {
    /// A job running `row` under `rt` on the out-of-order core.
    pub fn new(row: &FigureRow, label: impl Into<String>, rt: RtConfig, scale: Scale) -> SimJob {
        SimJob {
            name: row.name.to_string(),
            label: label.into(),
            workload: row.workload,
            seed: row.seed,
            rt,
            core: CoreKind::OutOfOrder,
            scale,
            serialize_rest_ops: false,
            token_cache_entries: 0,
            max_uops: None,
            sample_interval: 0,
            trace_uops: 0,
            verify: false,
            tier: ExecTier::Fast,
            attack: None,
            fault: None,
            accept_any_stop: false,
            max_cycles: 0,
            wall_deadline_ms: 0,
            retry_transient: 0,
            inject_transient_failures: 0,
            inject_panic: false,
            profile_guest: false,
            elide: false,
            regress: None,
        }
    }

    /// A job replaying regression-corpus program `prog` under `rt`: any
    /// stop is accepted (the stop reason *is* the measurement).
    pub fn for_regress(
        prog: RegressProg,
        label: impl Into<String>,
        rt: RtConfig,
        scale: Scale,
    ) -> SimJob {
        let row = FigureRow {
            name: "regress",
            // Placeholder only: `regress` overrides the workload.
            workload: Workload::Lbm,
            seed: 0,
        };
        let mut job = SimJob {
            accept_any_stop: true,
            ..SimJob::new(&row, label, rt, scale)
        };
        job.name = prog.name.clone();
        job.regress = Some(prog);
        job
    }

    /// A job running attack scenario `attack` under `rt`: any stop is
    /// accepted (the stop reason *is* the measurement).
    pub fn for_attack(
        attack: rest_attacks::Attack,
        label: impl Into<String>,
        rt: RtConfig,
        scale: Scale,
    ) -> SimJob {
        let row = FigureRow {
            name: attack.name(),
            // Placeholder only: `attack` overrides the workload.
            workload: Workload::Lbm,
            seed: 0,
        };
        SimJob {
            attack: Some(attack),
            accept_any_stop: true,
            ..SimJob::new(&row, label, rt, scale)
        }
    }

    /// The unprotected baseline job for `row`.
    pub fn plain(row: &FigureRow, core: CoreKind, scale: Scale) -> SimJob {
        SimJob {
            core,
            ..SimJob::new(row, "plain", RtConfig::plain(), scale)
        }
    }

    /// The job for `row` under matrix column `col`.
    pub fn for_column(row: &FigureRow, col: &ColumnSpec, core: CoreKind, scale: Scale) -> SimJob {
        SimJob {
            core,
            serialize_rest_ops: col.serialize_rest_ops,
            token_cache_entries: col.token_cache_entries,
            ..SimJob::new(row, col.label.clone(), col.rt.clone(), scale)
        }
    }

    /// Identity of the simulation this job performs. Everything that
    /// influences the simulated outcome participates; display strings
    /// do not.
    pub fn cache_key(&self) -> String {
        // Regression programs are identified by name + assembly hash:
        // two corpus files never alias, and editing a reproducer's
        // assembly invalidates its cached result.
        let regress = match &self.regress {
            Some(p) => format!("{}#{:#x}", p.name, fnv1a(p.asm.as_bytes())),
            None => String::new(),
        };
        format!(
            "{:?}|{:#x}|{:?}|{:?}|{:?}|{}|{}|{:?}|{}|{}|{}|{}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.workload,
            self.seed,
            self.rt,
            self.core,
            self.scale,
            self.serialize_rest_ops,
            self.token_cache_entries,
            self.max_uops,
            // Observability settings don't change the simulated cycles,
            // but they change what the result carries (series / trace),
            // so results must not be shared across different settings.
            self.sample_interval,
            self.trace_uops,
            // The verify gate can turn a would-be simulation into a
            // verify error, so gated and ungated runs are distinct.
            self.verify,
            // The execution tiers must be measured independently —
            // sharing a cached result would defeat the differential
            // gate.
            self.tier.label(),
            // Attack scenario and injected fault define what simulates;
            // the budget/stop-policy fields change how a run can end;
            // the failure-injection knobs change the attempt outcome.
            self.attack,
            self.fault,
            self.accept_any_stop,
            self.max_cycles,
            self.wall_deadline_ms,
            self.retry_transient,
            self.inject_transient_failures,
            self.inject_panic,
            // Profiled results carry the per-PC tables; unprofiled ones
            // must not alias them.
            self.profile_guest,
            // Elided runs skip checks at proven-safe PCs; sharing a
            // cached result with a full run would hide the difference
            // the differential gate exists to measure.
            self.elide,
            regress,
        )
    }

    /// Builds the workload and simulates it, mapping panics and
    /// abnormal stops to [`JobError`].
    ///
    /// Resilience wrapper around [`SimJob::execute_attempt`]: transient
    /// errors (kind `"transient-io"`) are retried up to
    /// `retry_transient` times with exponential backoff, and when
    /// `wall_deadline_ms` is set each attempt runs under a host
    /// wall-clock watchdog that abandons overrunning simulations with a
    /// `"timeout"` error.
    pub fn execute(&self) -> Result<SimResult, JobError> {
        self.execute_tracked().0
    }

    /// As [`SimJob::execute`], additionally reporting how many attempts
    /// the job took (1 for a first-try success; each transient retry
    /// adds one). The engine records this in the job's telemetry span.
    pub fn execute_tracked(&self) -> (Result<SimResult, JobError>, u32) {
        let mut attempt = 0u32;
        loop {
            let outcome = self.execute_watchdogged(attempt);
            match &outcome {
                Err(e) if e.is_transient() && attempt < self.retry_transient => {
                    let backoff = Duration::from_millis(10u64 << attempt.min(6));
                    eprintln!(
                        "# {} {}: transient failure (attempt {}), retrying in {:?}: {}",
                        self.name, self.label, attempt + 1, backoff, e.detail
                    );
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                _ => return (outcome, attempt + 1),
            }
        }
    }

    /// Runs one attempt, under the host wall-clock watchdog when
    /// `wall_deadline_ms` is set. The attempt executes on a helper
    /// thread; on deadline overrun the thread is abandoned (it can't be
    /// killed safely mid-simulation) and the job reports a `"timeout"`
    /// error. The deadline-free path stays on the calling thread.
    fn execute_watchdogged(&self, attempt: u32) -> Result<SimResult, JobError> {
        if self.wall_deadline_ms == 0 {
            return self.execute_attempt(attempt);
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let job = self.clone();
        std::thread::spawn(move || {
            // The receiver may have given up; a dead channel is fine.
            let _ = tx.send(job.execute_attempt(attempt));
        });
        match rx.recv_timeout(Duration::from_millis(self.wall_deadline_ms)) {
            Ok(outcome) => outcome,
            Err(_) => Err(JobError {
                kind: "timeout".to_string(),
                detail: format!(
                    "{} (seed {:#x}) exceeded the host wall deadline of {} ms under {}",
                    self.workload, self.seed, self.wall_deadline_ms, self.label
                ),
            }),
        }
    }

    /// One simulation attempt: builds the program (workload or attack),
    /// runs it, and maps panics and abnormal stops to [`JobError`]s.
    /// `attempt` feeds the failure-injection test knobs.
    pub fn execute_attempt(&self, attempt: u32) -> Result<SimResult, JobError> {
        if attempt < self.inject_transient_failures {
            return Err(JobError {
                kind: "transient-io".to_string(),
                detail: format!(
                    "injected transient failure on attempt {attempt} (test knob)"
                ),
            });
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if self.inject_panic {
                panic!("injected panic (test knob)");
            }
            let program = if let Some(attack) = self.attack {
                attack.build(stack_for(&self.rt))
            } else if let Some(prog) = &self.regress {
                match rest_isa::parse_asm(&prog.asm) {
                    Ok(p) => p,
                    Err(e) => {
                        return Err(JobError {
                            kind: "regress-parse".to_string(),
                            detail: format!("regression case {}: {e}", prog.name),
                        })
                    }
                }
            } else {
                let params = WorkloadParams {
                    scale: self.scale,
                    stack_scheme: stack_for(&self.rt),
                    token_width: self.rt.token_width,
                    seed: self.seed,
                };
                self.workload.build(&params)
            };
            if self.verify && self.attack.is_none() && self.regress.is_none() {
                let lint = rest_verify::verify_program(&program);
                let worst: Vec<_> = lint.at_least(rest_verify::Severity::Error).collect();
                if !worst.is_empty() {
                    let f = worst[0];
                    return Err(JobError {
                        kind: "verify".to_string(),
                        detail: format!(
                            "{} (seed {:#x}): {} finding(s) at error or above; first: \
                             [{}] pc {:#x} {}: {}",
                            self.workload,
                            self.seed,
                            worst.len(),
                            f.severity.name(),
                            f.pc,
                            f.pass,
                            f.message
                        ),
                    });
                }
            }
            // The elision map is computed from the same program object
            // the simulator runs, so the PCs line up by construction.
            // Attack programs with Error+ findings get empty maps;
            // clean-linting attacks may elide provably in-bounds
            // accesses. The attack-coverage gate verifies end to end
            // that detection and audit provenance are unchanged.
            let elision = if self.elide {
                let scheme = if self.rt.scheme == rest_runtime::Scheme::Asan {
                    rest_verify::ElideScheme::Asan
                } else {
                    rest_verify::ElideScheme::Rest
                };
                let report = rest_verify::elide_program(&program, scheme);
                Some(Arc::new(report.map))
            } else {
                None
            };
            let mut cfg = match self.core {
                CoreKind::OutOfOrder => SimConfig::isca2018(self.rt.clone()),
                CoreKind::InOrder => SimConfig::inorder(self.rt.clone()),
            };
            cfg.elision = elision;
            cfg.core.serialize_rest_ops = self.serialize_rest_ops;
            cfg.mem.token_cache_entries = self.token_cache_entries;
            cfg.sample_interval = self.sample_interval;
            cfg.trace_uops = self.trace_uops;
            cfg.tier = self.tier;
            cfg.max_cycles = self.max_cycles;
            cfg.fault = self.fault;
            cfg.profile_guest = self.profile_guest;
            if let Some(budget) = self.max_uops {
                cfg.max_uops = budget;
            }
            Ok(System::new(program, cfg).run())
        }));
        let result = match outcome {
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return Err(JobError {
                    kind: "panic".to_string(),
                    detail,
                });
            }
            Ok(Err(e)) => return Err(e),
            Ok(Ok(r)) => r,
        };
        if matches!(result.stop, StopReason::Exit(0)) || self.accept_any_stop {
            return Ok(result);
        }
        let stop = &result.stop;
        Err(JobError {
            kind: match stop {
                StopReason::Halted => "halted",
                StopReason::Exit(_) => "nonzero-exit",
                StopReason::Violation(_) => "violation",
                StopReason::UopLimit => "uop-limit",
                StopReason::CycleLimit => "cycle-limit",
                StopReason::Fault(_) => "fault",
            }
            .to_string(),
            detail: format!(
                "{} (seed {:#x}) stopped with {:?} under {}",
                self.workload, self.seed, stop, result.label
            ),
        })
    }
}

/// A simulation that did not complete normally: the guest stopped with
/// anything other than `exit(0)`, or the attempt itself failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Machine-readable class. Guest stops map to `"violation"`,
    /// `"uop-limit"`, `"cycle-limit"`, `"fault"`, `"halted"`, or
    /// `"nonzero-exit"`; attempt failures to `"panic"` (simulator
    /// panicked), `"timeout"` (host wall-clock watchdog),
    /// `"transient-io"` (retryable host error), or `"verify"` (static
    /// lint gate).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl JobError {
    /// Whether the error class is worth retrying (host-side transient
    /// conditions, not deterministic guest outcomes).
    pub fn is_transient(&self) -> bool {
        self.kind == "transient-io"
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Shared outcome of one job (cached, so cheap to clone).
pub type JobOutcome = Arc<Result<SimResult, JobError>>;

/// Telemetry span for one submitted job: which worker ran it, when it
/// started relative to the engine's first submission, how long it
/// queued and ran, how many attempts it took, and how it ended. Cache
/// hits record zero durations and zero attempts. Serialised into the
/// `rest-telemetry/v1` document (host wall times, so `BENCH_*` only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpan {
    /// The job's display label (`"<row> <column>"`).
    pub label: String,
    /// Worker-pool slot that executed the job (0 for cache hits).
    pub worker: usize,
    /// Start offset from the engine's first `run_all` submission —
    /// campaign-relative, so spans from successive matrices share one
    /// timeline.
    pub start: Duration,
    /// Time spent queued before a worker picked the job up.
    pub queue: Duration,
    /// Wall time of the execution (all attempts plus backoff).
    pub run: Duration,
    /// Attempts taken: 1 for a first-try outcome, +1 per transient
    /// retry, 0 for cache hits.
    pub attempts: u32,
    /// Whether the outcome came from the engine's job cache.
    pub cached: bool,
    /// `"ok"`, or the [`JobError`] kind the job ended with.
    pub outcome: String,
}

/// What a worker recorded about one freshly executed job.
struct FreshRun {
    wall: Duration,
    queue: Duration,
    attempts: u32,
    worker: usize,
}

/// Locks a mutex, recovering the data from a poisoned lock. A panic on
/// one worker thread (already surfaced as a `"panic"` [`JobError`] by
/// `catch_unwind`) poisons any mutex it held; unwrapping the poison
/// would cascade that one failure into panics on every later lock of
/// the shared cache/timing state, taking the whole sweep down. The
/// guarded data is only ever mutated by single `insert`/`push` calls,
/// so the recovered state is consistent.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The job runner: a fixed-size worker pool plus a result cache keyed
/// by [`SimJob::cache_key`].
///
/// One engine can serve several matrices in sequence; jobs they share
/// (typically plain baselines) are simulated once.
pub struct Engine {
    workers: usize,
    cache: Mutex<HashMap<String, JobOutcome>>,
    timings: Mutex<Vec<JobTiming>>,
    spans: Mutex<Vec<JobSpan>>,
    /// Wall time already consumed by earlier `run_all` calls: spans
    /// from successive submissions continue one campaign timeline.
    epoch: Mutex<Duration>,
}

impl Engine {
    /// An engine running at most `workers` simulations concurrently.
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            cache: Mutex::new(HashMap::new()),
            timings: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
            epoch: Mutex::new(Duration::ZERO),
        }
    }

    /// The configured worker-pool size (after the `max(1)` clamp).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-job wall-time records accumulated so far (submission order;
    /// cache hits appear with `cached: true` and zero wall time).
    /// Draining resets the log, so successive experiments on one
    /// engine can profile separately.
    pub fn take_timings(&self) -> Vec<JobTiming> {
        std::mem::take(&mut lock_recover(&self.timings))
    }

    /// Per-job telemetry spans accumulated so far (submission order,
    /// one per submitted job — cache hits included). Draining resets
    /// the log.
    pub fn take_spans(&self) -> Vec<JobSpan> {
        std::mem::take(&mut lock_recover(&self.spans))
    }

    /// Runs every job not already cached, in parallel, and returns one
    /// outcome per input job **in input order** (duplicates and cache
    /// hits resolve to the same shared result).
    pub fn run_all(&self, jobs: &[SimJob]) -> Vec<JobOutcome> {
        let fresh: Vec<&SimJob> = {
            let cache = lock_recover(&self.cache);
            let mut seen = HashSet::new();
            jobs.iter()
                .filter(|j| {
                    let key = j.cache_key();
                    !cache.contains_key(&key) && seen.insert(key)
                })
                .collect()
        };
        let total = fresh.len();
        let base = *lock_recover(&self.epoch);
        let run_started = Instant::now();
        let fresh_runs: Mutex<HashMap<String, FreshRun>> = Mutex::new(HashMap::new());
        if total > 0 {
            let next = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let workers = self.workers.min(total);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (next, done, fresh) = (&next, &done, &fresh);
                    let (fresh_runs, cache) = (&fresh_runs, &self.cache);
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let job = fresh[i];
                        let job_started = Instant::now();
                        let queue = job_started.duration_since(run_started);
                        let (result, attempts) = job.execute_tracked();
                        let wall = job_started.elapsed();
                        let secs = wall.as_secs_f64();
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        match &result {
                            Ok(r) => eprintln!(
                                "[{n}/{total}] {} {}: {} cycles, {secs:.2}s",
                                job.name,
                                job.label,
                                r.cycles()
                            ),
                            Err(e) => eprintln!(
                                "[{n}/{total}] {} {}: FAILED ({e}), {secs:.2}s",
                                job.name, job.label
                            ),
                        }
                        lock_recover(fresh_runs).insert(
                            job.cache_key(),
                            FreshRun {
                                wall,
                                queue,
                                attempts,
                                worker: w,
                            },
                        );
                        lock_recover(cache).insert(job.cache_key(), Arc::new(result));
                    });
                }
            });
            eprintln!(
                "# {total} jobs on {workers} workers in {:.2}s",
                run_started.elapsed().as_secs_f64()
            );
        }
        // Log per-job wall times and telemetry spans in submission
        // order: the first request for a key that was simulated this
        // call gets the measured record; duplicates and pre-cached keys
        // log as cache hits.
        {
            let mut runs = fresh_runs.into_inner().unwrap_or_else(|poison| poison.into_inner());
            let mut timings = lock_recover(&self.timings);
            let mut spans = lock_recover(&self.spans);
            let cache = lock_recover(&self.cache);
            for job in jobs {
                let label = format!("{} {}", job.name, job.label);
                let outcome = match cache[&job.cache_key()].as_ref() {
                    Ok(_) => "ok".to_string(),
                    Err(e) => e.kind.clone(),
                };
                match runs.remove(&job.cache_key()) {
                    Some(run) => {
                        timings.push(JobTiming {
                            label: label.clone(),
                            wall: run.wall,
                            cached: false,
                        });
                        spans.push(JobSpan {
                            label,
                            worker: run.worker,
                            start: base + run.queue,
                            queue: run.queue,
                            run: run.wall,
                            attempts: run.attempts,
                            cached: false,
                            outcome,
                        });
                    }
                    None => {
                        timings.push(JobTiming {
                            label: label.clone(),
                            wall: Duration::ZERO,
                            cached: true,
                        });
                        spans.push(JobSpan {
                            label,
                            worker: 0,
                            start: base,
                            queue: Duration::ZERO,
                            run: Duration::ZERO,
                            attempts: 0,
                            cached: true,
                            outcome,
                        });
                    }
                }
            }
        }
        *lock_recover(&self.epoch) = base + run_started.elapsed();
        let cache = lock_recover(&self.cache);
        jobs.iter().map(|j| cache[&j.cache_key()].clone()).collect()
    }

    /// Runs `count` independent tasks on the worker pool and returns
    /// their results **in index order** — worker scheduling affects
    /// wall-clock only, so output built from the results is
    /// byte-identical at any `--jobs` level. Used by campaigns whose
    /// unit of work is not a [`SimJob`] (the fuzz campaign's tri-oracle
    /// cells); tasks are expected to catch their own panics.
    pub fn run_tasks<T: Send, F: Fn(usize) -> T + Sync>(&self, count: usize, task: F) -> Vec<T> {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(count);
        if workers <= 1 {
            return (0..count).map(task).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let (next, slots, task) = (&next, &slots, &task);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = task(i);
                    *lock_recover(&slots[i]) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .expect("every task slot filled")
            })
            .collect()
    }

    /// Runs a full experiment matrix. Plain baselines (when
    /// `spec.include_plain`) and hardened cells all go through the same
    /// worker pool and cache.
    pub fn run_matrix(&self, spec: &MatrixSpec) -> MatrixResults {
        let mut jobs = Vec::new();
        for row in &spec.rows {
            if spec.include_plain {
                jobs.push(SimJob::plain(row, spec.core, spec.scale));
            }
            for col in &spec.columns {
                jobs.push(SimJob::for_column(row, col, spec.core, spec.scale));
            }
        }
        for job in &mut jobs {
            job.sample_interval = spec.sample_interval;
            job.verify = spec.verify;
            job.tier = spec.tier;
            job.profile_guest = spec.profile_guest;
        }
        // Tracing is bounded to the matrix's first job: one Perfetto
        // document per experiment is plenty, and tracing every job
        // would multiply memory use for no added insight.
        if let Some(first) = jobs.first_mut() {
            first.trace_uops = spec.trace_uops;
        }
        let outcomes = self.run_all(&jobs);
        let stride = spec.columns.len() + usize::from(spec.include_plain);
        let rows = spec
            .rows
            .iter()
            .zip(outcomes.chunks(stride.max(1)))
            .map(|(row, chunk)| {
                let (plain, cells) = if spec.include_plain {
                    (Some(chunk[0].clone()), chunk[1..].to_vec())
                } else {
                    (None, chunk.to_vec())
                };
                RowResults {
                    row: *row,
                    plain,
                    cells,
                }
            })
            .collect();
        MatrixResults {
            columns: spec.columns.clone(),
            rows,
        }
    }
}

/// One hardened column of an experiment matrix.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Display label (also the JSON cell label).
    pub label: String,
    /// Runtime configuration.
    pub rt: RtConfig,
    /// Ablation: serialised arm/disarm execution.
    pub serialize_rest_ops: bool,
    /// Dedicated token-cache entries (0 = disabled).
    pub token_cache_entries: usize,
}

impl ColumnSpec {
    /// A plain column: `rt` on the stock machine.
    pub fn new(label: impl Into<String>, rt: RtConfig) -> ColumnSpec {
        ColumnSpec {
            label: label.into(),
            rt,
            serialize_rest_ops: false,
            token_cache_entries: 0,
        }
    }
}

/// A declarative experiment: rows × columns at one core/scale.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Benchmark rows.
    pub rows: Vec<FigureRow>,
    /// Hardened configurations.
    pub columns: Vec<ColumnSpec>,
    /// Pipeline model for every job in the matrix.
    pub core: CoreKind,
    /// Input-set scale.
    pub scale: Scale,
    /// Also simulate the plain baseline per row (needed for overhead
    /// columns and mean summaries).
    pub include_plain: bool,
    /// Interval sampler period applied to **every** job of the matrix
    /// (0 = off).
    pub sample_interval: u64,
    /// Pipeline-trace length applied to the matrix's **first** job
    /// only (0 = off).
    pub trace_uops: usize,
    /// Run the static verifier over every program before simulating
    /// (`--verify`): jobs with error-or-worse lint findings fail fast.
    pub verify: bool,
    /// Execution tier applied to every job (`--reference` / `--trace`);
    /// output must stay byte-identical across tiers.
    pub tier: ExecTier,
    /// Collect the guest hotspot profile on **every** job of the
    /// matrix: results then carry per-PC counters and the
    /// per-allocation-site table (used by the defense campaign's
    /// check-attribution section).
    pub profile_guest: bool,
}

impl MatrixSpec {
    /// A standard overhead matrix: out-of-order core, plain baselines
    /// included.
    pub fn new(rows: Vec<FigureRow>, columns: Vec<ColumnSpec>, scale: Scale) -> MatrixSpec {
        MatrixSpec {
            rows,
            columns,
            core: CoreKind::OutOfOrder,
            scale,
            include_plain: true,
            sample_interval: 0,
            trace_uops: 0,
            verify: false,
            tier: ExecTier::Fast,
            profile_guest: false,
        }
    }

    /// Applies the CLI's observability flags: the sampler interval to
    /// every job, tracing (when `--trace-out` was given) to the first,
    /// the `--verify` pre-run lint gate to every job, and `--reference`
    /// decode-path selection to every job.
    pub fn with_observability(mut self, cli: &crate::cli::BenchCli) -> MatrixSpec {
        self.sample_interval = cli.sample_interval;
        self.trace_uops = if cli.trace_out.is_some() {
            cli.trace_uops
        } else {
            0
        };
        self.verify = cli.verify;
        self.tier = cli.exec_tier();
        self
    }
}

/// Outcomes for one matrix row.
#[derive(Clone)]
pub struct RowResults {
    /// The benchmark row.
    pub row: FigureRow,
    /// Plain-baseline outcome (present iff the spec included it).
    pub plain: Option<JobOutcome>,
    /// One outcome per matrix column.
    pub cells: Vec<JobOutcome>,
}

impl RowResults {
    /// The plain baseline, if it ran and succeeded.
    pub fn plain_result(&self) -> Option<&SimResult> {
        self.plain.as_deref().and_then(|r| r.as_ref().ok())
    }

    /// Column `col`'s result, if it succeeded.
    pub fn cell(&self, col: usize) -> Option<&SimResult> {
        self.cells.get(col).and_then(|r| r.as_ref().as_ref().ok())
    }

    /// Column `col`'s overhead over this row's plain baseline, in
    /// percent; NaN when either run failed.
    pub fn overhead_pct(&self, col: usize) -> f64 {
        match (self.plain_result(), self.cell(col)) {
            (Some(plain), Some(cell)) => cell.overhead_pct_vs(plain),
            _ => f64::NAN,
        }
    }
}

/// All outcomes of one matrix, in row-major submission order.
pub struct MatrixResults {
    /// The matrix's columns (labels + configurations).
    pub columns: Vec<ColumnSpec>,
    /// Per-row outcomes, in spec order.
    pub rows: Vec<RowResults>,
}

impl MatrixResults {
    /// The first successful result carrying a pipeline trace (the
    /// matrix's first job, when the spec enabled tracing).
    pub fn first_trace(&self) -> Option<&rest_cpu::PipelineTrace> {
        self.rows
            .iter()
            .flat_map(|r| r.plain.iter().chain(r.cells.iter()))
            .filter_map(|o| o.as_ref().as_ref().ok())
            .find_map(|r| r.trace.as_ref())
    }

    /// Per-column `(WtdAriMean, GeoMean)` overhead summaries over the
    /// rows whose plain and hardened runs both succeeded.
    pub fn summary(&self) -> Vec<(f64, f64)> {
        (0..self.columns.len())
            .map(|col| {
                let (mut plain, mut hardened) = (Vec::new(), Vec::new());
                for row in &self.rows {
                    if let (Some(p), Some(h)) = (row.plain_result(), row.cell(col)) {
                        plain.push(p.cycles());
                        hardened.push(h.cycles());
                    }
                }
                (
                    crate::wtd_ari_mean_overhead(&plain, &hardened),
                    crate::geo_mean_overhead(&plain, &hardened),
                )
            })
            .collect()
    }

    /// Prints the standard overhead table (benchmark rows, one column
    /// per configuration, WtdAriMean/GeoMean summary rows) to stdout.
    pub fn print_text_table(&self) {
        print!("{:<12}", "benchmark");
        for col in &self.columns {
            print!("{:>18}", col.label);
        }
        println!();
        for row in &self.rows {
            let cells: Vec<f64> = (0..self.columns.len())
                .map(|c| row.overhead_pct(c))
                .collect();
            println!("{}", crate::fmt_row(row.row.name, &cells));
        }
        let summary = self.summary();
        let wtd: Vec<f64> = summary.iter().map(|&(w, _)| w).collect();
        let geo: Vec<f64> = summary.iter().map(|&(_, g)| g).collect();
        println!("{}", crate::fmt_row("WtdAriMean", &wtd));
        println!("{}", crate::fmt_row("GeoMean", &geo));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbm_row() -> FigureRow {
        FigureRow {
            name: "lbm",
            workload: Workload::Lbm,
            seed: 0xC0FFEE,
        }
    }

    #[test]
    fn cache_key_ignores_display_label_only() {
        let row = lbm_row();
        let a = SimJob::new(&row, "a", RtConfig::plain(), Scale::Test);
        let b = SimJob::new(&row, "b", RtConfig::plain(), Scale::Test);
        assert_eq!(a.cache_key(), b.cache_key());
        let asan = SimJob::new(&row, "a", RtConfig::asan(), Scale::Test);
        assert_ne!(a.cache_key(), asan.cache_key());
        let inorder = SimJob {
            core: CoreKind::InOrder,
            ..a.clone()
        };
        assert_ne!(a.cache_key(), inorder.cache_key());
        let budget = SimJob {
            max_uops: Some(100),
            ..a.clone()
        };
        assert_ne!(a.cache_key(), budget.cache_key());
        let gated = SimJob {
            verify: true,
            ..a.clone()
        };
        assert_ne!(a.cache_key(), gated.cache_key());
        let reference = SimJob {
            tier: ExecTier::Reference,
            ..a.clone()
        };
        assert_ne!(a.cache_key(), reference.cache_key());
        let trace = SimJob {
            tier: ExecTier::Trace,
            ..a.clone()
        };
        assert_ne!(a.cache_key(), trace.cache_key());
        assert_ne!(reference.cache_key(), trace.cache_key());
    }

    #[test]
    fn reference_and_fast_paths_simulate_identically() {
        let row = lbm_row();
        let fast = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
            .execute()
            .unwrap();
        let reference = SimJob {
            tier: ExecTier::Reference,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        }
        .execute()
        .unwrap();
        assert_eq!(fast.stats_map(), reference.stats_map());
        assert_eq!(fast.stop, reference.stop);
        assert_eq!(fast.output, reference.output);
        let trace = SimJob {
            tier: ExecTier::Trace,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        }
        .execute()
        .unwrap();
        assert_eq!(fast.stats_map(), trace.stats_map());
        assert_eq!(fast.stop, trace.stop);
        assert_eq!(fast.output, trace.output);
    }

    #[test]
    fn verify_gate_passes_clean_programs() {
        let row = lbm_row();
        let job = SimJob {
            verify: true,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        // lbm lints clean, so the gated run simulates normally and
        // matches the ungated result.
        let gated = job.execute().expect("clean program must pass the gate");
        let plain = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
            .execute()
            .unwrap();
        assert_eq!(gated.core.insts, plain.core.insts);
        assert_eq!(gated.core.cycles, plain.core.cycles);
    }

    #[test]
    fn engine_caches_identical_jobs() {
        let row = lbm_row();
        let engine = Engine::new(2);
        let job = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test);
        let first = engine.run_all(std::slice::from_ref(&job));
        let again = engine.run_all(&[job.clone(), job]);
        assert!(first[0].is_ok());
        // Same allocation: the cached Arc is reused, not re-simulated.
        assert!(Arc::ptr_eq(&first[0], &again[0]));
        assert!(Arc::ptr_eq(&again[0], &again[1]));
    }

    #[test]
    fn uop_budget_becomes_job_error() {
        let row = lbm_row();
        let job = SimJob {
            max_uops: Some(50),
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        let err = job.execute().unwrap_err();
        assert_eq!(err.kind, "uop-limit");
        assert!(err.detail.contains("lbm"));
    }

    #[test]
    fn injected_panic_becomes_structured_job_error() {
        let row = lbm_row();
        let job = SimJob {
            inject_panic: true,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        let err = job.execute().unwrap_err();
        assert_eq!(err.kind, "panic");
        assert!(err.detail.contains("injected panic"));
    }

    #[test]
    fn panicking_job_does_not_poison_the_engine() {
        // A panicking cell must neither kill its siblings nor poison
        // the engine's shared state for later submissions.
        let row = lbm_row();
        let engine = Engine::new(2);
        let panicking = SimJob {
            inject_panic: true,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        let healthy = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test);
        let outcomes = engine.run_all(&[panicking, healthy.clone()]);
        assert_eq!(outcomes[0].as_ref().as_ref().unwrap_err().kind, "panic");
        assert!(outcomes[1].is_ok());
        // The engine stays usable afterwards.
        let again = engine.run_all(std::slice::from_ref(&healthy));
        assert!(again[0].is_ok());
        assert_eq!(engine.take_timings().len(), 3);
    }

    #[test]
    fn spans_record_workers_attempts_and_cache_hits() {
        let row = lbm_row();
        let engine = Engine::new(2);
        let retried = SimJob {
            inject_transient_failures: 1,
            retry_transient: 1,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        let outcomes = engine.run_all(&[retried.clone(), retried]);
        assert!(outcomes[0].is_ok());
        let spans = engine.take_spans();
        assert_eq!(spans.len(), 2);
        // Fresh execution: one transient failure plus the success.
        assert!(!spans[0].cached);
        assert_eq!(spans[0].attempts, 2);
        assert_eq!(spans[0].outcome, "ok");
        assert!(spans[0].run > Duration::ZERO);
        // The duplicate resolves from the cache.
        assert!(spans[1].cached);
        assert_eq!(spans[1].attempts, 0);
        assert_eq!(spans[1].run, Duration::ZERO);
        // A later submission records its error kind and continues the
        // campaign timeline.
        let panicking = SimJob {
            inject_panic: true,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        engine.run_all(std::slice::from_ref(&panicking));
        let later = engine.take_spans();
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].outcome, "panic");
        assert!(later[0].start >= spans[0].run, "epoch must accumulate");
        // Draining resets the log.
        assert!(engine.take_spans().is_empty());
    }

    #[test]
    fn profile_guest_participates_in_cache_keys_and_results() {
        let row = lbm_row();
        let plain = SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test);
        let profiled = SimJob {
            profile_guest: true,
            ..plain.clone()
        };
        assert_ne!(plain.cache_key(), profiled.cache_key());
        let result = profiled.execute().unwrap();
        let profile = result.profile.expect("profiled job carries the tables");
        assert_eq!(profile.cycles.total(), result.core.cycles);
        assert!(plain.execute().unwrap().profile.is_none());
    }

    #[test]
    fn wall_deadline_watchdog_times_out_slow_jobs() {
        // A 1 ms host deadline is far below any cycle-level simulation;
        // the watchdog must abandon the attempt with a "timeout" error.
        let row = lbm_row();
        let job = SimJob {
            wall_deadline_ms: 1,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        let err = job.execute().unwrap_err();
        assert_eq!(err.kind, "timeout");
        assert!(err.detail.contains("1 ms"));
    }

    #[test]
    fn transient_failures_are_retried_within_budget() {
        let row = lbm_row();
        // Fails twice, succeeds on the third attempt: a budget of two
        // retries rides out both failures.
        let job = SimJob {
            inject_transient_failures: 2,
            retry_transient: 2,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        assert!(job.execute().is_ok());
        // An insufficient budget surfaces the transient error.
        let starved = SimJob {
            inject_transient_failures: 2,
            retry_transient: 1,
            ..SimJob::plain(&row, CoreKind::OutOfOrder, Scale::Test)
        };
        let err = starved.execute().unwrap_err();
        assert_eq!(err.kind, "transient-io");
        assert!(err.is_transient());
    }

    #[test]
    fn resilience_fields_participate_in_cache_keys() {
        let row = lbm_row();
        let a = SimJob::new(&row, "a", RtConfig::plain(), Scale::Test);
        for job in [
            SimJob {
                attack: Some(rest_attacks::Attack::Heartbleed),
                ..a.clone()
            },
            SimJob {
                fault: Some(rest_faults::FaultKind::MetaBitClear.default_spec(7)),
                ..a.clone()
            },
            SimJob {
                accept_any_stop: true,
                ..a.clone()
            },
            SimJob {
                max_cycles: 1000,
                ..a.clone()
            },
            SimJob {
                inject_panic: true,
                ..a.clone()
            },
            SimJob {
                regress: Some(RegressProg {
                    name: "case".to_string(),
                    asm: Arc::new("main:\n    li a0, 0\n    ecall 5\n".to_string()),
                }),
                ..a.clone()
            },
        ] {
            assert_ne!(a.cache_key(), job.cache_key());
        }
        // Two corpus files with different assembly must not alias.
        let mk = |asm: &str| SimJob {
            regress: Some(RegressProg {
                name: "case".to_string(),
                asm: Arc::new(asm.to_string()),
            }),
            ..a.clone()
        };
        assert_ne!(
            mk("main:\n    li a0, 0\n    ecall 5\n").cache_key(),
            mk("main:\n    li a0, 1\n    ecall 5\n").cache_key()
        );
    }

    #[test]
    fn regress_jobs_run_parsed_assembly() {
        let prog = RegressProg {
            name: "exit-only".to_string(),
            asm: Arc::new("main:\n    li a0, 0\n    ecall 5\n".to_string()),
        };
        let job = SimJob::for_regress(prog, "plain", RtConfig::plain(), Scale::Test);
        let result = job.execute().expect("minimal program runs");
        assert!(matches!(result.stop, StopReason::Exit(0)));
        let broken = SimJob::for_regress(
            RegressProg {
                name: "broken".to_string(),
                asm: Arc::new("main:\n    not-an-instruction\n".to_string()),
            },
            "plain",
            RtConfig::plain(),
            Scale::Test,
        );
        assert_eq!(broken.execute().unwrap_err().kind, "regress-parse");
    }

    #[test]
    fn run_tasks_returns_results_in_index_order() {
        for workers in [1, 2, 8] {
            let engine = Engine::new(workers);
            let results = engine.run_tasks(37, |i| i * i);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(Engine::new(4).run_tasks(0, |i| i).is_empty());
    }

    #[test]
    fn attack_jobs_accept_violation_stops_as_results() {
        use rest_core::Mode;
        let job = SimJob::for_attack(
            rest_attacks::Attack::HeapOverflowWrite,
            "rest-secure-full",
            RtConfig::rest(Mode::Secure, true),
            Scale::Test,
        );
        let result = job.execute().expect("any stop is accepted");
        assert!(
            matches!(result.stop, StopReason::Violation(_)),
            "{:?}",
            result.stop
        );
    }
}
