//! Guest-throughput benchmarking: how many guest instructions per host
//! second the functional emulator sustains, on the decoded-uop-cache
//! fast path, the superblock-trace tier stacked on top of it, and the
//! re-decode-every-fetch reference path.
//!
//! The `perf` binary measures every benchmark row under a small set of
//! protection configurations, checks the three tiers retire identical
//! instruction/micro-op counts with identical stop reasons (a cheap
//! always-on differential gate), and writes the
//! `rest-throughput/v2` document to `results/BENCH_throughput.json`.
//!
//! Wall times are inherently nondeterministic, so — like the host
//! profile — this document follows the `BENCH_` naming convention and
//! is **never** part of an experiment's deterministic result JSON. It
//! is the only place the effective worker count is recorded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rest_cpu::{Emulator, ExecEngine, ExecTier, SimConfig, StopReason};
use rest_isa::DynInst;
use rest_obs::Json;
use rest_runtime::RtConfig;
use rest_workloads::{Scale, Workload, WorkloadParams};

use crate::{stack_for, FigureRow};

/// Schema identifier emitted in (and required of) throughput documents.
/// v2 added the superblock-trace tier columns (`trace_wall_s`,
/// `trace_ips`, `trace_speedup`).
pub const SCHEMA: &str = "rest-throughput/v2";

/// One (benchmark row × protection configuration) measurement to take.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Row display name.
    pub name: String,
    /// Workload kernel.
    pub workload: Workload,
    /// Input seed.
    pub seed: u64,
    /// Input-set scale.
    pub scale: Scale,
    /// Protection configuration (its label names the cell).
    pub rt: RtConfig,
}

/// The cross product rows × configs, in row-major order.
pub fn cells_for(rows: &[FigureRow], configs: &[RtConfig], scale: Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for row in rows {
        for rt in configs {
            cells.push(CellSpec {
                name: row.name.to_string(),
                workload: row.workload,
                seed: row.seed,
                scale,
                rt: rt.clone(),
            });
        }
    }
    cells
}

/// One measured cell: matching guest work on all three execution
/// tiers, with each tier's host wall time.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Row display name.
    pub name: String,
    /// Configuration label (`"plain"`, `"asan"`, …).
    pub config: String,
    /// Guest macro instructions retired (identical on every tier).
    pub insts: u64,
    /// Guest micro-ops emitted (identical on every tier).
    pub uops: u64,
    /// Host wall time of the fast-path run.
    pub fast_wall: Duration,
    /// Host wall time of the superblock-trace run.
    pub trace_wall: Duration,
    /// Host wall time of the reference-path run.
    pub reference_wall: Duration,
}

/// Timed repetitions per tier per cell; the fastest wall is recorded.
const MEASURE_REPS: usize = 3;

/// Runs `run` [`MEASURE_REPS`] times, returning the rep with the lowest
/// wall time (the work is deterministic, so reps differ only by host
/// noise).
fn best_of(mut run: impl FnMut() -> (Duration, Emulator)) -> (Duration, Emulator) {
    let (mut wall, mut em) = run();
    for _ in 1..MEASURE_REPS {
        let (w, e) = run();
        if w < wall {
            wall = w;
            em = e;
        }
    }
    (wall, em)
}

fn ips(insts: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        insts as f64 / secs
    } else {
        0.0
    }
}

fn ratio(slow: Duration, fast: Duration) -> f64 {
    let fast = fast.as_secs_f64();
    if fast > 0.0 {
        slow.as_secs_f64() / fast
    } else {
        0.0
    }
}

impl ThroughputCell {
    /// Guest instructions per host second on the fast path.
    pub fn fast_ips(&self) -> f64 {
        ips(self.insts, self.fast_wall)
    }

    /// Guest instructions per host second on the trace tier.
    pub fn trace_ips(&self) -> f64 {
        ips(self.insts, self.trace_wall)
    }

    /// Guest instructions per host second on the reference path.
    pub fn reference_ips(&self) -> f64 {
        ips(self.insts, self.reference_wall)
    }

    /// Fast-path speedup over the reference path (>1 = faster).
    pub fn speedup(&self) -> f64 {
        ratio(self.reference_wall, self.fast_wall)
    }

    /// Trace-tier speedup over the fast path (>1 = faster).
    pub fn trace_speedup(&self) -> f64 {
        ratio(self.fast_wall, self.trace_wall)
    }
}

/// Measures one cell three times: a fast-path functional run
/// (decoded-uop cache, counting sink), a superblock-trace run (the
/// same counting sink with hot loops fused into straight-line trace
/// ops), and a reference-path run (re-decode every fetch, micro-ops
/// materialised into a reused buffer — the pre-cache behaviour),
/// failing if any tier disagrees on any architectural count.
pub fn measure(spec: &CellSpec) -> Result<ThroughputCell, String> {
    let params = WorkloadParams {
        scale: spec.scale,
        stack_scheme: stack_for(&spec.rt),
        token_width: spec.rt.token_width,
        seed: spec.seed,
    };

    // Each tier runs `MEASURE_REPS` times and the fastest wall is kept:
    // the simulated work is deterministic, so the minimum is the
    // standard noise-robust estimator (scheduler preemptions and cache
    // pollution only ever add time, never subtract it).
    let (fast_wall, mut fast) = best_of(|| {
        let mut cfg = SimConfig::isca2018(spec.rt.clone());
        cfg.tier = ExecTier::Fast;
        let mut em = Emulator::new(spec.workload.build(&params), &cfg);
        let started = Instant::now();
        em.run_functional();
        (started.elapsed(), em)
    });
    let fast_stop = fast.take_stop().expect("run_functional stops");

    let (trace_wall, mut trace) = best_of(|| {
        let mut cfg = SimConfig::isca2018(spec.rt.clone());
        cfg.tier = ExecTier::Trace;
        let mut em = Emulator::new(spec.workload.build(&params), &cfg);
        let started = Instant::now();
        em.run_functional();
        (started.elapsed(), em)
    });
    let trace_stop = trace.take_stop().expect("run_functional stops");

    let (reference_wall, mut reference) = best_of(|| {
        let mut cfg = SimConfig::isca2018(spec.rt.clone());
        cfg.tier = ExecTier::Reference;
        let mut em = Emulator::new(spec.workload.build(&params), &cfg);
        let mut buf: Vec<DynInst> = Vec::new();
        let started = Instant::now();
        while em.step(&mut buf) {
            buf.clear();
        }
        (started.elapsed(), em)
    });
    let reference_stop = reference.take_stop().expect("step loop stops");

    let cell = format!("{} {}", spec.name, spec.rt.label());
    if fast_stop != reference_stop || fast_stop != trace_stop {
        return Err(format!(
            "{cell}: stop reasons diverge — fast {fast_stop:?}, trace {trace_stop:?}, \
             reference {reference_stop:?}"
        ));
    }
    if fast_stop != StopReason::Exit(0) {
        return Err(format!("{cell}: stopped with {fast_stop:?}"));
    }
    for (tier, other) in [("trace", &trace), ("reference", &reference)] {
        if fast.insts() != other.insts() || fast.uops() != other.uops() {
            return Err(format!(
                "{cell}: counts diverge — fast {}i/{}u, {tier} {}i/{}u",
                fast.insts(),
                fast.uops(),
                other.insts(),
                other.uops()
            ));
        }
    }
    Ok(ThroughputCell {
        name: spec.name.clone(),
        config: spec.rt.label(),
        insts: fast.insts(),
        uops: fast.uops(),
        fast_wall,
        trace_wall,
        reference_wall,
    })
}

/// Measures every cell on a pool of `workers` threads, preserving input
/// order and reporting per-cell progress on stderr. The first
/// divergence fails the whole sweep.
pub fn measure_all(cells: &[CellSpec], workers: usize) -> Result<Vec<ThroughputCell>, String> {
    let total = cells.len();
    let results: Vec<Mutex<Option<Result<ThroughputCell, String>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1).min(total.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let spec = &cells[i];
                let result = measure(spec);
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                match &result {
                    Ok(c) => eprintln!(
                        "[{n}/{total}] {} {}: trace {:.0} / fast {:.0} / ref {:.0} guest-IPS \
                         ({:.2}x trace-over-fast)",
                        c.name,
                        c.config,
                        c.trace_ips(),
                        c.fast_ips(),
                        c.reference_ips(),
                        c.trace_speedup()
                    ),
                    Err(e) => eprintln!("[{n}/{total}] FAILED: {e}"),
                }
                *results[i].lock().unwrap() = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every cell measured"))
        .collect()
}

/// The full throughput report: one document per `perf` invocation.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Scale name as serialized (`"test"` / `"ref"`).
    pub scale: String,
    /// Effective worker count after the `--jobs` clamp — recorded here
    /// (and only here) because experiment JSON must stay byte-identical
    /// at any parallelism level.
    pub effective_jobs: usize,
    /// Measured cells, in rows × configs order.
    pub cells: Vec<ThroughputCell>,
}

impl ThroughputReport {
    fn totals(&self) -> (u64, Duration, Duration, Duration) {
        let insts = self.cells.iter().map(|c| c.insts).sum();
        let fast = self.cells.iter().map(|c| c.fast_wall).sum();
        let trace = self.cells.iter().map(|c| c.trace_wall).sum();
        let reference = self.cells.iter().map(|c| c.reference_wall).sum();
        (insts, fast, trace, reference)
    }

    /// Sweep-wide fast-path guest-IPS (total instructions over total
    /// fast wall time).
    pub fn fast_ips(&self) -> f64 {
        let (insts, fast, _, _) = self.totals();
        ips(insts, fast)
    }

    /// Sweep-wide trace-tier guest-IPS.
    pub fn trace_ips(&self) -> f64 {
        let (insts, _, trace, _) = self.totals();
        ips(insts, trace)
    }

    /// Sweep-wide reference-path guest-IPS.
    pub fn reference_ips(&self) -> f64 {
        let (insts, _, _, reference) = self.totals();
        ips(insts, reference)
    }

    /// Sweep-wide speedup: total reference wall over total fast wall.
    pub fn speedup(&self) -> f64 {
        let (_, fast, _, reference) = self.totals();
        ratio(reference, fast)
    }

    /// Sweep-wide trace-over-fast speedup: total fast wall over total
    /// trace wall.
    pub fn trace_speedup(&self) -> f64 {
        let (_, fast, trace, _) = self.totals();
        ratio(fast, trace)
    }

    /// Serialises to the `rest-throughput/v2` document:
    ///
    /// ```text
    /// {"schema": "rest-throughput/v2", "scale": "test"|"ref",
    ///  "effective_jobs": N,
    ///  "cells": [{"benchmark": .., "config": .., "guest_insts": N,
    ///             "guest_uops": N, "fast_wall_s": .., "trace_wall_s": ..,
    ///             "reference_wall_s": .., "fast_ips": .., "trace_ips": ..,
    ///             "reference_ips": .., "speedup": .., "trace_speedup": ..}, ..],
    ///  "summary": {"cells": N, "guest_insts": N, "fast_ips": ..,
    ///              "trace_ips": .., "reference_ips": .., "speedup": ..,
    ///              "trace_speedup": ..}}
    /// ```
    pub fn to_json(&self) -> Json {
        let (insts, _, _, _) = self.totals();
        Json::obj(vec![
            ("schema", Json::from(SCHEMA)),
            ("scale", Json::from(self.scale.as_str())),
            ("effective_jobs", Json::UInt(self.effective_jobs as u64)),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("benchmark", Json::from(c.name.as_str())),
                                ("config", Json::from(c.config.as_str())),
                                ("guest_insts", Json::UInt(c.insts)),
                                ("guest_uops", Json::UInt(c.uops)),
                                ("fast_wall_s", Json::Num(c.fast_wall.as_secs_f64())),
                                ("trace_wall_s", Json::Num(c.trace_wall.as_secs_f64())),
                                (
                                    "reference_wall_s",
                                    Json::Num(c.reference_wall.as_secs_f64()),
                                ),
                                ("fast_ips", Json::Num(c.fast_ips())),
                                ("trace_ips", Json::Num(c.trace_ips())),
                                ("reference_ips", Json::Num(c.reference_ips())),
                                ("speedup", Json::Num(c.speedup())),
                                ("trace_speedup", Json::Num(c.trace_speedup())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("cells", Json::UInt(self.cells.len() as u64)),
                    ("guest_insts", Json::UInt(insts)),
                    ("fast_ips", Json::Num(self.fast_ips())),
                    ("trace_ips", Json::Num(self.trace_ips())),
                    ("reference_ips", Json::Num(self.reference_ips())),
                    ("speedup", Json::Num(self.speedup())),
                    ("trace_speedup", Json::Num(self.trace_speedup())),
                ]),
            ),
        ])
    }

    /// The document as pretty-printed text with a trailing newline.
    pub fn render(&self) -> String {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text
    }

    /// Prints the per-cell guest-IPS table and summary to stdout.
    pub fn print_text_table(&self) {
        println!(
            "{:<18}{:<20}{:>14}{:>14}{:>14}{:>14}{:>10}",
            "benchmark", "config", "guest insts", "trace IPS", "fast IPS", "ref IPS", "tr/fast"
        );
        for c in &self.cells {
            println!(
                "{:<18}{:<20}{:>14}{:>14.0}{:>14.0}{:>14.0}{:>9.2}x",
                c.name,
                c.config,
                c.insts,
                c.trace_ips(),
                c.fast_ips(),
                c.reference_ips(),
                c.trace_speedup()
            );
        }
        println!(
            "{:<18}{:<20}{:>14}{:>14.0}{:>14.0}{:>14.0}{:>9.2}x",
            "TOTAL",
            "",
            self.totals().0,
            self.trace_ips(),
            self.fast_ips(),
            self.reference_ips(),
            self.trace_speedup()
        );
    }

    /// Checks that a parsed document matches the `rest-throughput/v2`
    /// shape. Used by the report test and the CI throughput job.
    pub fn validate(doc: &Json) -> Result<(), String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unexpected schema {s:?}")),
            None => return Err("missing \"schema\"".to_string()),
        }
        doc.get("scale")
            .and_then(Json::as_str)
            .ok_or("missing \"scale\"")?;
        doc.get("effective_jobs")
            .and_then(Json::as_u64)
            .ok_or("missing \"effective_jobs\"")?;
        let cells = doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing \"cells\" array")?;
        for c in cells {
            for key in ["benchmark", "config"] {
                c.get(key)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("cell missing {key:?}"))?;
            }
            for key in ["guest_insts", "guest_uops"] {
                c.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("cell missing {key:?}"))?;
            }
            for key in [
                "fast_wall_s",
                "trace_wall_s",
                "reference_wall_s",
                "fast_ips",
                "trace_ips",
                "reference_ips",
                "speedup",
                "trace_speedup",
            ] {
                c.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell missing {key:?}"))?;
            }
        }
        let summary = doc.get("summary").ok_or("missing \"summary\"")?;
        for key in [
            "cells",
            "guest_insts",
            "fast_ips",
            "trace_ips",
            "reference_ips",
            "speedup",
            "trace_speedup",
        ] {
            summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("summary missing {key:?}"))?;
        }
        let count = summary.get("cells").and_then(Json::as_u64).unwrap_or(0);
        if count != cells.len() as u64 {
            return Err(format!(
                "summary.cells {} != cells.len() {}",
                count,
                cells.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str, insts: u64, fast_ms: u64, reference_ms: u64) -> ThroughputCell {
        ThroughputCell {
            name: name.to_string(),
            config: "plain".to_string(),
            insts,
            uops: insts + 7,
            fast_wall: Duration::from_millis(fast_ms),
            trace_wall: Duration::from_millis(fast_ms / 2),
            reference_wall: Duration::from_millis(reference_ms),
        }
    }

    #[test]
    fn report_document_validates() {
        let report = ThroughputReport {
            scale: "test".to_string(),
            effective_jobs: 2,
            cells: vec![cell("lbm", 1_000_000, 100, 300), cell("hmmer", 500_000, 50, 100)],
        };
        let doc = Json::parse(&report.render()).expect("valid JSON");
        ThroughputReport::validate(&doc).expect("schema-valid");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(doc.get("effective_jobs").unwrap().as_u64(), Some(2));
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("cells").unwrap().as_u64(), Some(2));
        assert_eq!(summary.get("guest_insts").unwrap().as_u64(), Some(1_500_000));
        // Totals: 150ms fast vs 400ms reference.
        let speedup = summary.get("speedup").unwrap().as_f64().unwrap();
        assert!((speedup - 400.0 / 150.0).abs() < 1e-9);
        // Trace totals: 75ms trace vs 150ms fast.
        let trace_speedup = summary.get("trace_speedup").unwrap().as_f64().unwrap();
        assert!((trace_speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        let missing = Json::obj(vec![("schema", Json::from(SCHEMA))]);
        assert!(ThroughputReport::validate(&missing).is_err());
        let wrong = Json::obj(vec![("schema", Json::from("other/v9"))]);
        assert!(ThroughputReport::validate(&wrong).is_err());
        // v1 documents (no trace columns) must be rejected by name.
        let v1 = Json::obj(vec![("schema", Json::from("rest-throughput/v1"))]);
        assert!(ThroughputReport::validate(&v1).is_err());
        assert!(ThroughputReport::validate(&Json::Null).is_err());
    }

    #[test]
    fn zero_wall_times_do_not_divide_by_zero() {
        let c = cell("lbm", 100, 0, 0);
        assert_eq!(c.fast_ips(), 0.0);
        assert_eq!(c.speedup(), 0.0);
        assert_eq!(c.trace_ips(), 0.0);
        assert_eq!(c.trace_speedup(), 0.0);
    }

    #[test]
    fn cells_for_is_row_major() {
        let rows = [FigureRow::of(Workload::Lbm), FigureRow::of(Workload::Hmmer)];
        let configs = [RtConfig::plain(), RtConfig::asan()];
        let cells = cells_for(&rows, &configs, Scale::Test);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].name, "lbm");
        assert_eq!(cells[1].name, "lbm");
        assert_eq!(cells[1].rt.label(), "asan");
        assert_eq!(cells[2].name, "hmmer");
    }

    #[test]
    fn measure_agrees_across_paths() {
        let spec = CellSpec {
            name: "lbm".to_string(),
            workload: Workload::Lbm,
            seed: 0xC0FFEE,
            scale: Scale::Test,
            rt: RtConfig::plain(),
        };
        let cell = measure(&spec).expect("paths agree");
        assert!(cell.insts > 0);
        assert!(cell.uops >= cell.insts);
        assert!(cell.speedup().is_finite());
        assert!(cell.trace_speedup().is_finite());
    }
}
