//! Campaign telemetry report: the engine's per-job [`JobSpan`] log
//! serialised as a `rest-telemetry/v1` document, plus a campaign-level
//! Perfetto trace with one track per worker.
//!
//! Wall times are host-dependent, so the document is written to a
//! `BENCH_*` path (default `results/BENCH_telemetry.json`) and is never
//! part of an experiment's deterministic result JSON. The schema and
//! its validator live in [`rest_obs::telemetry`]; this module only
//! assembles documents from engine state.

use rest_obs::{Json, PerfettoTrace};

use crate::engine::JobSpan;

/// One campaign's telemetry: every span the engine recorded, under the
/// experiment's name.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Campaign (experiment) name.
    pub campaign: String,
    /// Worker-pool size after the `--jobs` clamp.
    pub effective_jobs: usize,
    /// Per-job spans in submission order.
    pub spans: Vec<JobSpan>,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl TelemetryReport {
    /// Builds the report from drained engine spans.
    pub fn new(campaign: &str, effective_jobs: usize, spans: Vec<JobSpan>) -> TelemetryReport {
        TelemetryReport {
            campaign: campaign.to_string(),
            effective_jobs: effective_jobs.max(1),
            spans,
        }
    }

    /// Per-worker rollup: `(jobs, busy)` for each pool slot.
    fn worker_rollup(&self) -> Vec<(u64, std::time::Duration)> {
        let mut rollup = vec![(0u64, std::time::Duration::ZERO); self.effective_jobs];
        for s in &self.spans {
            // Cache hits cost no worker time; utilization counts only
            // freshly executed jobs.
            if s.cached {
                continue;
            }
            if let Some(w) = rollup.get_mut(s.worker) {
                w.0 += 1;
                w.1 += s.run;
            }
        }
        rollup
    }

    /// Serialises to the `rest-telemetry/v1` document (see
    /// [`rest_obs::telemetry`] for the shape and invariants).
    pub fn to_json(&self) -> Json {
        let workers = self
            .worker_rollup()
            .into_iter()
            .enumerate()
            .map(|(i, (jobs, busy))| {
                Json::obj(vec![
                    ("worker", Json::UInt(i as u64)),
                    ("jobs", Json::UInt(jobs)),
                    ("busy_ms", Json::Num(ms(busy))),
                ])
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("job", Json::from(s.label.as_str())),
                    ("worker", Json::UInt(s.worker as u64)),
                    ("start_ms", Json::Num(ms(s.start))),
                    ("queue_ms", Json::Num(ms(s.queue))),
                    ("run_ms", Json::Num(ms(s.run))),
                    ("attempts", Json::UInt(s.attempts as u64)),
                    ("cached", Json::Bool(s.cached)),
                    ("outcome", Json::from(s.outcome.as_str())),
                ])
            })
            .collect();
        let hits = self.spans.iter().filter(|s| s.cached).count() as u64;
        let misses = self.spans.len() as u64 - hits;
        let count = |kind: &str| {
            self.spans.iter().filter(|s| s.outcome == kind).count() as u64
        };
        let retries: u64 = self
            .spans
            .iter()
            .map(|s| u64::from(s.attempts.saturating_sub(1)))
            .sum();
        Json::obj(vec![
            ("schema", Json::from(rest_obs::telemetry::SCHEMA)),
            ("campaign", Json::from(self.campaign.as_str())),
            ("effective_jobs", Json::UInt(self.effective_jobs as u64)),
            ("workers", Json::Arr(workers)),
            ("spans", Json::Arr(spans)),
            (
                "cache",
                Json::obj(vec![("hits", Json::UInt(hits)), ("misses", Json::UInt(misses))]),
            ),
            (
                "resilience",
                Json::obj(vec![
                    ("panics", Json::UInt(count("panic"))),
                    ("timeouts", Json::UInt(count("timeout"))),
                    ("transient_retries", Json::UInt(retries)),
                ]),
            ),
        ])
    }

    /// The document as pretty-printed text with a trailing newline.
    pub fn render(&self) -> String {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text
    }

    /// The campaign timeline as a Chrome trace-event document: one
    /// track per worker, one slice per freshly executed job (campaign
    /// milliseconds mapped to the trace's µs field), and a per-worker
    /// `utilization` counter stepping 1/0 at each slice's edges.
    pub fn to_perfetto(&self) -> PerfettoTrace {
        let mut trace = PerfettoTrace::new(&format!("{} campaign", self.campaign));
        let tracks: Vec<_> = (0..self.effective_jobs)
            .map(|w| trace.track(&format!("worker {w}")))
            .collect();
        for s in &self.spans {
            if s.cached {
                continue;
            }
            let Some(&track) = tracks.get(s.worker) else {
                continue;
            };
            let ts = ms(s.start) as u64;
            let dur = (ms(s.run) as u64).max(1);
            trace.slice(
                track,
                &s.label,
                "job",
                ts,
                dur,
                vec![
                    ("attempts", Json::UInt(s.attempts as u64)),
                    ("outcome", Json::from(s.outcome.as_str())),
                    ("queue_ms", Json::Num(ms(s.queue))),
                ],
            );
            trace.counter(track, "utilization", ts, vec![("busy", Json::UInt(1))]);
            trace.counter(track, "utilization", ts + dur, vec![("busy", Json::UInt(0))]);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(label: &str, worker: usize, run_ms: u64, attempts: u32, cached: bool, outcome: &str) -> JobSpan {
        JobSpan {
            label: label.to_string(),
            worker,
            start: Duration::from_millis(5),
            queue: Duration::from_millis(1),
            run: Duration::from_millis(run_ms),
            attempts,
            cached,
            outcome: outcome.to_string(),
        }
    }

    #[test]
    fn report_document_validates_against_the_schema() {
        let report = TelemetryReport::new(
            "defense",
            2,
            vec![
                span("lbm plain", 0, 40, 1, false, "ok"),
                span("lbm asan", 1, 60, 3, false, "ok"),
                span("lbm plain", 0, 0, 0, true, "ok"),
                span("mcf asan", 1, 10, 1, false, "timeout"),
            ],
        );
        let doc = Json::parse(&report.render()).expect("valid JSON");
        rest_obs::telemetry::validate(&doc).expect("schema-valid");
        assert_eq!(doc.get("campaign").unwrap().as_str(), Some("defense"));
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(3));
        let res = doc.get("resilience").unwrap();
        assert_eq!(res.get("timeouts").unwrap().as_u64(), Some(1));
        assert_eq!(res.get("transient_retries").unwrap().as_u64(), Some(2));
        let workers = doc.get("workers").unwrap().as_arr().unwrap();
        assert_eq!(workers.len(), 2);
        // The cached replay of "lbm plain" does not count as worker
        // utilization — only the fresh run does.
        assert_eq!(workers[0].get("jobs").unwrap().as_u64(), Some(1));
        assert_eq!(workers[1].get("jobs").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn perfetto_trace_has_one_track_per_worker_and_skips_cache_hits() {
        let report = TelemetryReport::new(
            "fig7",
            3,
            vec![
                span("a plain", 0, 40, 1, false, "ok"),
                span("a plain", 0, 0, 0, true, "ok"),
                span("b asan", 2, 25, 1, false, "ok"),
            ],
        );
        let trace = report.to_perfetto();
        assert_eq!(trace.slice_count(), 2, "cache hits draw no slice");
        // Each fresh slice contributes a busy-edge pair.
        assert_eq!(trace.counter_count(), 4);
        let doc = trace.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let track_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(track_names, ["worker 0", "worker 1", "worker 2"]);
    }
}
