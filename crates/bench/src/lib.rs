//! Experiment harness for the REST reproduction.
//!
//! One binary per table/figure of the paper regenerates that result:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig3` | Figure 3 — ASan overhead breakdown by component |
//! | `fig7` | Figure 7 — runtime overheads of every configuration |
//! | `fig8` | Figure 8 — token-width sweep (16/32/64 B) |
//! | `table1` | Table I — cache/LSQ action matrix |
//! | `table3` | Table III — comparison with prior hardware schemes |
//! | `prose_stats` | §VI-B prose statistics (ROB/IQ/token traffic) |
//! | `ablations` | design-choice ablations called out in DESIGN.md |
//! | `perf` | guest-IPS throughput, fast vs reference decode path |
//! | `faults` | fault-injection detection-coverage campaign ([`faults`]) |
//! | `hotspots` | guest hotspot profile — per-block/function cycles and per-site checks ([`hotspots`]) |
//! | `elide` | static check-elision figure — proven-safe checks skipped, differential + attack-coverage gated ([`elide`]) |
//! | `fuzz` | adversarial-corpus tri-oracle campaign — generate-until-dry, auto-minimized regressions ([`fuzz`]) |
//! | `bench-diff` | throughput regression gate over two `BENCH_throughput.json` files ([`benchdiff`]) |
//!
//! All binaries are thin wrappers over a shared experiment engine:
//!
//! * [`cli`] — the common command line (`--test`, `--jobs N`,
//!   `--json PATH`, `--filter SUBSTRING`),
//! * [`engine`] — declarative [`engine::SimJob`] matrices run on a
//!   deterministic worker pool with a shared baseline cache; failing
//!   jobs surface as structured [`engine::JobError`]s instead of
//!   aborting the sweep,
//! * [`sink`] — every experiment writes its paper-formatted table to
//!   stdout **and** a machine-readable JSON document (schema documented
//!   in [`sink`]) to `results/<experiment>.json`.
//!
//! Progress and wall-clock timing go to stderr only, so both the text
//! table and the JSON are byte-identical at any `--jobs` level.
//!
//! Run the binaries in `--release` builds: the cycle-level simulator is
//! ~20× slower unoptimised. Example:
//!
//! ```text
//! cargo run --release -p rest-bench --bin fig7 -- --test --jobs 8
//! ```

#![forbid(unsafe_code)]

pub mod benchdiff;
pub mod checkpoint;
pub mod cli;
pub mod defense;
pub mod elide;
pub mod engine;
pub mod faults;
pub mod fuzz;
pub mod hotspots;
pub mod sink;
pub mod telemetry;
pub mod throughput;

use rest_core::{Mode, TokenWidth};
use rest_cpu::{SimConfig, SimResult, StopReason, System};
use rest_runtime::{RtConfig, Scheme, StackScheme};
use rest_workloads::{Scale, Workload, WorkloadParams};

/// One-line description of the simulated Table II machine, printed in
/// table headers and recorded in every JSON document.
pub const MACHINE: &str = "8-wide OoO, 192 ROB / 64 IQ / 32 LQ / 32 SQ, \
                           64kB L1I/L1D (2cy), 2MB L2 (20cy), DDR3-800 — Table II";

/// Stack-protection scheme matching a runtime configuration.
pub fn stack_for(rt: &RtConfig) -> StackScheme {
    if !rt.stack_protection {
        return StackScheme::None;
    }
    match rt.scheme {
        Scheme::Plain => StackScheme::None,
        Scheme::Asan => StackScheme::Asan,
        Scheme::Rest => StackScheme::Rest,
        // Heap-granule schemes carry no stack instrumentation.
        Scheme::Mte | Scheme::Pa => StackScheme::None,
    }
}

/// Builds and simulates `workload` under `rt` on the Table II machine.
///
/// Panics if the run does not exit cleanly — suitable for unit tests
/// and one-off probes; the harness binaries go through
/// [`engine::Engine`] instead, which reports failures as
/// [`engine::JobError`]s.
pub fn run(workload: Workload, scale: Scale, rt: RtConfig) -> SimResult {
    run_with(workload, scale, rt, false)
}

/// One row of a figure: a workload plus its display name and input seed
/// (gobmk appears once per sub-input, as in the paper's Figures 7/8).
#[derive(Debug, Clone, Copy)]
pub struct FigureRow {
    /// Display name for the row.
    pub name: &'static str,
    /// Workload kernel.
    pub workload: Workload,
    /// Input seed (gobmk sub-inputs vary the board position).
    pub seed: u64,
}

impl FigureRow {
    /// The standard row for `workload` (figure name, default seed).
    pub fn of(workload: Workload) -> FigureRow {
        FigureRow {
            name: workload.name(),
            workload,
            seed: 0xC0FFEE,
        }
    }
}

/// The benchmark rows of Figures 7/8: the 12 workloads with gobmk
/// expanded into its sub-inputs.
pub fn figure_rows() -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for w in Workload::ALL {
        if w == Workload::Gobmk {
            for &(name, seed) in rest_workloads::GOBMK_INPUTS.iter() {
                rows.push(FigureRow {
                    name,
                    workload: w,
                    seed,
                });
            }
        } else {
            rows.push(FigureRow::of(w));
        }
    }
    rows
}

/// As [`run`], with an explicit input seed.
pub fn run_seeded(workload: Workload, scale: Scale, rt: RtConfig, seed: u64) -> SimResult {
    let params = WorkloadParams {
        scale,
        stack_scheme: stack_for(&rt),
        token_width: rt.token_width,
        seed,
    };
    let program = workload.build(&params);
    let result = System::new(program, SimConfig::isca2018(rt)).run();
    assert_eq!(
        result.stop,
        StopReason::Exit(0),
        "{workload} (seed {seed:#x}) failed under {}",
        result.label
    );
    result
}

/// As [`run`], optionally on the narrow in-order core (Figure 3 uses an
/// in-order core in the paper).
pub fn run_with(workload: Workload, scale: Scale, rt: RtConfig, inorder: bool) -> SimResult {
    let params = WorkloadParams {
        scale,
        stack_scheme: stack_for(&rt),
        token_width: rt.token_width,
        seed: 0xC0FFEE,
    };
    let program = workload.build(&params);
    let cfg = if inorder {
        SimConfig::inorder(rt)
    } else {
        SimConfig::isca2018(rt)
    };
    let result = System::new(program, cfg).run();
    assert_eq!(
        result.stop,
        StopReason::Exit(0),
        "{workload} failed under {}: {:?}",
        result.label,
        result.stop
    );
    result
}

/// The seven hardened configurations of Figure 7, in figure order.
pub fn fig7_configs() -> Vec<RtConfig> {
    vec![
        RtConfig::asan(),
        RtConfig::rest(Mode::Debug, true),
        RtConfig::rest(Mode::Secure, true),
        RtConfig::rest_perfect(true),
        RtConfig::rest(Mode::Debug, false),
        RtConfig::rest(Mode::Secure, false),
        RtConfig::rest_perfect(false),
    ]
}

/// The token widths of Figure 8.
pub fn fig8_widths() -> [TokenWidth; 3] {
    [TokenWidth::B16, TokenWidth::B32, TokenWidth::B64]
}

/// Weighted arithmetic mean overhead (the paper's *WtdAriMean*,
/// footnote 5): total hardened runtime over total plain runtime, minus
/// one — i.e. each benchmark weighted by its plain runtime.
///
/// Degenerate inputs (empty slices, all-zero plain cycles) yield 0.0
/// rather than NaN, so partially failed sweeps still summarise.
pub fn wtd_ari_mean_overhead(plain_cycles: &[u64], hardened_cycles: &[u64]) -> f64 {
    assert_eq!(plain_cycles.len(), hardened_cycles.len());
    let p: f64 = plain_cycles.iter().map(|&c| c as f64).sum();
    let h: f64 = hardened_cycles.iter().map(|&c| c as f64).sum();
    if p == 0.0 {
        return 0.0;
    }
    (h / p - 1.0) * 100.0
}

/// Geometric mean overhead (the paper's *GeoMean*, footnote 6).
///
/// Pairs with a zero cycle count on either side carry no usable ratio
/// and are skipped; if nothing remains (including empty inputs) the
/// mean is 0.0 rather than NaN/∞.
pub fn geo_mean_overhead(plain_cycles: &[u64], hardened_cycles: &[u64]) -> f64 {
    assert_eq!(plain_cycles.len(), hardened_cycles.len());
    let ratios: Vec<f64> = plain_cycles
        .iter()
        .zip(hardened_cycles)
        .filter(|&(&p, &h)| p > 0 && h > 0)
        .map(|(&p, &h)| (h as f64 / p as f64).ln())
        .collect();
    if ratios.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = ratios.iter().sum();
    ((log_sum / ratios.len() as f64).exp() - 1.0) * 100.0
}

/// Writes the observability artefacts of one experiment run:
///
/// * the Perfetto/Chrome trace-event JSON of the first traced job, when
///   `--trace-out PATH` was given (load the file at
///   <https://ui.perfetto.dev>),
/// * the host wall-time profile (`profile`, plus the engine's per-job
///   timing log) to `--profile-out` (default
///   `results/BENCH_baseline.json`),
/// * the campaign telemetry document (`rest-telemetry/v1`: per-job
///   spans, worker utilization, cache + resilience counters) to
///   `--telemetry-out` (default `results/BENCH_telemetry.json`), and
///   the campaign-timeline Perfetto trace (one track per worker) when
///   `--campaign-trace-out PATH` was given.
///
/// All of it is reported on stderr only; nothing here touches stdout or
/// the experiment's deterministic JSON document.
pub fn finish_observability(
    cli: &cli::BenchCli,
    eng: &engine::Engine,
    matrix: &engine::MatrixResults,
    profile: rest_obs::HostProfile,
) {
    let pipeline_trace = matrix.first_trace().map(|t| t.to_perfetto().render());
    finish_observability_with(cli, eng, pipeline_trace, profile);
}

/// As [`finish_observability`], with the pipeline trace (if any)
/// already rendered — the entry point for binaries that run plain job
/// lists instead of a [`engine::MatrixResults`].
pub fn finish_observability_with(
    cli: &cli::BenchCli,
    eng: &engine::Engine,
    pipeline_trace: Option<String>,
    mut profile: rest_obs::HostProfile,
) {
    if let Some(path) = &cli.trace_out {
        match pipeline_trace {
            Some(text) => write_text_file(path, &text),
            None => eprintln!(
                "# --trace-out: the traced job failed or recorded nothing; no trace written"
            ),
        }
    }
    for timing in eng.take_timings() {
        profile.add_job(timing);
    }
    write_text_file(&cli.profile_path(), &profile.render());
    let report =
        telemetry::TelemetryReport::new(&cli.experiment, eng.workers(), eng.take_spans());
    write_text_file(&cli.telemetry_path(), &report.render());
    if let Some(path) = &cli.campaign_trace_out {
        write_text_file(path, &report.to_perfetto().render());
    }
}

/// Writes `text` to `path` (creating parent directories) and reports
/// the path on stderr; exits nonzero on I/O failure, like the result
/// sink.
pub fn write_text_file(path: &std::path::Path, text: &str) {
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, text)
    };
    match write() {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("# FAILED writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Prints a header identifying the simulated machine (the paper prints
/// Table II with every result; we do the lightweight equivalent).
pub fn print_machine_header(what: &str) {
    println!("# {what}");
    println!("# machine: {MACHINE}");
    println!();
}

/// Formats one row of an overhead table.
pub fn fmt_row(name: &str, cells: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{name:<12}");
    for c in cells {
        let _ = write!(s, "{c:>18.2}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_match_definitions() {
        let plain = [100, 300];
        let hardened = [150, 300];
        // Weighted: (450/400 - 1) = 12.5%.
        assert!((wtd_ari_mean_overhead(&plain, &hardened) - 12.5).abs() < 1e-9);
        // Geo: sqrt(1.5 * 1.0) - 1 ≈ 22.47%.
        assert!((geo_mean_overhead(&plain, &hardened) - 22.474487).abs() < 1e-3);
    }

    #[test]
    fn means_guard_degenerate_inputs() {
        // Empty sweeps summarise to zero, not NaN.
        assert_eq!(wtd_ari_mean_overhead(&[], &[]), 0.0);
        assert_eq!(geo_mean_overhead(&[], &[]), 0.0);
        // All plain cycles zero: no usable ratio anywhere.
        assert_eq!(wtd_ari_mean_overhead(&[0, 0], &[5, 7]), 0.0);
        assert_eq!(geo_mean_overhead(&[0, 0], &[5, 7]), 0.0);
        // A zero entry on either side is skipped, not propagated as ∞.
        assert!((geo_mean_overhead(&[0, 100], &[50, 150]) - 50.0).abs() < 1e-9);
        assert!((geo_mean_overhead(&[100, 100], &[0, 150]) - 50.0).abs() < 1e-9);
        assert!(geo_mean_overhead(&[0, 100], &[50, 150]).is_finite());
    }

    #[test]
    fn fig7_has_seven_configs_in_order() {
        let c = fig7_configs();
        assert_eq!(c.len(), 7);
        assert_eq!(c[0].label(), "asan");
        assert_eq!(c[2].label(), "rest-secure-full");
        assert_eq!(c[6].label(), "rest-perfecthw-heap");
    }

    #[test]
    fn harness_runs_one_workload() {
        let r = run(Workload::Lbm, Scale::Test, RtConfig::plain());
        assert!(r.cycles() > 0);
    }
}
