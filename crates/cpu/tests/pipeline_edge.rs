//! Edge-case tests for the out-of-order timing model: structural stalls,
//! the serialisation ablation, REST LSQ rules under adversarial op
//! orders, and front-end behaviour on large code footprints.

use rest_core::Mode;
use rest_cpu::{CoreConfig, SimConfig, StopReason, System};
use rest_isa::{EcallNum, ProgramBuilder, Reg};
use rest_runtime::RtConfig;

fn arm_disarm_loop(iters: i64) -> rest_isa::Program {
    let mut p = ProgramBuilder::new();
    p.li(Reg::S0, 0x30_0000);
    let lp = p.new_label();
    p.li(Reg::S1, iters);
    p.bind(lp);
    p.arm(Reg::S0);
    p.disarm(Reg::S0);
    p.addi(Reg::S1, Reg::S1, -1);
    p.bne(Reg::S1, Reg::ZERO, lp);
    p.halt();
    p.build()
}

#[test]
fn serializing_rest_ops_is_much_slower() {
    let fast = System::new(
        arm_disarm_loop(500),
        SimConfig::isca2018(RtConfig::rest(Mode::Secure, true)),
    )
    .run();
    let mut cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, true));
    cfg.core.serialize_rest_ops = true;
    let slow = System::new(arm_disarm_loop(500), cfg).run();
    assert_eq!(fast.stop, StopReason::Halted);
    assert_eq!(slow.stop, StopReason::Halted);
    assert!(
        slow.cycles() as f64 > fast.cycles() as f64 * 1.5,
        "serialisation must hurt: {} vs {}",
        slow.cycles(),
        fast.cycles()
    );
}

#[test]
fn store_to_inflight_arm_is_flagged_by_the_lsq() {
    // A store racing an in-flight arm to the same line triggers the
    // Table I store rule. (Architecturally the emulator reports the
    // violation; the LSQ stat confirms the hardware path fired too.)
    let mut p = ProgramBuilder::new();
    p.li(Reg::S0, 0x30_0000);
    p.arm(Reg::S0);
    p.li(Reg::T0, 1);
    p.sd(Reg::T0, Reg::S0, 8);
    p.halt();
    let r = System::new(p.build(), SimConfig::isca2018(RtConfig::rest(Mode::Secure, true))).run();
    assert!(matches!(r.stop, StopReason::Violation(_)));
    assert!(r.core.lsq_rest_exceptions + r.mem.rest_exceptions >= 1);
}

#[test]
fn large_code_footprint_stalls_the_front_end() {
    // A straight-line program much bigger than a few I-cache lines:
    // fetch must record I-cache stalls on cold lines.
    let mut p = ProgramBuilder::new();
    for i in 0..4000 {
        p.addi(Reg::T0, Reg::T0, i % 7);
    }
    p.halt();
    let r = System::new(p.build(), SimConfig::isca2018(RtConfig::plain())).run();
    assert!(r.core.fetch_stall_cycles > 0);
    assert_eq!(r.stop, StopReason::Halted);
}

#[test]
fn inorder_core_is_slower_than_ooo() {
    let prog = || {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::S1, 2000);
        p.bind(lp);
        // Independent work an OoO core can overlap.
        p.ld(Reg::T0, Reg::GP, 0);
        p.addi(Reg::T1, Reg::T1, 1);
        p.mul(Reg::T2, Reg::T1, Reg::T1);
        p.addi(Reg::S1, Reg::S1, -1);
        p.bne(Reg::S1, Reg::ZERO, lp);
        p.halt();
        p.build()
    };
    let ooo = System::new(prog(), SimConfig::isca2018(RtConfig::plain())).run();
    let ino = System::new(prog(), SimConfig::inorder(RtConfig::plain())).run();
    assert!(
        ino.cycles() as f64 > ooo.cycles() as f64 * 2.0,
        "in-order {} vs OoO {}",
        ino.cycles(),
        ooo.cycles()
    );
}

#[test]
fn sq_pressure_shows_up_in_lsq_stalls() {
    // A long burst of stores to distinct lines (all misses in debug
    // mode, where drains gate SQ reuse) must hit the SQ-occupancy limit.
    let mut p = ProgramBuilder::new();
    let lp = p.new_label();
    p.li(Reg::S0, 0x40_0000);
    p.li(Reg::S1, 300);
    p.bind(lp);
    p.sd(Reg::S1, Reg::S0, 0);
    p.addi(Reg::S0, Reg::S0, 64);
    p.addi(Reg::S1, Reg::S1, -1);
    p.bne(Reg::S1, Reg::ZERO, lp);
    p.halt();
    let r = System::new(
        p.build(),
        SimConfig::isca2018(RtConfig::rest(Mode::Debug, false)),
    )
    .run();
    assert!(r.core.lsq_stall_cycles > 0, "SQ pressure must register");
}

#[test]
fn call_ret_chains_predict_well() {
    // Nested call/ret: the RAS should keep mispredictions low.
    let mut p = ProgramBuilder::new();
    let f = p.new_label();
    let lp = p.new_label();
    p.li(Reg::S1, 500);
    p.bind(lp);
    p.call(f);
    p.addi(Reg::S1, Reg::S1, -1);
    p.bne(Reg::S1, Reg::ZERO, lp);
    p.halt();
    p.bind(f);
    p.addi(Reg::T0, Reg::T0, 1);
    p.ret();
    let r = System::new(p.build(), SimConfig::isca2018(RtConfig::plain())).run();
    let rate = r.core.branch_mispredicts as f64 / r.core.branch_lookups.max(1) as f64;
    assert!(rate < 0.05, "call/ret mispredict rate {rate:.3}");
}

#[test]
fn heap_runtime_traffic_counts_toward_components() {
    let mut p = ProgramBuilder::new();
    p.li(Reg::A0, 256);
    p.ecall(EcallNum::Malloc);
    p.ecall(EcallNum::Free);
    p.halt();
    let r = System::new(
        p.build(),
        SimConfig::isca2018(RtConfig::rest(Mode::Secure, false)),
    )
    .run();
    // Component 1 (allocator) uops must be attributed.
    let alloc_uops = r.core.uops_by_component[1];
    assert!(alloc_uops > 10, "allocator uops: {alloc_uops}");
    // And they are a strict subset of all uops.
    assert!(alloc_uops < r.core.uops);
}

#[test]
fn narrow_core_config_is_respected() {
    let mut cfg = SimConfig::isca2018(RtConfig::plain());
    cfg.core = CoreConfig {
        fetch_width: 1,
        issue_width: 1,
        commit_width: 1,
        ..CoreConfig::isca2018()
    };
    let mut p = ProgramBuilder::new();
    for _ in 0..1000 {
        p.nop();
    }
    p.halt();
    let r = System::new(p.build(), cfg).run();
    // 1-wide commit: at least one cycle per uop.
    assert!(r.cycles() >= r.core.uops);
}
