use rest_core::Mode;
use rest_isa::Program;
use rest_mem::Hierarchy;
use rest_obs::{AuditEntry, IntervalSample, TimeSeries, FAULT_INJECTOR};

use crate::config::SimConfig;
use crate::emulator::{Emulator, StopReason};
use crate::exec::ExecEngine;
use crate::pipeline::Pipeline;
use crate::profile::{GuestProfile, PcCounters};
use crate::stats::{stats_map_parts, SimResult};

/// A complete simulated machine: functional emulator + timing pipeline.
///
/// # Example
///
/// ```
/// use rest_cpu::{SimConfig, System};
/// use rest_isa::{ProgramBuilder, Reg};
/// use rest_runtime::RtConfig;
///
/// let mut p = ProgramBuilder::new();
/// p.li(Reg::A0, 2);
/// p.addi(Reg::A0, Reg::A0, 40);
/// p.halt();
/// let result = System::new(p.build(), SimConfig::isca2018(RtConfig::plain())).run();
/// assert!(result.cycles() > 0);
/// ```
#[derive(Debug)]
pub struct System {
    emulator: Emulator,
    pipeline: Pipeline,
    label: String,
    mode: Mode,
    sample_interval: u64,
    max_cycles: u64,
    has_fault: bool,
    /// Per-PC (cycles, uops) accumulators when guest profiling is on.
    profile: Option<(PcCounters, PcCounters)>,
}

impl System {
    /// Builds the machine for `program` under `cfg`.
    pub fn new(program: Program, cfg: SimConfig) -> System {
        let profile = cfg
            .profile_guest
            .then(|| (PcCounters::new(&program), PcCounters::new(&program)));
        let emulator = Emulator::new(program, &cfg);
        let mut hier = Hierarchy::new(cfg.mem.clone());
        if let Some(f) = emulator.fault_handle() {
            // The hierarchy shares the emulator's injection state: the
            // hardware sites trigger there, the architectural
            // consequences are applied here.
            hier.set_fault(f.clone());
        }
        let has_fault = emulator.fault_handle().is_some();
        let mut pipeline = Pipeline::new(cfg.core.clone(), hier, cfg.rt.mode);
        pipeline.enable_trace(cfg.trace_uops);
        System {
            emulator,
            pipeline,
            label: cfg.rt.label(),
            mode: cfg.rt.mode,
            sample_interval: cfg.sample_interval,
            max_cycles: cfg.max_cycles,
            has_fault,
            profile,
        }
    }

    /// Snapshots the running system's full counter map and occupancy
    /// gauges into `series`.
    fn take_sample(&mut self, series: &mut TimeSeries) {
        let insts = self.emulator.insts();
        let cycles = self.pipeline.current_cycles();
        let mut core = *self.pipeline.stats();
        core.cycles = cycles;
        core.insts = insts;
        let counters = stats_map_parts(
            &core,
            self.pipeline.mem_stats(),
            self.emulator.runtime().allocator().stats(),
        );
        let gauges = self.pipeline.gauges();
        series.record(IntervalSample {
            insts,
            cycles,
            counters,
            gauges,
        });
    }

    /// Runs the program to completion (halt, exit, violation, or uop
    /// budget) and returns the full result.
    pub fn run(mut self) -> SimResult {
        let mut series = if self.sample_interval > 0 {
            Some(TimeSeries::new(self.sample_interval))
        } else {
            None
        };
        let mut batch = Vec::with_capacity(64);
        loop {
            batch.clear();
            let step_pc = self.emulator.pc();
            if !self.emulator.step(&mut batch) {
                break;
            }
            // The emulator runs one macro instruction ahead; replay its
            // micro-ops through the timing model. Lines modified by this
            // instruction's arm/disarm effects carry pre-update
            // snapshots (see GuestMemory::snapshot_line_pre_image), so
            // the token detector observes exactly what a hardware fill
            // would.
            self.pipeline.note_inst(self.emulator.insts());
            let commit_before = self.pipeline.current_cycles();
            for d in &batch {
                self.pipeline
                    .process(d, &self.emulator.mem, self.emulator.token());
            }
            if let Some((cycles, uops)) = self.profile.as_mut() {
                // Commit-frontier deltas telescope, so per-PC cycle
                // totals sum exactly to the final cycle count. Runtime
                // micro-ops spliced by an `ecall` land in this
                // instruction's batch and are charged to its PC.
                cycles.add(step_pc, self.pipeline.current_cycles() - commit_before);
                uops.add(step_pc, batch.len() as u64);
            }
            // The timing model has consumed this instruction's micro-ops;
            // its pre-update line snapshots are no longer needed.
            self.emulator.mem.clear_pre_images();
            if self.has_fault {
                // Deferred hardware fault effects (eviction-time
                // metadata loss) become architectural between
                // instructions.
                self.emulator.apply_fault_effects();
            }
            if self.max_cycles > 0 && self.pipeline.current_cycles() >= self.max_cycles {
                self.emulator.force_stop(StopReason::CycleLimit);
                break;
            }
            if let Some(series) = series.as_mut() {
                // `insts` advances by exactly one per step, so every
                // interval boundary is hit exactly once.
                if self.emulator.insts().is_multiple_of(self.sample_interval) {
                    self.take_sample(series);
                }
            }
        }
        let core = self.pipeline.finish();
        let mut core = core;
        core.insts = self.emulator.insts();
        core.elided_checks = self.emulator.elided_checks();
        let trace = self.pipeline.take_trace();
        // Hardware detections recorded by the pipeline, then the
        // architectural violation (if the run stopped on one) with its
        // component provenance.
        let mut audit = self.pipeline.take_audit();
        // Fault-injection provenance: every applied fault and its
        // downstream consequences, before the architectural violation
        // (which always stays last).
        let fault_report = self.emulator.fault_handle().map(|f| {
            for rec in f.take_records() {
                audit.record(AuditEntry {
                    detector: FAULT_INJECTOR,
                    kind: rec.site,
                    pc: 0,
                    addr: rec.addr,
                    size: 0,
                    mode: self.mode.name(),
                    component: "hardware",
                    precise: true,
                    insts: rec.event,
                });
            }
            f.report()
        });
        let stop = self.emulator.take_stop().unwrap_or(StopReason::Halted);
        // Delayed detections (MTE async/asymm TFSR semantics): the run
        // completed architecturally, but the backend latched a fault that
        // is reported at the next kernel entry — here, program stop. The
        // stop reason is untouched (the access went through; an async
        // leak still leaks), only the audit log records the detection.
        if let Some(v) = self.emulator.take_deferred() {
            let pc = violation_pc(&v);
            audit.record(v.audit_entry(
                self.mode.name(),
                self.emulator.component_at(pc).name(),
                core.insts,
            ));
        }
        if let StopReason::Violation(v) = &stop {
            let pc = violation_pc(v);
            audit.record(v.audit_entry(
                self.mode.name(),
                self.emulator.component_at(pc).name(),
                core.insts,
            ));
        }
        let profile = self.profile.take().map(|(cycles, uops)| {
            let checks = self.emulator.take_pc_checks().unwrap_or_default();
            let (sites, elided_sites) = self
                .emulator
                .take_sites()
                .map(|s| {
                    let elided = s.elided_rows();
                    (s.into_rows(), elided)
                })
                .unwrap_or_default();
            GuestProfile {
                cycles,
                uops,
                checks: checks.checks,
                check_uops: checks.check_uops,
                backend_checks: self.emulator.backend().check_count(),
                sites,
                elided_sites,
            }
        });
        SimResult {
            trace,
            core,
            mem: *self.pipeline.mem_stats(),
            alloc: *self.emulator.runtime().allocator().stats(),
            stop,
            output: self.emulator.runtime().output().to_vec(),
            label: self.label,
            series,
            audit,
            fault: fault_report,
            profile,
        }
    }
}

/// PC of the faulting access for any violation flavour.
fn violation_pc(v: &rest_runtime::Violation) -> u64 {
    match v {
        rest_runtime::Violation::Rest(e) => e.pc,
        rest_runtime::Violation::Asan(r) => r.pc,
        rest_runtime::Violation::Tag(t) => t.pc,
        rest_runtime::Violation::Pac(p) => p.pc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_core::Mode;
    use rest_isa::{EcallNum, ProgramBuilder, Reg};
    use rest_runtime::{RtConfig, Violation};

    fn sum_loop_program(n: i64) -> Program {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 0);
        p.li(Reg::T0, n);
        p.bind(lp);
        p.add(Reg::A0, Reg::A0, Reg::T0);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, lp);
        p.halt();
        p.build()
    }

    /// A guest that never terminates: `t0` is pinned to 1, so the
    /// backward branch is always taken.
    fn infinite_loop_program() -> Program {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::T0, 1);
        p.bind(lp);
        p.bne(Reg::T0, Reg::ZERO, lp);
        p.build()
    }

    #[test]
    fn cycle_budget_stops_a_hung_guest_on_the_timing_path() {
        let mut cfg = SimConfig::isca2018(RtConfig::plain());
        cfg.max_cycles = 10_000;
        let r = System::new(infinite_loop_program(), cfg).run();
        assert_eq!(r.stop, StopReason::CycleLimit);
        // The budget is conservative: the run stops when *either* the
        // pipeline clock or the committed-uop proxy reaches it (a
        // high-IPC guest trips the uop proxy first), so the cycle count
        // never meaningfully overshoots the budget.
        assert!(r.cycles() > 0);
        assert!(r.cycles() < 11_000, "overshot the budget: {}", r.cycles());
    }

    #[test]
    fn cycle_budget_stops_a_hung_guest_on_the_functional_path() {
        let mut cfg = SimConfig::isca2018(RtConfig::plain());
        cfg.max_cycles = 10_000;
        let mut emu = Emulator::new(infinite_loop_program(), &cfg);
        assert_eq!(*emu.run_functional(), StopReason::CycleLimit);
    }

    #[test]
    fn zero_cycle_budget_means_no_budget() {
        // max_cycles = 0 (the default) must not stop anything early:
        // existing experiment bytes depend on it.
        let cfg = SimConfig::isca2018(RtConfig::plain());
        assert_eq!(cfg.max_cycles, 0);
        let r = System::new(sum_loop_program(10_000), cfg).run();
        assert_eq!(r.stop, StopReason::Halted);
    }

    #[test]
    fn runs_to_halt_with_sane_ipc() {
        let r = System::new(sum_loop_program(10_000), SimConfig::isca2018(RtConfig::plain())).run();
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(r.core.insts, 3 + 3 * 10_000);
        assert!(r.core.uipc() > 1.0, "tight loop should exceed 1 uipc, got {}", r.core.uipc());
        assert!(r.core.uipc() < 8.0);
    }

    #[test]
    fn heap_workload_runs_under_all_schemes_with_expected_ordering() {
        // malloc/free churn: plain must be fastest, ASan slowest of the
        // three schemes, REST secure in between but close to plain.
        let prog = || {
            let mut p = ProgramBuilder::new();
            let lp = p.new_label();
            p.li(Reg::S1, 200); // iterations
            p.bind(lp);
            p.li(Reg::A0, 256);
            p.ecall(EcallNum::Malloc);
            p.mv(Reg::S0, Reg::A0);
            // Work over the allocation: this is where ASan's per-access
            // checks bite while REST's hardware checks are free.
            let inner = p.new_label();
            p.li(Reg::T0, 0);
            p.bind(inner);
            p.add(Reg::T1, Reg::S0, Reg::T0);
            p.sd(Reg::T0, Reg::T1, 0);
            p.ld(Reg::T2, Reg::T1, 0);
            p.addi(Reg::T0, Reg::T0, 8);
            p.slti(Reg::T3, Reg::T0, 256);
            p.bne(Reg::T3, Reg::ZERO, inner);
            p.mv(Reg::A0, Reg::S0);
            p.ecall(EcallNum::Free);
            p.addi(Reg::S1, Reg::S1, -1);
            p.bne(Reg::S1, Reg::ZERO, lp);
            p.halt();
            p.build()
        };
        let plain = System::new(prog(), SimConfig::isca2018(RtConfig::plain())).run();
        let asan = System::new(prog(), SimConfig::isca2018(RtConfig::asan())).run();
        let rest = System::new(prog(), SimConfig::isca2018(RtConfig::rest(Mode::Secure, false))).run();
        assert_eq!(plain.stop, StopReason::Halted);
        assert_eq!(asan.stop, StopReason::Halted);
        assert_eq!(rest.stop, StopReason::Halted);
        assert!(asan.cycles() > plain.cycles(), "asan {} plain {}", asan.cycles(), plain.cycles());
        assert!(rest.cycles() > plain.cycles(), "rest {} plain {}", rest.cycles(), plain.cycles());
        assert!(
            rest.cycles() < asan.cycles(),
            "REST secure must beat ASan: rest {} asan {}",
            rest.cycles(),
            asan.cycles()
        );
    }

    #[test]
    fn violation_stops_the_run_and_is_reported() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.ld(Reg::A1, Reg::A0, 64); // first byte past the buffer: redzone
        p.halt();
        let r = System::new(p.build(), SimConfig::isca2018(RtConfig::rest(Mode::Secure, false))).run();
        assert!(matches!(r.stop, StopReason::Violation(Violation::Rest(_))), "{:?}", r.stop);
        // The hardware detects it too — at the cache (token bit) or in
        // the LSQ (the allocator's arm may still be in flight, in which
        // case the forwarding rule fires instead).
        assert!(
            r.mem.rest_exceptions + r.core.lsq_rest_exceptions >= 1,
            "hardware detector must fire too"
        );
    }

    #[test]
    fn debug_mode_is_slower_than_secure() {
        let prog = || {
            let mut p = ProgramBuilder::new();
            let lp = p.new_label();
            p.li(Reg::S1, 100);
            p.bind(lp);
            p.li(Reg::A0, 512);
            p.ecall(EcallNum::Malloc);
            p.mv(Reg::A0, Reg::A0);
            p.ecall(EcallNum::Free);
            p.addi(Reg::S1, Reg::S1, -1);
            p.bne(Reg::S1, Reg::ZERO, lp);
            p.halt();
            p.build()
        };
        let secure = System::new(prog(), SimConfig::isca2018(RtConfig::rest(Mode::Secure, false))).run();
        let debug = System::new(prog(), SimConfig::isca2018(RtConfig::rest(Mode::Debug, false))).run();
        assert!(
            debug.cycles() > secure.cycles(),
            "debug {} vs secure {}",
            debug.cycles(),
            secure.cycles()
        );
        assert!(debug.core.rob_blocked_store_cycles > secure.core.rob_blocked_store_cycles);
    }

    #[test]
    fn perfect_hw_tracks_secure_closely() {
        let prog = || {
            let mut p = ProgramBuilder::new();
            let lp = p.new_label();
            p.li(Reg::S1, 100);
            p.bind(lp);
            p.li(Reg::A0, 256);
            p.ecall(EcallNum::Malloc);
            p.ecall(EcallNum::Free);
            p.addi(Reg::S1, Reg::S1, -1);
            p.bne(Reg::S1, Reg::ZERO, lp);
            p.halt();
            p.build()
        };
        let secure = System::new(prog(), SimConfig::isca2018(RtConfig::rest(Mode::Secure, false))).run();
        let perfect = System::new(prog(), SimConfig::isca2018(RtConfig::rest_perfect(false))).run();
        let ratio = secure.cycles() as f64 / perfect.cycles() as f64;
        assert!(
            (0.9..1.25).contains(&ratio),
            "REST hardware cost must be near zero: secure {} perfect {}",
            secure.cycles(),
            perfect.cycles()
        );
    }

    #[test]
    fn cpi_stack_sums_exactly_to_cycles() {
        for rt in [
            RtConfig::plain(),
            RtConfig::asan(),
            RtConfig::rest(Mode::Secure, false),
            RtConfig::rest(Mode::Debug, false),
        ] {
            let r = System::new(sum_loop_program(2_000), SimConfig::isca2018(rt)).run();
            assert_eq!(
                r.core.cpi.total(),
                r.core.cycles,
                "CPI stack must sum exactly to cycles for {}",
                r.label
            );
        }
    }

    #[test]
    fn interval_sampler_fires_on_exact_boundaries() {
        let mut cfg = SimConfig::isca2018(RtConfig::plain());
        cfg.sample_interval = 100;
        let r = System::new(sum_loop_program(1_000), cfg).run();
        let series = r.series.as_ref().expect("sampling was enabled");
        // 3 + 3*1000 = 3003 instructions → 30 samples at 100, 200, … 3000.
        assert_eq!(series.samples().len(), 30);
        for (i, s) in series.samples().iter().enumerate() {
            assert_eq!(s.insts, 100 * (i as u64 + 1));
            assert!(s.cycles > 0);
            assert_eq!(s.counters.len(), crate::stats::stats_map_parts(
                &r.core, &r.mem, &r.alloc
            ).len());
        }
        // Cycles and instruction counts are monotone over the run.
        for w in series.samples().windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
            assert!(w[0].insts < w[1].insts);
        }
        assert_eq!(series.dropped(), 0);
    }

    #[test]
    fn sampling_off_yields_no_series() {
        let r = System::new(sum_loop_program(100), SimConfig::isca2018(RtConfig::plain())).run();
        assert!(r.series.is_none());
        assert!(r.audit.is_empty());
    }

    #[test]
    fn violation_lands_in_audit_log_with_provenance() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.ld(Reg::A1, Reg::A0, 64); // redzone
        p.halt();
        let r = System::new(p.build(), SimConfig::isca2018(RtConfig::rest(Mode::Secure, false))).run();
        assert!(!r.audit.is_empty());
        // The last entry is the architectural violation; before it come
        // any hardware (cache / LSQ) detections of the same event.
        let arch = r.audit.entries().last().unwrap();
        assert_eq!(arch.detector, "rest");
        assert_eq!(arch.mode, "secure");
        assert!(arch.pc != 0);
        assert!(r.audit.total() as usize >= r.audit.entries().len());
        let text = r.audit.render();
        assert!(text.contains("rest"), "{text}");
    }

    #[test]
    fn traced_uops_have_monotone_stage_timestamps() {
        let mut cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, false));
        cfg.trace_uops = 64;
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::S1, 8);
        p.bind(lp);
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.sd(Reg::S1, Reg::A0, 0);
        p.ld(Reg::T0, Reg::A0, 0);
        p.ecall(EcallNum::Free);
        p.addi(Reg::S1, Reg::S1, -1);
        p.bne(Reg::S1, Reg::ZERO, lp);
        p.halt();
        let r = System::new(p.build(), cfg).run();
        let trace = r.trace.as_ref().expect("tracing was enabled");
        assert_eq!(trace.entries().len(), 64);
        for e in trace.entries() {
            assert!(e.fetch <= e.dispatch, "{e:?}");
            assert!(e.dispatch <= e.issue, "{e:?}");
            assert!(e.issue <= e.complete, "{e:?}");
            assert!(e.complete <= e.commit, "{e:?}");
        }
        let doc = trace.to_perfetto();
        assert_eq!(doc.slice_count(), 64 * 5);
        rest_obs::Json::parse(&doc.render()).expect("perfetto export must parse");
    }

    #[test]
    fn deferred_mte_fault_from_direct_access_carries_the_access_pc() {
        use rest_core::MteMode;
        // malloc, free, then store through the dangling pointer: under
        // MTE-async the mismatch latches TFSR-style and surfaces in the
        // audit log at program stop — but the entry must carry the PC of
        // the *triggering store*, not the stop PC.
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S0, Reg::A0);
        p.ecall(EcallNum::Free);
        let store_idx = p.len() as u64;
        p.sd(Reg::T0, Reg::S0, 0);
        p.halt();
        let store_pc = Program::CODE_BASE + store_idx * rest_isa::PC_STEP;
        let r = System::new(p.build(), SimConfig::isca2018(RtConfig::mte(MteMode::Async))).run();
        assert_eq!(r.stop, StopReason::Halted, "async latch must not stop the run");
        let e = r.audit.entries().last().expect("deferred fault in audit log");
        assert_eq!(e.detector, "mte-tagger");
        assert_eq!(e.pc, store_pc, "must be the store PC, not the stop PC");
        assert_eq!(e.component, "app");
    }

    #[test]
    fn deferred_mte_fault_from_an_ecall_carries_the_calling_guest_pc() {
        use rest_core::MteMode;
        // Same latch, but the mismatching access happens *inside* the
        // runtime (memcpy reading a freed source). The audit entry must
        // carry the guest PC of the memcpy ecall — the regression was
        // runtime checks reporting a fixed runtime pseudo-PC.
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S0, Reg::A0);
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S1, Reg::A0);
        p.mv(Reg::A0, Reg::S0);
        p.ecall(EcallNum::Free);
        p.mv(Reg::A0, Reg::S1); // dst: live
        p.mv(Reg::A1, Reg::S0); // src: dangling
        p.li(Reg::A2, 16);
        p.ecall(EcallNum::Memcpy);
        let ecall_idx = p.len() as u64 - 1;
        p.halt();
        let ecall_pc = Program::CODE_BASE + ecall_idx * rest_isa::PC_STEP;
        let r = System::new(p.build(), SimConfig::isca2018(RtConfig::mte(MteMode::Async))).run();
        assert_eq!(r.stop, StopReason::Halted);
        let e = r.audit.entries().last().expect("deferred fault in audit log");
        assert_eq!(e.detector, "mte-tagger");
        assert_eq!(e.pc, ecall_pc, "must be the ecall's guest PC, not a runtime pseudo-PC");
    }

    fn profiled_heap_workload(rt: RtConfig) -> SimResult {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::S1, 50);
        p.bind(lp);
        p.li(Reg::A0, 128);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S0, Reg::A0);
        let inner = p.new_label();
        p.li(Reg::T0, 0);
        p.bind(inner);
        p.add(Reg::T1, Reg::S0, Reg::T0);
        p.sd(Reg::T0, Reg::T1, 0);
        p.ld(Reg::T2, Reg::T1, 0);
        p.addi(Reg::T0, Reg::T0, 8);
        p.slti(Reg::T3, Reg::T0, 128);
        p.bne(Reg::T3, Reg::ZERO, inner);
        p.mv(Reg::A0, Reg::S0);
        p.ecall(EcallNum::Free);
        p.addi(Reg::S1, Reg::S1, -1);
        p.bne(Reg::S1, Reg::ZERO, lp);
        p.halt();
        let mut cfg = SimConfig::isca2018(rt);
        cfg.profile_guest = true;
        System::new(p.build(), cfg).run()
    }

    #[test]
    fn guest_profile_cycles_and_uops_sum_exactly_to_totals() {
        for rt in [
            RtConfig::plain(),
            RtConfig::asan(),
            RtConfig::rest(Mode::Secure, true),
        ] {
            let r = profiled_heap_workload(rt);
            assert_eq!(r.stop, StopReason::Halted);
            let prof = r.profile.as_ref().expect("profiling was enabled");
            assert_eq!(
                prof.cycles.total(),
                r.core.cycles,
                "per-PC cycles must sum exactly to core.cycles for {}",
                r.label
            );
            assert_eq!(
                prof.uops.total(),
                r.core.uops,
                "per-PC uops must sum exactly to core.uops for {}",
                r.label
            );
            // Every cycle lands on a real code PC: runtime splices are
            // charged to their calling instruction.
            assert_eq!(prof.cycles.other(), 0);
            assert_eq!(prof.uops.other(), 0);
        }
    }

    #[test]
    fn guest_profile_attributes_checks_to_allocation_sites() {
        use rest_core::MteMode;
        let r = profiled_heap_workload(RtConfig::mte(MteMode::Sync));
        let prof = r.profile.as_ref().expect("profiling was enabled");
        // The site table reconciles with the backend's own counter:
        // every backend check_access lands on exactly one site row.
        let site_checks: u64 = prof.sites.iter().map(|(_, c)| c.checks).sum();
        assert_eq!(site_checks, prof.backend_checks);
        assert!(prof.backend_checks > 0);
        // The malloc site exists and owns the loop's accesses.
        let (site_pc, counters) = prof
            .sites
            .iter()
            .find(|(pc, _)| *pc != 0)
            .expect("a real allocation site");
        assert!(*site_pc >= Program::CODE_BASE);
        assert_eq!(counters.allocs, 50);
        assert_eq!(counters.frees, 50);
        assert!(counters.checks > 0);
        // MTE tags pointers, so checked accesses canonicalise.
        assert!(counters.canonicalizations > 0);
        // Per-PC counters cover the program's direct accesses; the site
        // table additionally captures runtime-internal validations (the
        // hardened free's tag check), so it can only be larger.
        assert!(prof.checks.total() <= site_checks);
        // Injected check micro-ops are only ever emitted for direct
        // accesses, so those totals agree exactly.
        let site_uops: u64 = prof.sites.iter().map(|(_, c)| c.check_uops).sum();
        assert_eq!(prof.check_uops.total(), site_uops);
        assert!(site_uops > 0, "MTE sync injects a tag fetch per access");
    }

    #[test]
    fn profiling_does_not_perturb_the_simulated_machine() {
        let base = {
            let mut p = ProgramBuilder::new();
            p.li(Reg::A0, 64);
            p.ecall(EcallNum::Malloc);
            p.sd(Reg::A0, Reg::A0, 0);
            p.ecall(EcallNum::Free);
            p.halt();
            p.build()
        };
        let cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, true));
        let plainr = System::new(base.clone(), cfg.clone()).run();
        let mut prof_cfg = cfg;
        prof_cfg.profile_guest = true;
        let profr = System::new(base, prof_cfg).run();
        assert_eq!(plainr.core.cycles, profr.core.cycles);
        assert_eq!(plainr.core.uops, profr.core.uops);
        assert_eq!(plainr.stats_map(), profr.stats_map());
    }

    #[test]
    fn output_and_exit_code_propagate() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, b'o' as i64);
        p.ecall(EcallNum::PutChar);
        p.li(Reg::A0, b'k' as i64);
        p.ecall(EcallNum::PutChar);
        p.li(Reg::A0, 7);
        p.ecall(EcallNum::Exit);
        let r = System::new(p.build(), SimConfig::isca2018(RtConfig::plain())).run();
        assert_eq!(r.stop, StopReason::Exit(7));
        assert_eq!(r.output, b"ok");
    }
}
