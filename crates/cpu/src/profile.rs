//! Guest hotspot profile: dense per-PC cycle/uop/check counters.
//!
//! When [`crate::SimConfig::profile_guest`] is on, the emulator counts
//! per-PC checks and injected check micro-ops as it executes, and the
//! timing loop attributes committed cycles and retired micro-ops to the
//! guest PC of the macro instruction that produced them. Runtime-service
//! micro-ops (the `ecall` splice) are charged to the *calling* guest
//! instruction — exactly what a guest-level profiler wants: "this
//! `malloc` call cost N cycles". Because the cycle counter accumulates
//! the same commit-time deltas as the CPI stack (which sums exactly to
//! `core.cycles` by construction), per-PC — and therefore per-basic-
//! block — cycle totals sum exactly to `core.cycles`.
//!
//! All counters are deterministic simulation state: a serialized profile
//! is byte-identical across runs and worker counts.

use rest_core::SiteCounters;
use rest_isa::{Program, PC_STEP};

/// Dense per-PC counter table covering the program's code segment.
/// Counts landing outside it (there should be none — runtime traffic is
/// charged to its guest call site) accumulate in `other`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcCounters {
    base: u64,
    counts: Vec<u64>,
    other: u64,
}

impl PcCounters {
    /// A zeroed table sized for `program`.
    pub fn new(program: &Program) -> PcCounters {
        PcCounters {
            base: Program::CODE_BASE,
            counts: vec![0; program.len()],
            other: 0,
        }
    }

    /// Adds `n` to the counter for `pc`.
    #[inline]
    pub fn add(&mut self, pc: u64, n: u64) {
        if pc >= self.base && (pc - self.base).is_multiple_of(PC_STEP) {
            let idx = ((pc - self.base) / PC_STEP) as usize;
            if let Some(c) = self.counts.get_mut(idx) {
                *c += n;
                return;
            }
        }
        self.other += n;
    }

    /// The counter for `pc` (0 when out of range).
    pub fn get(&self, pc: u64) -> u64 {
        if pc < self.base || !(pc - self.base).is_multiple_of(PC_STEP) {
            return 0;
        }
        let idx = ((pc - self.base) / PC_STEP) as usize;
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Sum over every PC, including the out-of-range bucket.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.other
    }

    /// Counts that landed outside the code segment.
    pub fn other(&self) -> u64 {
        self.other
    }

    /// `(pc, count)` pairs for every nonzero counter, ascending by PC.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(move |(i, &c)| (self.base + i as u64 * PC_STEP, c))
    }
}

/// Per-PC check counters maintained by the emulator: check invocations
/// and injected check micro-ops, keyed by the PC of the checked access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Check invocations (backend or shadow) per PC.
    pub checks: PcCounters,
    /// Injected check micro-ops (ASan sequence, tag fetch, AUT compute)
    /// per PC.
    pub check_uops: PcCounters,
}

impl CheckCounters {
    /// A zeroed table sized for `program`.
    pub fn new(program: &Program) -> CheckCounters {
        CheckCounters {
            checks: PcCounters::new(program),
            check_uops: PcCounters::new(program),
        }
    }

    /// Records one check at `pc` that injected `uops` micro-ops.
    #[inline]
    pub fn note(&mut self, pc: u64, uops: u64) {
        self.checks.add(pc, 1);
        if uops != 0 {
            self.check_uops.add(pc, uops);
        }
    }
}

/// The complete guest profile a run produces: per-PC cycles, retired
/// micro-ops, checks, injected check micro-ops, the backend's own check
/// count (for reconciliation), and the per-allocation-site table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuestProfile {
    /// Committed-cycle deltas per guest PC (sums exactly to
    /// `core.cycles`).
    pub cycles: PcCounters,
    /// Retired micro-ops per guest PC (runtime splice charged to the
    /// calling instruction).
    pub uops: PcCounters,
    /// Check invocations per guest PC.
    pub checks: PcCounters,
    /// Injected check micro-ops per guest PC.
    pub check_uops: PcCounters,
    /// The backend's own `check_access` invocation count.
    pub backend_checks: u64,
    /// Per-allocation-site attribution rows, ascending by site PC.
    pub sites: Vec<(u64, SiteCounters)>,
    /// Per-site statically elided checks, ascending by site PC (empty
    /// unless the run carried an elision map — kept separate from
    /// `sites` so elision-off artifacts stay byte-identical).
    pub elided_sites: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_isa::ProgramBuilder;

    fn tiny_program() -> Program {
        let mut p = ProgramBuilder::new();
        p.nop();
        p.nop();
        p.nop();
        p.halt();
        p.build()
    }

    #[test]
    fn dense_counters_key_by_pc_and_spill_out_of_range() {
        let p = tiny_program();
        let mut t = PcCounters::new(&p);
        let base = Program::CODE_BASE;
        t.add(base, 5);
        t.add(base + PC_STEP, 2);
        t.add(base, 1);
        t.add(0xdead_0001, 7); // misaligned -> spill
        t.add(base + 100 * PC_STEP, 3); // past the end -> spill
        assert_eq!(t.get(base), 6);
        assert_eq!(t.get(base + PC_STEP), 2);
        assert_eq!(t.other(), 10);
        assert_eq!(t.total(), 18);
        let nz: Vec<_> = t.nonzero().collect();
        assert_eq!(nz, vec![(base, 6), (base + PC_STEP, 2)]);
    }
}
