//! Multi-programmed simulation (§IV-B): several guest processes
//! time-sliced on one machine, with the OS swapping the per-process
//! token in the token-configuration register at every context switch.
//!
//! Each process has its own architectural state (emulator, runtime,
//! armed-set, token) and a private physical-memory partition; the
//! pipeline, caches, and branch predictors are **shared**, so context
//! switches pollute microarchitectural state exactly as on real
//! hardware. The active process's token is what the fill-path detector
//! compares against — process A's tokens are inert while process B runs
//! (content mismatch), which is why shared memory between processes
//! needs the single-system-token model instead (see
//! `rest_core::policy`).

use rest_isa::{DynInst, GuestMemory, Program};
use rest_mem::{Hierarchy, LineReader};

use crate::config::SimConfig;
use crate::emulator::{Emulator, StopReason};
use crate::exec::ExecEngine;
use crate::pipeline::Pipeline;
use crate::stats::SimResult;

/// Physical-partition stride: process *i*'s addresses are relocated by
/// `i * PARTITION`. Large enough that no guest region crosses partitions.
const PARTITION: u64 = 0x100_0000_0000;

/// A guest address relocated into a process's physical partition.
fn relocate(pid: usize, addr: u64) -> u64 {
    addr + pid as u64 * PARTITION
}

struct RelocatedView<'a> {
    mem: &'a GuestMemory,
    pid: usize,
}

impl LineReader for RelocatedView<'_> {
    fn read_line(&self, line_addr: u64) -> [u8; 64] {
        // Translate back into the process's virtual space.
        let virt = line_addr - self.pid as u64 * PARTITION;
        self.mem.read_line(virt)
    }
}

/// One process's slot in the machine.
struct Proc {
    emulator: Emulator,
    done: bool,
    label: String,
    insts_at_done: u64,
}

/// A time-sliced multi-process machine with per-process tokens.
///
/// # Example
///
/// ```
/// use rest_cpu::{MultiSystem, SimConfig};
/// use rest_isa::{ProgramBuilder, Reg};
/// use rest_runtime::RtConfig;
///
/// let prog = |n: i64| {
///     let mut p = ProgramBuilder::new();
///     p.li(Reg::T0, n);
///     let lp = p.label_here();
///     p.addi(Reg::T0, Reg::T0, -1);
///     p.bne(Reg::T0, Reg::ZERO, lp);
///     p.halt();
///     p.build()
/// };
/// let mut cfg = SimConfig::isca2018(RtConfig::plain());
/// cfg.token_seed = 1;
/// let results = MultiSystem::new(
///     vec![(prog(500), cfg.clone()), (prog(800), cfg)],
///     1000,
/// )
/// .run();
/// assert_eq!(results.len(), 2);
/// ```
pub struct MultiSystem {
    procs: Vec<Proc>,
    pipeline: Pipeline,
    /// Macro instructions per scheduling quantum.
    slice_insts: u64,
    context_switches: u64,
}

impl MultiSystem {
    /// Builds a machine running `programs` round-robin with
    /// `slice_insts` instructions per quantum. Each process gets a
    /// distinct token (derived from its config's `token_seed` plus its
    /// pid), its own runtime, and a private memory partition; the
    /// pipeline and caches are shared.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty. The shared pipeline uses the first
    /// process's core/memory configuration and exception mode.
    pub fn new(programs: Vec<(Program, SimConfig)>, slice_insts: u64) -> MultiSystem {
        assert!(!programs.is_empty(), "need at least one process");
        let first_cfg = programs[0].1.clone();
        let hier = Hierarchy::new(first_cfg.mem.clone());
        let pipeline = Pipeline::new(first_cfg.core.clone(), hier, first_cfg.rt.mode);
        let procs = programs
            .into_iter()
            .enumerate()
            .map(|(pid, (program, mut cfg))| {
                // Per-process token: distinct value per pid (§IV-B).
                cfg.token_seed = cfg.token_seed.wrapping_add(pid as u64 * 0x9e37_79b9);
                let label = cfg.rt.label();
                Proc {
                    emulator: Emulator::new(program, &cfg),
                    done: false,
                    label,
                    insts_at_done: 0,
                }
            })
            .collect();
        MultiSystem {
            procs,
            pipeline,
            slice_insts: slice_insts.max(1),
            context_switches: 0,
        }
    }

    /// Number of context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Runs all processes to completion, returning one result per
    /// process in submission order. Pipeline/memory statistics are
    /// machine-wide and reported identically in every result.
    pub fn run(mut self) -> Vec<SimResult> {
        let mut batch: Vec<DynInst> = Vec::with_capacity(64);
        loop {
            let mut any_progress = false;
            for pid in 0..self.procs.len() {
                if self.procs[pid].done {
                    continue;
                }
                // One scheduling quantum for this process.
                let mut executed = 0u64;
                loop {
                    batch.clear();
                    let proc = &mut self.procs[pid];
                    if !proc.emulator.step(&mut batch) {
                        proc.done = true;
                        proc.insts_at_done = proc.emulator.insts();
                        break;
                    }
                    any_progress = true;
                    executed += 1;
                    // Replay through the shared pipeline with the
                    // process's token and relocated addresses.
                    let token = self.procs[pid].emulator.token().clone();
                    let view = RelocatedView {
                        mem: &self.procs[pid].emulator.mem,
                        pid,
                    };
                    for d in &batch {
                        let mut d = *d;
                        d.pc = relocate(pid, d.pc);
                        if let Some(mem) = &mut d.mem {
                            mem.addr = relocate(pid, mem.addr);
                        }
                        if let Some(b) = &mut d.branch {
                            b.target = relocate(pid, b.target);
                        }
                        self.pipeline.process(&d, &view, &token);
                    }
                    self.procs[pid].emulator.mem.clear_pre_images();
                    if executed >= self.slice_insts {
                        break;
                    }
                }
                self.context_switches += 1;
            }
            if !any_progress {
                break;
            }
        }
        let core = self.pipeline.finish();
        let mem = *self.pipeline.mem_stats();
        self.procs
            .into_iter()
            .map(|p| {
                let mut core = core;
                core.insts = p.insts_at_done;
                SimResult {
                    trace: None,
                    core,
                    mem,
                    alloc: *p.emulator.runtime().allocator().stats(),
                    stop: p
                        .emulator
                        .stop_reason()
                        .cloned()
                        .unwrap_or(StopReason::Halted),
                    output: p.emulator.runtime().output().to_vec(),
                    label: p.label,
                    series: None,
                    audit: Default::default(),
                    fault: None,
                    profile: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_core::Mode;
    use rest_isa::{EcallNum, ProgramBuilder, Reg};
    use rest_runtime::{RtConfig, Violation};

    fn heap_prog(iters: i64) -> Program {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::S1, iters);
        p.bind(lp);
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.sd(Reg::S1, Reg::A0, 0);
        p.ecall(EcallNum::Free);
        p.addi(Reg::S1, Reg::S1, -1);
        p.bne(Reg::S1, Reg::ZERO, lp);
        p.li(Reg::A0, 0);
        p.ecall(EcallNum::Exit);
        p.build()
    }

    #[test]
    fn two_processes_run_to_completion_with_distinct_tokens() {
        let cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, false));
        let ms = MultiSystem::new(
            vec![(heap_prog(40), cfg.clone()), (heap_prog(60), cfg)],
            50,
        );
        let results = ms.run();
        assert_eq!(results.len(), 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.stop, StopReason::Exit(0), "process {i}");
        }
        assert!(results[1].core.insts > results[0].core.insts);
        // Machine-wide cycle count is shared.
        assert_eq!(results[0].core.cycles, results[1].core.cycles);
    }

    #[test]
    fn per_process_violations_stop_only_the_faulting_process() {
        let bad = {
            let mut p = ProgramBuilder::new();
            p.li(Reg::A0, 64);
            p.ecall(EcallNum::Malloc);
            p.ld(Reg::A1, Reg::A0, 64); // into the redzone
            p.li(Reg::A0, 0);
            p.ecall(EcallNum::Exit);
            p.build()
        };
        let cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, false));
        let results = MultiSystem::new(
            vec![(bad, cfg.clone()), (heap_prog(30), cfg)],
            25,
        )
        .run();
        assert!(
            matches!(results[0].stop, StopReason::Violation(Violation::Rest(_))),
            "{:?}",
            results[0].stop
        );
        assert_eq!(results[1].stop, StopReason::Exit(0), "the victim's crash must not take down its neighbour");
    }

    #[test]
    fn single_process_machine_matches_system_results_in_shape() {
        // A one-process MultiSystem is just a System with scheduling
        // bookkeeping: it must complete with the same stop reason and a
        // comparable cycle count.
        let cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, false));
        let multi = MultiSystem::new(vec![(heap_prog(30), cfg.clone())], 10).run();
        let single = crate::System::new(heap_prog(30), cfg).run();
        assert_eq!(multi[0].stop, single.stop);
        let ratio = multi[0].core.cycles as f64 / single.core.cycles as f64;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shared_caches_make_co_running_slower_than_solo() {
        // The same process pair, alone vs co-scheduled: sharing the
        // machine must not be free.
        let cfg = SimConfig::isca2018(RtConfig::plain());
        let solo = MultiSystem::new(vec![(heap_prog(60), cfg.clone())], 50).run();
        let duo = MultiSystem::new(
            vec![(heap_prog(60), cfg.clone()), (heap_prog(60), cfg)],
            50,
        )
        .run();
        assert!(
            duo[0].core.cycles > solo[0].core.cycles,
            "duo {} vs solo {}",
            duo[0].core.cycles,
            solo[0].core.cycles
        );
    }
}
