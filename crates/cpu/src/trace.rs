//! Pipeline tracing: per-micro-op stage timestamps and an ASCII
//! pipeline diagram, in the spirit of gem5's O3 pipeline viewer.
//!
//! Enable with [`crate::SimConfig::trace_uops`]; the first N micro-ops
//! of the run are recorded and the rendered diagram shows, per op,
//! when it was **F**etched, **D**ispatched, **I**ssued, completed
//! e**X**ecution, and **C**ommitted:
//!
//! ```text
//! seq pc       op     F....D.I..X...C
//!   0 0x10000  IntAlu F.....DIX.C
//!   1 0x10004  Load   F.....D.I......X..C
//! ```

use std::fmt;

use rest_isa::{Component, OpKind};

/// Stage timestamps of one traced micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Sequence number (program order).
    pub seq: u64,
    /// PC of the producing (macro) instruction.
    pub pc: u64,
    /// Execution class.
    pub kind: OpKind,
    /// Software-component attribution.
    pub component: Component,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle dispatched into the window.
    pub dispatch: u64,
    /// Cycle issued to a functional unit / the cache.
    pub issue: u64,
    /// Cycle the result was available.
    pub complete: u64,
    /// Cycle committed.
    pub commit: u64,
}

/// A bounded recording of the first N micro-ops' pipeline timing.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    entries: Vec<TraceEntry>,
    capacity: usize,
}

impl PipelineTrace {
    /// Creates a trace that keeps the first `capacity` micro-ops.
    pub fn new(capacity: usize) -> PipelineTrace {
        PipelineTrace {
            entries: Vec::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// Records one micro-op (ignored once the capacity is reached).
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        }
    }

    /// The recorded entries, in program order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Whether the trace reached its capacity (later ops were dropped).
    pub fn truncated(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Renders the ASCII pipeline diagram.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let Some(first) = self.entries.first() else {
            return "  (empty trace)\n".to_string();
        };
        let base = first.fetch;
        let _ = writeln!(
            out,
            "{:>4} {:<10} {:<8} {:<13} timeline (F=fetch D=dispatch I=issue X=complete C=commit)",
            "seq", "pc", "op", "component"
        );
        for e in &self.entries {
            let mut lane = String::new();
            let marks = [
                (e.fetch, 'F'),
                (e.dispatch, 'D'),
                (e.issue, 'I'),
                (e.complete, 'X'),
                (e.commit, 'C'),
            ];
            let width = (e.commit.saturating_sub(base) + 1).min(120) as usize;
            lane.extend(std::iter::repeat_n('.', width));
            let mut lane: Vec<char> = lane.chars().collect();
            for (cycle, ch) in marks {
                let pos = (cycle.saturating_sub(base)).min(119) as usize;
                if pos < lane.len() {
                    lane[pos] = ch;
                }
            }
            let lane: String = lane.into_iter().collect();
            let _ = writeln!(
                out,
                "{:>4} {:<#10x} {:<8} {:<13} {lane}",
                e.seq,
                e.pc,
                format!("{:?}", e.kind),
                e.component.name()
            );
        }
        if self.truncated() {
            let _ = writeln!(out, "  … trace capacity reached");
        }
        out
    }
}

impl fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, fetch: u64) -> TraceEntry {
        TraceEntry {
            seq,
            pc: 0x1_0000 + seq * 4,
            kind: OpKind::IntAlu,
            component: Component::App,
            fetch,
            dispatch: fetch + 6,
            issue: fetch + 7,
            complete: fetch + 8,
            commit: fetch + 9,
        }
    }

    #[test]
    fn records_up_to_capacity() {
        let mut t = PipelineTrace::new(2);
        t.record(entry(0, 0));
        t.record(entry(1, 1));
        t.record(entry(2, 2));
        assert_eq!(t.entries().len(), 2);
        assert!(t.truncated());
    }

    #[test]
    fn render_contains_stage_letters_in_order() {
        let mut t = PipelineTrace::new(4);
        t.record(entry(0, 0));
        let s = t.render();
        let f = s.find('F').unwrap();
        let d = s.rfind('D').unwrap();
        let i = s.rfind('I').unwrap();
        let x = s.rfind('X').unwrap();
        let c = s.rfind('C').unwrap();
        assert!(f < d && d < i && i < x && x < c, "{s}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = PipelineTrace::new(4);
        assert!(t.render().contains("empty trace"));
    }
}
