//! Pipeline tracing: per-micro-op stage timestamps and an ASCII
//! pipeline diagram, in the spirit of gem5's O3 pipeline viewer.
//!
//! Enable with [`crate::SimConfig::trace_uops`]; the first N micro-ops
//! of the run are recorded and the rendered diagram shows, per op,
//! when it was **F**etched, **D**ispatched, **I**ssued, completed
//! e**X**ecution, and **C**ommitted:
//!
//! ```text
//! seq pc       op     F....D.I..X...C
//!   0 0x10000  IntAlu F.....DIX.C
//!   1 0x10004  Load   F.....D.I......X..C
//! ```

use std::fmt;

use rest_isa::{Component, OpKind};

/// Stage timestamps of one traced micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Sequence number (program order).
    pub seq: u64,
    /// PC of the producing (macro) instruction.
    pub pc: u64,
    /// Execution class.
    pub kind: OpKind,
    /// Software-component attribution.
    pub component: Component,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle dispatched into the window.
    pub dispatch: u64,
    /// Cycle issued to a functional unit / the cache.
    pub issue: u64,
    /// Cycle the result was available.
    pub complete: u64,
    /// Cycle committed.
    pub commit: u64,
}

/// A bounded recording of the first N micro-ops' pipeline timing.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    entries: Vec<TraceEntry>,
    capacity: usize,
}

impl PipelineTrace {
    /// Creates a trace that keeps the first `capacity` micro-ops.
    pub fn new(capacity: usize) -> PipelineTrace {
        PipelineTrace {
            entries: Vec::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// Records one micro-op (ignored once the capacity is reached).
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        }
    }

    /// The recorded entries, in program order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Whether the trace reached its capacity (later ops were dropped).
    pub fn truncated(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Renders the ASCII pipeline diagram.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let Some(first) = self.entries.first() else {
            return "  (empty trace)\n".to_string();
        };
        let base = first.fetch;
        let _ = writeln!(
            out,
            "{:>4} {:<10} {:<8} {:<13} timeline (F=fetch D=dispatch I=issue X=complete C=commit)",
            "seq", "pc", "op", "component"
        );
        for e in &self.entries {
            let mut lane = String::new();
            let marks = [
                (e.fetch, 'F'),
                (e.dispatch, 'D'),
                (e.issue, 'I'),
                (e.complete, 'X'),
                (e.commit, 'C'),
            ];
            let width = (e.commit.saturating_sub(base) + 1).min(120) as usize;
            lane.extend(std::iter::repeat_n('.', width));
            let mut lane: Vec<char> = lane.chars().collect();
            for (cycle, ch) in marks {
                let pos = (cycle.saturating_sub(base)).min(119) as usize;
                if pos < lane.len() {
                    lane[pos] = ch;
                }
            }
            let lane: String = lane.into_iter().collect();
            let _ = writeln!(
                out,
                "{:>4} {:<#10x} {:<8} {:<13} {lane}",
                e.seq,
                e.pc,
                format!("{:?}", e.kind),
                e.component.name()
            );
        }
        if self.truncated() {
            let _ = writeln!(out, "  … trace capacity reached");
        }
        out
    }
}

impl PipelineTrace {
    /// Converts the trace to a Chrome trace-event document: one track
    /// (thread) per pipeline stage, one complete ("X") slice per traced
    /// micro-op on each track, with the software component as the slice
    /// category. Timestamps are simulated cycles mapped 1:1 to the
    /// trace's microsecond unit, so Perfetto's timeline reads in
    /// cycles. Load the result at <https://ui.perfetto.dev>.
    pub fn to_perfetto(&self) -> rest_obs::PerfettoTrace {
        let mut trace = rest_obs::PerfettoTrace::new("rest-sim pipeline");
        let fetch = trace.track("fetch");
        let dispatch = trace.track("dispatch");
        let issue = trace.track("issue");
        let complete = trace.track("complete");
        let commit = trace.track("commit");
        for e in self.entries() {
            let name = format!("{:?} {:#x}", e.kind, e.pc);
            let category = e.component.name();
            // Each stage slice spans from entering that stage to
            // entering the next; commit is drawn as a single cycle. A
            // stage crossed in zero cycles still gets a 1-cycle slice
            // so every micro-op is visible on every track.
            let spans = [
                (fetch, e.fetch, e.dispatch),
                (dispatch, e.dispatch, e.issue),
                (issue, e.issue, e.complete),
                (complete, e.complete, e.commit),
                (commit, e.commit, e.commit + 1),
            ];
            for (track, start, end) in spans {
                let dur = end.saturating_sub(start).max(1);
                trace.slice(
                    track,
                    &name,
                    category,
                    start,
                    dur,
                    vec![
                        ("seq", rest_obs::Json::UInt(e.seq)),
                        ("pc", rest_obs::Json::UInt(e.pc)),
                    ],
                );
            }
        }
        trace
    }
}

impl fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, fetch: u64) -> TraceEntry {
        TraceEntry {
            seq,
            pc: 0x1_0000 + seq * 4,
            kind: OpKind::IntAlu,
            component: Component::App,
            fetch,
            dispatch: fetch + 6,
            issue: fetch + 7,
            complete: fetch + 8,
            commit: fetch + 9,
        }
    }

    #[test]
    fn records_up_to_capacity() {
        let mut t = PipelineTrace::new(2);
        t.record(entry(0, 0));
        t.record(entry(1, 1));
        t.record(entry(2, 2));
        assert_eq!(t.entries().len(), 2);
        assert!(t.truncated());
    }

    #[test]
    fn render_contains_stage_letters_in_order() {
        let mut t = PipelineTrace::new(4);
        t.record(entry(0, 0));
        let s = t.render();
        let f = s.find('F').unwrap();
        let d = s.rfind('D').unwrap();
        let i = s.rfind('I').unwrap();
        let x = s.rfind('X').unwrap();
        let c = s.rfind('C').unwrap();
        assert!(f < d && d < i && i < x && x < c, "{s}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = PipelineTrace::new(4);
        assert!(t.render().contains("empty trace"));
        // An empty trace still exports a valid (metadata-only) document.
        let doc = t.to_perfetto();
        assert_eq!(doc.slice_count(), 0);
        rest_obs::Json::parse(&doc.render()).expect("empty trace must export valid JSON");
    }

    #[test]
    fn truncates_at_exactly_capacity() {
        let mut t = PipelineTrace::new(3);
        for i in 0..10 {
            t.record(entry(i, i));
        }
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.entries().last().unwrap().seq, 2);
        assert!(t.truncated());
        assert!(t.render().contains("trace capacity reached"));
        // One slice per entry per stage track.
        assert_eq!(t.to_perfetto().slice_count(), 3 * 5);
    }

    #[test]
    fn perfetto_export_has_five_tracks_and_parses() {
        let mut t = PipelineTrace::new(4);
        t.record(entry(0, 0));
        t.record(entry(1, 1));
        let doc = t.to_perfetto();
        assert_eq!(doc.slice_count(), 2 * 5);
        let parsed = rest_obs::Json::parse(&doc.render()).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        // 1 process_name + 5×(thread_name + thread_sort_index) metadata
        // events, then the slices.
        let meta = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .count();
        assert_eq!(meta, 1 + 5 * 2);
        let slices = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        assert_eq!(slices, 2 * 5);
    }
}
