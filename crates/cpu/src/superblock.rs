//! Run-time superblock traces: the emulator's top execution tier.
//!
//! The decoded-uop cache (tier [`crate::ExecTier::Fast`]) still pays a
//! per-instruction dispatch tax: a stop check, two budget comparisons, a
//! bounds-checked fetch that copies a [`DecodedInst`], and a `match` over
//! the full [`Inst`] enum. Hot loops repay that tax thousands of times.
//! The trace tier amortises it: when execution keeps arriving at the same
//! PC via a control transfer — backward arrivals are loop headers, and
//! forward arrivals via `jal`/`jalr` are function entries and post-call
//! continuations, equally hot in call-heavy code — the emulator compiles
//! the straight-line region starting there into a
//! **superblock trace**: a vector of compact [`TraceOp`]s with every
//! static decision (ALU operation, register numbers, component, elision
//! verdict, injected-check micro-op count) pre-resolved, executed by a
//! tight loop with a single budget check per full pass.
//!
//! Correctness is by restriction, not by cleverness:
//!
//! * Trace enders — `ecall`, `arm`, `disarm`, `halt` — never enter a
//!   trace, so nothing inside a trace can invalidate decoded state,
//!   splice runtime traffic, or self-modify code. Direct and indirect
//!   jumps (`jal`, `jalr`) may appear only as the *terminal* op: they
//!   transfer control out of the trace, which chains naturally into the
//!   trace at the jump target once it heats up.
//! * A taken conditional branch resolves by target: back to the trace
//!   head re-enters op 0 after re-checking the budget (loop
//!   specialisation); *forward* to a PC inside the trace continues the
//!   current pass at that op (if/else bodies stay in-trace); anywhere
//!   else is a **side exit** at the architectural target. Backward
//!   targets other than the head always exit — re-entering mid-trace
//!   could loop without a budget recheck.
//! * Per-access checking goes through the *same* `check_app_access` path
//!   as single-stepping, so backend counters, profiling tables, fault
//!   hooks and violations match the other tiers exactly.
//! * Traces are invalidated on ARM/DISARM-visible code-segment writes
//!   with the same half-open `[addr, addr + len)` semantics as
//!   [`rest_isa::DecodedProgram::invalidate_range`]: any trace whose PC
//!   span intersects the range is dropped and recompiled on its next
//!   hot arrival, so stale fused checks cannot execute.

use rest_isa::{
    AluOp, BranchCond, DecodedProgram, DynInst, Inst, MemSize, Program, Reg, PC_STEP,
};

/// Arrivals via control transfer before a head is compiled.
pub(crate) const HOT_THRESHOLD: u32 = 16;

/// Maximum macro instructions per trace (bounds compile time and the
/// budget-precondition slack).
pub(crate) const MAX_TRACE_OPS: usize = 256;

/// Heat-counter sentinel for heads that can never form a profitable
/// trace (the head instruction is a trace ender, or the region is too
/// short to amortise dispatch).
const DEAD: u32 = u32::MAX;

/// One fused trace operation. Every field the fast path would read out
/// of a [`DecodedInst`] at run time is pre-extracted; `Load`/`Store`
/// additionally carry the compile-time-resolved elision verdict and the
/// number of check micro-ops injected per execution.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceOp {
    Alu {
        op: AluOp,
        dst: Reg,
        src1: Reg,
        src2: Reg,
    },
    AluImm {
        op: AluOp,
        dst: Reg,
        src: Reg,
        imm: i64,
    },
    Li {
        dst: Reg,
        imm: i64,
    },
    Nop,
    Load {
        dst: Reg,
        base: Reg,
        offset: i64,
        size: MemSize,
        signed: bool,
        /// Application component (checks apply) — pre-resolved.
        app: bool,
        /// Statically proven unable to fire (elision map) — pre-resolved.
        elided: bool,
        /// Check micro-ops injected when not elided.
        injected: u64,
    },
    Store {
        src: Reg,
        base: Reg,
        offset: i64,
        size: MemSize,
        app: bool,
        elided: bool,
        injected: u64,
    },
    Branch {
        cond: BranchCond,
        src1: Reg,
        src2: Reg,
        target: u64,
    },
    /// Direct jump-and-link; always the terminal op of its trace.
    Jal {
        dst: Reg,
        target: u64,
    },
    /// Indirect jump-and-link; always the terminal op of its trace.
    Jalr {
        dst: Reg,
        base: Reg,
        offset: i64,
    },
}

/// A compiled superblock: straight-line ops starting at `head`, the
/// matching micro-op templates for materialising runs, and the exact
/// micro-op total of one full no-side-exit pass (the budget
/// precondition's bound).
#[derive(Debug)]
pub(crate) struct Trace {
    pub head: u64,
    pub ops: Vec<TraceOp>,
    /// Micro-op templates parallel to `ops`, replayed (with dynamic
    /// fields patched) when the sink materialises.
    pub templates: Vec<DynInst>,
    /// Micro-ops emitted by one complete pass with no side exit. Every
    /// op emits at least one micro-op, so `uops + total_uops <=
    /// max_uops` guarantees no per-step budget stop could have fired
    /// mid-trace.
    pub total_uops: u64,
}

/// Static per-emulator facts the compiler needs to pre-resolve check
/// behaviour (all immutable for the lifetime of a run).
pub(crate) struct TraceCompileCfg<'a> {
    /// ASan-style injected shadow checks are active.
    pub access_checks: bool,
    /// The backend tags pointers (MTE/PA): backend check uops apply.
    pub tagged_ptrs: bool,
    /// `backend.check_uops(false)` — injected uops per checked load.
    pub load_check_uops: u64,
    /// `backend.check_uops(true)` — injected uops per checked store.
    pub store_check_uops: u64,
    /// Dense per-PC elision verdicts (see `Emulator::check_elided`).
    pub elide: Option<&'a [bool]>,
}

impl TraceCompileCfg<'_> {
    fn elided(&self, idx: usize, app: bool) -> bool {
        app && self.elide.is_some_and(|t| t.get(idx).copied().unwrap_or(false))
    }

    fn injected(&self, app: bool, store: bool) -> u64 {
        if !app {
            return 0;
        }
        let asan = if self.access_checks { 5 } else { 0 };
        let backend = if self.tagged_ptrs {
            if store {
                self.store_check_uops
            } else {
                self.load_check_uops
            }
        } else {
            0
        };
        asan + backend
    }
}

/// Compiles the superblock headed at entry `head_idx`, or `None` when
/// the region is too short to be worth dispatching (the head is an
/// ender, or the straight line is a short non-looping run).
pub(crate) fn compile(
    decoded: &DecodedProgram,
    head_idx: usize,
    cfg: &TraceCompileCfg<'_>,
) -> Option<Trace> {
    let head = Program::CODE_BASE + head_idx as u64 * PC_STEP;
    let mut ops = Vec::new();
    let mut templates = Vec::new();
    let mut total_uops = 0u64;
    for i in 0..MAX_TRACE_OPS {
        let idx = head_idx + i;
        let pc = head + i as u64 * PC_STEP;
        let Some(e) = decoded.entry_at(pc) else { break };
        let app = e.template.component == rest_isa::Component::App;
        let op = match e.inst {
            Inst::Alu { op, dst, src1, src2 } => TraceOp::Alu { op, dst, src1, src2 },
            Inst::AluImm { op, dst, src, imm } => TraceOp::AluImm { op, dst, src, imm },
            Inst::Li { dst, imm } => TraceOp::Li { dst, imm },
            Inst::Nop => TraceOp::Nop,
            Inst::Load {
                dst,
                base,
                offset,
                size,
                signed,
            } => {
                let elided = cfg.elided(idx, app);
                TraceOp::Load {
                    dst,
                    base,
                    offset,
                    size,
                    signed,
                    app,
                    elided,
                    injected: if elided { 0 } else { cfg.injected(app, false) },
                }
            }
            Inst::Store {
                src,
                base,
                offset,
                size,
            } => {
                let elided = cfg.elided(idx, app);
                TraceOp::Store {
                    src,
                    base,
                    offset,
                    size,
                    app,
                    elided,
                    injected: if elided { 0 } else { cfg.injected(app, true) },
                }
            }
            Inst::Branch {
                cond, src1, src2, ..
            } => TraceOp::Branch {
                cond,
                src1,
                src2,
                target: e.target,
            },
            // Jumps terminate the trace but execute inside it, so a
            // block ending in a call retires whole; the jump target
            // chains into its own trace once hot.
            Inst::Jal { dst, .. } => {
                ops.push(TraceOp::Jal {
                    dst,
                    target: e.target,
                });
                templates.push(e.template);
                total_uops += 1;
                break;
            }
            Inst::Jalr { dst, base, offset } => {
                ops.push(TraceOp::Jalr { dst, base, offset });
                templates.push(e.template);
                total_uops += 1;
                break;
            }
            // Trace enders: runtime traffic gets spliced or code gets
            // self-modified. These stay on the per-step path.
            Inst::Ecall | Inst::Arm { .. } | Inst::Disarm { .. } | Inst::Halt => break,
        };
        total_uops += match op {
            TraceOp::Load { elided, injected, .. } | TraceOp::Store { elided, injected, .. } => {
                1 + if elided { 0 } else { injected }
            }
            _ => 1,
        };
        ops.push(op);
        templates.push(e.template);
    }
    let loops = ops
        .iter()
        .any(|op| matches!(op, TraceOp::Branch { target, .. } if *target == head));
    // A non-looping trace pays its dispatch cost (cache probe, budget
    // precondition, checkout/restore) exactly once per pass, so short
    // straight-line regions lose money; loops amortise dispatch over
    // every iteration and are worth it at any length.
    if ops.is_empty() || (ops.len() < 4 && !loops) {
        return None;
    }
    Some(Trace {
        head,
        ops,
        templates,
        total_uops,
    })
}

/// The emulator's trace store: per-head heat counters and compiled
/// traces, dense over the code segment like the decoded-uop cache.
#[derive(Debug)]
pub(crate) struct TraceCache {
    heat: Vec<u32>,
    slots: Vec<Option<Box<Trace>>>,
    /// Head indices with installed traces (kept sorted; scanned on
    /// invalidation — trace counts are tiny next to code size).
    installed: Vec<usize>,
    compiled: u64,
    invalidated: u64,
    /// Macro instructions retired inside trace dispatch (coverage
    /// telemetry).
    traced_insts: u64,
}

impl TraceCache {
    pub fn new(len: usize) -> TraceCache {
        TraceCache {
            heat: vec![0; len],
            slots: (0..len).map(|_| None).collect(),
            installed: Vec::new(),
            compiled: 0,
            invalidated: 0,
            traced_insts: 0,
        }
    }

    /// Code-segment index of `pc`, mirroring `DecodedProgram::entry_at`.
    #[inline]
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        let off = pc.checked_sub(Program::CODE_BASE)?;
        if off % PC_STEP != 0 {
            return None;
        }
        let idx = (off / PC_STEP) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// Whether a trace is installed at `idx`.
    #[inline]
    pub fn has(&self, idx: usize) -> bool {
        self.slots[idx].is_some()
    }

    /// Counts one hot arrival at `idx`; true once the head crossed the
    /// compile threshold (and is not marked dead).
    #[inline]
    pub fn bump(&mut self, idx: usize) -> bool {
        let h = &mut self.heat[idx];
        if *h == DEAD {
            return false;
        }
        *h = h.saturating_add(1);
        *h >= HOT_THRESHOLD && *h != DEAD
    }

    /// Marks `idx` as never-compilable.
    pub fn mark_dead(&mut self, idx: usize) {
        self.heat[idx] = DEAD;
    }

    /// Installs a compiled trace at `idx`.
    pub fn install(&mut self, idx: usize, t: Trace) {
        if self.slots[idx].is_none() {
            if let Err(pos) = self.installed.binary_search(&idx) {
                self.installed.insert(pos, idx);
            }
        }
        self.slots[idx] = Some(Box::new(t));
        self.compiled += 1;
    }

    /// Detaches the trace at `idx` for execution (the emulator mutates
    /// itself while running it); restore with [`TraceCache::restore`].
    #[inline]
    pub fn checkout(&mut self, idx: usize) -> Option<Box<Trace>> {
        self.slots[idx].take()
    }

    /// Re-attaches a checked-out trace.
    #[inline]
    pub fn restore(&mut self, idx: usize, t: Box<Trace>) {
        self.slots[idx] = Some(t);
    }

    /// Drops every trace whose PC span intersects the half-open byte
    /// range `[addr, addr + len)` — the same boundary semantics as
    /// `DecodedProgram::invalidate_range`. Dropped heads keep their heat,
    /// so a still-hot loop recompiles on its next backward arrival.
    /// Returns the number of traces dropped.
    pub fn invalidate_range(&mut self, addr: u64, len: u64) -> usize {
        if len == 0 || self.installed.is_empty() {
            return 0;
        }
        let code_end = Program::CODE_BASE + self.slots.len() as u64 * PC_STEP;
        let lo = addr.max(Program::CODE_BASE);
        let hi = addr.saturating_add(len).min(code_end);
        if lo >= hi {
            return 0;
        }
        let first = ((lo - Program::CODE_BASE) / PC_STEP) as usize;
        let last = ((hi - 1 - Program::CODE_BASE) / PC_STEP) as usize;
        let mut dropped = 0;
        self.installed.retain(|&head_idx| {
            let span = self.slots[head_idx]
                .as_ref()
                .map(|t| t.ops.len())
                .unwrap_or(0);
            // Trace covers entries [head_idx, head_idx + span); the
            // invalidated entries are [first, last].
            let hit = head_idx <= last && head_idx + span > first;
            if hit {
                self.slots[head_idx] = None;
                dropped += 1;
            }
            !hit
        });
        self.invalidated += dropped as u64;
        dropped
    }

    /// `(traces compiled, traces invalidated)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.compiled, self.invalidated)
    }

    /// Counts `n` macro instructions retired inside trace dispatch.
    #[inline]
    pub fn count_traced(&mut self, n: u64) {
        self.traced_insts += n;
    }

    /// Macro instructions retired inside trace dispatch so far.
    pub fn traced_insts(&self) -> u64 {
        self.traced_insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_isa::{DecodeOptions, ProgramBuilder};

    fn cfg() -> TraceCompileCfg<'static> {
        TraceCompileCfg {
            access_checks: false,
            tagged_ptrs: false,
            load_check_uops: 0,
            store_check_uops: 0,
            elide: None,
        }
    }

    fn decoded(p: &Program) -> DecodedProgram {
        DecodedProgram::new(
            p,
            DecodeOptions {
                arm_width: 64,
                arm_as_store: false,
            },
        )
    }

    fn loop_program() -> Program {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 0);
        p.li(Reg::T0, 100);
        p.bind(lp); // index 2
        p.add(Reg::A0, Reg::A0, Reg::T0);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, lp);
        p.halt();
        p.build()
    }

    #[test]
    fn compiles_loop_bodies_with_looping_terminal_branch() {
        let p = loop_program();
        let d = decoded(&p);
        let t = compile(&d, 2, &cfg()).expect("loop body compiles");
        assert_eq!(t.head, Program::CODE_BASE + 2 * PC_STEP);
        assert_eq!(t.ops.len(), 3, "add, addi, bne");
        assert_eq!(t.total_uops, 3);
        assert!(
            matches!(t.ops.last(), Some(TraceOp::Branch { target, .. }) if *target == t.head),
            "terminal bne targets the head"
        );
        assert_eq!(t.templates.len(), t.ops.len());
    }

    #[test]
    fn enders_stop_compilation_and_dead_heads_return_none() {
        let p = loop_program();
        let d = decoded(&p);
        // Head at the halt: zero ops.
        assert!(compile(&d, 6, &cfg()).is_none());
        // Head at the bne: one looping op is still worth dispatching.
        let t = compile(&d, 5, &cfg());
        assert!(t.is_none(), "bne at 5 targets 2, not itself");
    }

    #[test]
    fn heat_crosses_threshold_once_and_dead_stays_dead() {
        let mut c = TraceCache::new(8);
        for _ in 0..HOT_THRESHOLD - 1 {
            assert!(!c.bump(3));
        }
        assert!(c.bump(3), "threshold crossing");
        assert!(c.bump(3), "stays hot");
        c.mark_dead(4);
        for _ in 0..2 * HOT_THRESHOLD {
            assert!(!c.bump(4), "dead heads never become hot");
        }
    }

    #[test]
    fn invalidation_is_half_open_over_trace_spans() {
        let p = loop_program();
        let d = decoded(&p);
        let mut c = TraceCache::new(p.len());
        let t = compile(&d, 2, &cfg()).unwrap();
        c.install(2, t);
        assert!(c.has(2));
        let base = Program::CODE_BASE;
        // Range ending exactly at the trace head (half-open) misses it.
        assert_eq!(c.invalidate_range(base, 2 * PC_STEP), 0);
        assert!(c.has(2));
        // Zero length touches nothing.
        assert_eq!(c.invalidate_range(base + 2 * PC_STEP, 0), 0);
        // Range starting exactly at the end of the trace span misses it.
        assert_eq!(c.invalidate_range(base + 5 * PC_STEP, PC_STEP), 0);
        assert!(c.has(2));
        // A one-byte write to the trace's last entry drops it.
        assert_eq!(c.invalidate_range(base + 5 * PC_STEP - 1, 1), 1);
        assert!(!c.has(2));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn invalidation_hits_traces_straddled_by_writes() {
        let p = loop_program();
        let d = decoded(&p);
        let mut c = TraceCache::new(p.len());
        c.install(2, compile(&d, 2, &cfg()).unwrap());
        // A write overlapping only the middle of the span drops it.
        assert_eq!(c.invalidate_range(Program::CODE_BASE + 3 * PC_STEP, 1), 1);
        assert!(!c.has(2));
        // Heat is preserved: a hot head recompiles on the next arrival.
        for _ in 0..HOT_THRESHOLD {
            c.bump(2);
        }
        assert!(c.bump(2));
    }
}
