use std::collections::VecDeque;

use rest_core::{Mode, RestExceptionKind, Token};
use rest_isa::{DynInst, MemAccessKind, OpKind};
use rest_mem::{Hierarchy, LineReader, MemStats};
use rest_obs::{AuditEntry, AuditLog, CpiComponent, Gauges};

use crate::bpred::BranchPredictor;
use crate::config::CoreConfig;
use crate::stats::CoreStats;
use crate::trace::{PipelineTrace, TraceEntry};

/// An in-flight (not yet drained) store tracked for memory
/// disambiguation and the REST LSQ rules.
#[derive(Debug, Clone, Copy)]
struct StoreRec {
    addr: u64,
    size: u64,
    kind: MemAccessKind,
    /// Cycle its address/data were ready (forwardable from here).
    exec_done: u64,
    /// Cycle its write completed at the L1-D (leaves the SQ here).
    drain_done: u64,
}

impl StoreRec {
    fn overlaps(&self, addr: u64, size: u64) -> bool {
        self.addr < addr + size && addr < self.addr + self.size
    }

    fn contains(&self, addr: u64, size: u64) -> bool {
        self.addr <= addr && addr + size <= self.addr + self.size
    }
}

/// The out-of-order timing model.
///
/// Replays the oracle micro-op stream using timestamp algebra: each
/// micro-op's fetch, dispatch, issue, completion, and commit cycles are
/// computed against scoreboards for every structural resource of the
/// Table II core (ROB/IQ/LQ/SQ occupancy, dispatch and commit width,
/// functional units, L1-D ports, branch redirects, I-cache stalls).
/// Younger independent micro-ops may issue before stalled older ones —
/// out-of-order issue — while dispatch and commit remain in order, as in
/// hardware.
///
/// Memory micro-ops walk the [`Hierarchy`]; the REST interactions
/// (token-bit checks, arm/disarm handling, debug-mode store-commit
/// delay, forwarding exceptions) happen on exactly the paths Table I
/// modifies.
#[derive(Debug)]
pub struct Pipeline {
    cfg: CoreConfig,
    hier: Hierarchy,
    bpred: BranchPredictor,
    mode: Mode,

    // Fetch state.
    next_fetch_cycle: u64,
    fetch_slots_used: usize,
    redirect_at: u64,
    cur_fetch_line: u64,

    // Scoreboards.
    reg_ready: [u64; 32],
    disp_ring: Vec<u64>,
    commit_ring: Vec<u64>,
    rob_ring: Vec<u64>,
    iq_ring: Vec<u64>,
    lq_ring: Vec<u64>,
    sq_ring: Vec<u64>,
    alu_ring: Vec<u64>,
    mul_ring: Vec<u64>,
    port_ring: Vec<u64>,
    div_free: u64,
    sq_drain_free: u64,

    // Counters.
    n: u64,
    n_load: u64,
    n_store: u64,
    n_alu: u64,
    n_mul: u64,
    n_mem: u64,
    last_commit: u64,
    /// Dispatch barrier used by the serialise-rest-ops ablation.
    barrier_at: u64,

    store_window: VecDeque<StoreRec>,
    stats: CoreStats,
    tracer: Option<PipelineTrace>,
    /// Dispatch frontier — "now" for occupancy gauges.
    last_disp: u64,
    /// Committed macro instructions, maintained by the driver via
    /// [`Pipeline::note_inst`] (stamps audit entries).
    cur_inst: u64,
    audit: AuditLog,
}

impl Pipeline {
    /// Creates a pipeline over a fresh hierarchy.
    pub fn new(cfg: CoreConfig, hier: Hierarchy, mode: Mode) -> Pipeline {
        let bpred = BranchPredictor::new(cfg.bpred_history_bits, cfg.btb_entries, cfg.ras_depth);
        Pipeline {
            disp_ring: vec![0; cfg.issue_width],
            commit_ring: vec![0; cfg.commit_width],
            rob_ring: vec![0; cfg.rob_entries],
            iq_ring: vec![0; cfg.iq_entries],
            lq_ring: vec![0; cfg.lq_entries],
            sq_ring: vec![0; cfg.sq_entries],
            alu_ring: vec![0; cfg.alu_units],
            mul_ring: vec![0; cfg.mul_units],
            port_ring: vec![0; cfg.mem_ports],
            div_free: 0,
            sq_drain_free: 0,
            next_fetch_cycle: 0,
            fetch_slots_used: 0,
            redirect_at: 0,
            cur_fetch_line: u64::MAX,
            reg_ready: [0; 32],
            n: 0,
            n_load: 0,
            n_store: 0,
            n_alu: 0,
            n_mul: 0,
            n_mem: 0,
            last_commit: 0,
            barrier_at: 0,
            store_window: VecDeque::new(),
            stats: CoreStats::default(),
            tracer: None,
            last_disp: 0,
            cur_inst: 0,
            audit: AuditLog::default(),
            hier,
            bpred,
            mode,
            cfg,
        }
    }

    /// Enables stage-timestamp tracing for the first `uops` micro-ops.
    pub fn enable_trace(&mut self, uops: usize) {
        if uops > 0 {
            self.tracer = Some(PipelineTrace::new(uops));
        }
    }

    /// The recorded pipeline trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<PipelineTrace> {
        self.tracer.take()
    }

    /// Current pipeline statistics (cycles valid after [`Pipeline::finish`]).
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Memory-hierarchy statistics.
    pub fn mem_stats(&self) -> &MemStats {
        self.hier.stats()
    }

    /// Commit frontier so far — total cycles if the stream ended here.
    /// Valid mid-run, unlike `stats().cycles` (set by `finish`).
    pub fn current_cycles(&self) -> u64 {
        self.last_commit
    }

    /// Updates the committed macro-instruction count used to stamp
    /// audit entries (one store per macro step; call before replaying
    /// its micro-ops).
    pub fn note_inst(&mut self, insts: u64) {
        self.cur_inst = insts;
    }

    /// Hardware-detected violations recorded so far (cache token-bit
    /// checks and LSQ forwarding rules, with PC/component provenance).
    pub fn take_audit(&mut self) -> AuditLog {
        std::mem::take(&mut self.audit)
    }

    /// Occupancy gauges at the current dispatch frontier. Computed
    /// lazily by scanning the ring scoreboards — zero cost unless
    /// sampling is enabled.
    pub fn gauges(&mut self) -> Gauges {
        let now = self.last_disp;
        let count = |ring: &[u64]| ring.iter().filter(|&&c| c > now).count() as u64;
        let mut g = Gauges {
            rob: count(&self.rob_ring),
            iq: count(&self.iq_ring),
            lq: count(&self.lq_ring),
            sq: count(&self.sq_ring),
            ..Gauges::default()
        };
        self.hier.fill_gauges(now, &mut g);
        g
    }

    fn record_rest_audit(&mut self, kind: RestExceptionKind, d: &DynInst, addr: u64) {
        self.audit.record(AuditEntry {
            detector: "rest",
            kind: kind.name(),
            pc: d.pc,
            addr,
            size: 0,
            mode: self.mode.name(),
            component: d.component.name(),
            precise: kind.always_precise() || self.mode.precise_exceptions(),
            insts: self.cur_inst,
        });
    }

    /// Processes one micro-op of the oracle stream.
    pub fn process(&mut self, d: &DynInst, mem: &dyn LineReader, token: &Token) {
        let i = self.n as usize;
        self.stats.uops += 1;
        self.stats.note_component(d.component);
        // Commit frontier before this micro-op: its commit advances the
        // frontier by a non-negative delta, attributed to the stall
        // causes measured below (CPI-stack construction).
        let prev_commit = self.last_commit;
        let mut fetch_stall = 0u64;
        let mut mem_stall = [0u64; 4]; // l1d-miss, l2-miss, dram, rest-check
        let mut store_drain_stall = 0u64;

        // ---- Fetch ----
        if self.fetch_slots_used >= self.cfg.fetch_width {
            self.next_fetch_cycle += 1;
            self.fetch_slots_used = 0;
        }
        let mut f = self.next_fetch_cycle.max(self.redirect_at);
        let branch_stall = f - self.next_fetch_cycle;
        if f > self.next_fetch_cycle {
            self.fetch_slots_used = 0;
        }
        let line = d.pc / 64;
        if line != self.cur_fetch_line {
            let ready = self.hier.fetch_inst(f, d.pc, mem, token);
            let hit_time = f + 2;
            if ready > hit_time {
                self.stats.fetch_stall_cycles += ready - hit_time;
                fetch_stall = ready - hit_time;
                f = ready;
                self.fetch_slots_used = 0;
            }
            self.cur_fetch_line = line;
        }
        self.next_fetch_cycle = f;
        self.fetch_slots_used += 1;

        // ---- Dispatch ----
        let mut disp = (f + self.cfg.frontend_depth).max(self.barrier_at);
        let mut rob_stall = 0u64;
        let mut iq_stall = 0u64;
        let mut lsq_stall = 0u64;
        let rob_limit = self.rob_ring[i % self.cfg.rob_entries];
        if rob_limit > disp {
            self.stats.rob_stall_cycles += rob_limit - disp;
            rob_stall = rob_limit - disp;
            disp = rob_limit;
        }
        let iq_limit = self.iq_ring[i % self.cfg.iq_entries];
        if iq_limit > disp {
            self.stats.iq_stall_cycles += iq_limit - disp;
            iq_stall = iq_limit - disp;
            disp = iq_limit;
        }
        if d.kind == OpKind::Load {
            let lim = self.lq_ring[self.n_load as usize % self.cfg.lq_entries];
            if lim > disp {
                self.stats.lsq_stall_cycles += lim - disp;
                lsq_stall = lim - disp;
                disp = lim;
            }
        } else if d.kind.is_store_like() {
            let lim = self.sq_ring[self.n_store as usize % self.cfg.sq_entries];
            if lim > disp {
                self.stats.lsq_stall_cycles += lim - disp;
                lsq_stall = lim - disp;
                disp = lim;
            }
        }
        let width_limit = self.disp_ring[i % self.cfg.issue_width] + 1;
        disp = disp.max(width_limit);
        self.disp_ring[i % self.cfg.issue_width] = disp;
        self.last_disp = self.last_disp.max(disp);

        // ---- Issue readiness ----
        let mut ready = disp + 1;
        for src in d.srcs.iter().flatten() {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        let serialized = self.cfg.serialize_rest_ops
            && matches!(d.kind, OpKind::Arm | OpKind::Disarm);
        if serialized {
            // The arm/disarm must be the only in-flight instruction:
            // wait for everything older to commit.
            ready = ready.max(self.last_commit);
        }

        // ---- Execute ----
        let (issue, complete, drained): (u64, u64, Option<StoreRec>) = match d.kind {
            OpKind::IntAlu | OpKind::Branch => {
                let u = self.n_alu as usize % self.cfg.alu_units;
                let issue = ready.max(self.alu_ring[u]);
                self.alu_ring[u] = issue + 1;
                self.n_alu += 1;
                (issue, issue + 1, None)
            }
            OpKind::IntMul => {
                let u = self.n_mul as usize % self.cfg.mul_units;
                let issue = ready.max(self.mul_ring[u]);
                self.mul_ring[u] = issue + 1;
                self.n_mul += 1;
                (issue, issue + self.cfg.mul_latency, None)
            }
            OpKind::IntDiv => {
                let issue = ready.max(self.div_free);
                let complete = issue + self.cfg.div_latency;
                self.div_free = complete;
                (issue, complete, None)
            }
            OpKind::Load => {
                let (issue, complete, stall) = self.issue_load(d, ready, mem, token);
                mem_stall = stall;
                (issue, complete, None)
            }
            OpKind::Store | OpKind::Arm | OpKind::Disarm => {
                let mem_ref = d.mem.expect("store-like has a memory reference");
                // Table I LSQ rules against in-flight entries.
                self.check_store_lsq_rules(d, ready);
                let exec_done = ready + 1;
                let rec = StoreRec {
                    addr: mem_ref.addr,
                    size: mem_ref.size,
                    kind: mem_ref.kind,
                    exec_done,
                    drain_done: u64::MAX, // filled at drain below
                };
                (ready, exec_done, Some(rec))
            }
        };

        // IQ entry frees at issue.
        self.iq_ring[i % self.cfg.iq_entries] = issue;

        // ---- Branch resolution ----
        if let Some(info) = d.branch {
            self.stats.branch_lookups += 1;
            let correct = self.bpred.predict_and_train(d.pc, &info);
            if !correct {
                self.stats.branch_mispredicts += 1;
                self.redirect_at = complete + self.cfg.mispredict_penalty;
            }
        }

        // ---- Commit (in order, width-limited) ----
        let commit_floor = self
            .last_commit
            .max(self.commit_ring[i % self.cfg.commit_width] + 1);
        let mut commit = commit_floor.max(complete + 1);
        // Cycles this store holds the ROB head beyond the in-order floor
        // (its own execution latency; debug mode adds the drain wait
        // below). This is the §VI-B "ROB blocked by store" statistic.
        if d.kind.is_store_like() && commit > commit_floor {
            self.stats.rob_blocked_store_cycles += commit - commit_floor;
            store_drain_stall += commit - commit_floor;
        }

        // ---- Store drain & commit policy ----
        if let Some(mut rec) = drained {
            let mem_ref = d.mem.expect("store-like has a memory reference");
            if self.mode.eager_store_commit() {
                // Secure: commit first, write drains afterwards.
                let u = self.n_mem as usize % self.cfg.mem_ports;
                let drain_start = commit.max(self.sq_drain_free).max(self.port_ring[u]);
                self.port_ring[u] = drain_start + 1;
                self.n_mem += 1;
                let out =
                    self.hier
                        .access_data(drain_start, mem_ref.kind, mem_ref.addr, mem_ref.size, mem, token, self.mode);
                rec.drain_done = out.complete_at;
                self.sq_drain_free = drain_start + 1;
                if let Some(kind) = out.exception {
                    self.record_rest_audit(kind, d, mem_ref.addr);
                }
            } else {
                // Debug: the write is issued when the store reaches the
                // ROB head, and commit waits for its completion.
                let oldest_at = (complete + 1).max(self.last_commit);
                let u = self.n_mem as usize % self.cfg.mem_ports;
                let drain_start = oldest_at.max(self.sq_drain_free).max(self.port_ring[u]);
                self.port_ring[u] = drain_start + 1;
                self.n_mem += 1;
                let out =
                    self.hier
                        .access_data(drain_start, mem_ref.kind, mem_ref.addr, mem_ref.size, mem, token, self.mode);
                rec.drain_done = out.complete_at;
                self.sq_drain_free = drain_start + 1;
                if let Some(kind) = out.exception {
                    self.record_rest_audit(kind, d, mem_ref.addr);
                }
                if rec.drain_done > commit {
                    self.stats.rob_blocked_store_cycles += rec.drain_done - commit;
                    store_drain_stall += rec.drain_done - commit;
                    commit = rec.drain_done;
                }
            }
            // SQ entry frees when the write has drained.
            self.sq_ring[self.n_store as usize % self.cfg.sq_entries] = rec.drain_done;
            self.n_store += 1;
            self.store_window.push_back(rec);
            while self.store_window.len() > self.cfg.sq_entries {
                self.store_window.pop_front();
            }
        }

        if serialized {
            // ...and nothing younger may dispatch until it commits.
            self.barrier_at = self.barrier_at.max(commit);
        }
        self.commit_ring[i % self.cfg.commit_width] = commit;
        self.rob_ring[i % self.cfg.rob_entries] = commit;
        if d.kind == OpKind::Load {
            self.lq_ring[self.n_load as usize % self.cfg.lq_entries] = commit;
            self.n_load += 1;
        }
        self.last_commit = commit;

        if let Some(dst) = d.dst {
            if !dst.is_zero() {
                self.reg_ready[dst.index()] = complete;
            }
        }
        if let Some(tracer) = &mut self.tracer {
            tracer.record(TraceEntry {
                seq: self.n,
                pc: d.pc,
                kind: d.kind,
                component: d.component,
                fetch: f,
                dispatch: disp,
                issue,
                complete,
                commit,
            });
        }

        // ---- CPI-stack attribution ----
        // This micro-op advanced the commit frontier by `delta` cycles
        // (commit is monotone in program order, so delta ≥ 0 and the
        // per-uop deltas sum exactly to the final cycle count). Fill
        // the stall buckets most-specific-first, each clamped to what
        // remains unexplained; the residue is useful work (base). The
        // clamped fill keeps the exact-sum property even when stall
        // windows overlap.
        let delta = commit - prev_commit;
        let mut remaining = delta;
        let [l1d_miss, l2_miss, dram, rest_check] = mem_stall;
        for (component, amount) in [
            (CpiComponent::StoreDrain, store_drain_stall),
            (CpiComponent::Dram, dram),
            (CpiComponent::L2Miss, l2_miss),
            (CpiComponent::L1dMiss, l1d_miss),
            (CpiComponent::RestCheck, rest_check),
            (CpiComponent::Lsq, lsq_stall),
            (CpiComponent::Rob, rob_stall),
            (CpiComponent::Iq, iq_stall),
            (CpiComponent::Branch, branch_stall),
            (CpiComponent::FetchStall, fetch_stall),
        ] {
            let take = amount.min(remaining);
            self.stats.cpi.add(component, take);
            remaining -= take;
        }
        self.stats.cpi.add(CpiComponent::Base, remaining);
        self.n += 1;
    }

    /// Load issue: memory disambiguation against the in-flight store
    /// window, store-to-load forwarding (with the REST arm/disarm
    /// exception rule), then the cache access. The third return value
    /// is the CPI-stack latency split `[l1d-miss, l2-miss, dram,
    /// rest-check]` of the cache access (zero when forwarded).
    fn issue_load(
        &mut self,
        d: &DynInst,
        ready: u64,
        mem: &dyn LineReader,
        token: &Token,
    ) -> (u64, u64, [u64; 4]) {
        let mem_ref = d.mem.expect("load has a memory reference");
        let (addr, size) = (mem_ref.addr, mem_ref.size);
        let mut ready = ready;
        let mut forwarded: Option<u64> = None;
        let mut forward_from_arm = false;
        // Scan younger-to-older among in-flight stores.
        for s in self.store_window.iter().rev() {
            if s.drain_done <= ready || !s.overlaps(addr, size) {
                continue;
            }
            match s.kind {
                MemAccessKind::Arm | MemAccessKind::Disarm => {
                    // The load's match is an arm/disarm entry: raising
                    // instead of forwarding keeps the token secret
                    // (§III-B). Timing-wise the load completes (into the
                    // exception path) one cycle after issue.
                    self.stats.lsq_rest_exceptions += 1;
                    forward_from_arm = true;
                    forwarded = Some(ready.max(s.exec_done) + 1);
                }
                MemAccessKind::Store | MemAccessKind::Load => {
                    if s.contains(addr, size) {
                        self.stats.store_forwards += 1;
                        forwarded = Some(ready.max(s.exec_done) + 1);
                    } else {
                        // Partial overlap: wait until the store drains,
                        // then read the cache.
                        self.stats.load_partial_stalls += 1;
                        ready = ready.max(s.drain_done);
                    }
                }
            }
            break; // youngest matching store decides
        }
        if forward_from_arm {
            self.record_rest_audit(RestExceptionKind::ForwardFromArm, d, addr);
        }
        if let Some(complete) = forwarded {
            return (ready, complete, [0; 4]);
        }
        let u = self.n_mem as usize % self.cfg.mem_ports;
        let issue = ready.max(self.port_ring[u]);
        self.port_ring[u] = issue + 1;
        self.n_mem += 1;
        let out = self
            .hier
            .access_data(issue, MemAccessKind::Load, addr, size, mem, token, self.mode);
        if let Some(kind) = out.exception {
            self.record_rest_audit(kind, d, addr);
        }
        (
            issue,
            out.complete_at,
            [
                out.l1d_miss_cycles,
                out.l2_miss_cycles,
                out.dram_cycles,
                out.rest_check_cycles,
            ],
        )
    }

    /// Table I LSQ-column checks for store-like micro-ops entering the
    /// store queue.
    fn check_store_lsq_rules(&mut self, d: &DynInst, at: u64) {
        let mem_ref = d.mem.expect("store-like has a memory reference");
        let (addr, size) = (mem_ref.addr, mem_ref.size);
        let mut detected: Option<RestExceptionKind> = None;
        for s in self.store_window.iter().rev() {
            if s.drain_done <= at || !s.overlaps(addr, size) {
                continue;
            }
            match (d.kind, s.kind) {
                // Store hits an in-flight arm to the same location.
                (OpKind::Store, MemAccessKind::Arm) => {
                    self.stats.lsq_rest_exceptions += 1;
                    detected = Some(RestExceptionKind::StoreHitInflightArm);
                }
                // Double in-flight disarm.
                (OpKind::Disarm, MemAccessKind::Disarm) => {
                    self.stats.lsq_rest_exceptions += 1;
                    detected = Some(RestExceptionKind::DoubleInflightDisarm);
                }
                _ => {}
            }
            break;
        }
        if let Some(kind) = detected {
            self.record_rest_audit(kind, d, addr);
        }
    }

    /// Finalises the statistics (total cycle count, predictor counters).
    pub fn finish(&mut self) -> CoreStats {
        self.stats.cycles = self.last_commit;
        self.stats.branch_lookups = self.bpred.lookups();
        self.stats.branch_mispredicts = self.bpred.mispredicts();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::TokenWidth;
    use rest_isa::{BranchInfo, GuestMemory, Reg};
    use rest_mem::MemConfig;

    fn pipe(mode: Mode) -> (Pipeline, GuestMemory, Token) {
        let hier = Hierarchy::new(MemConfig::isca2018());
        let p = Pipeline::new(CoreConfig::isca2018(), hier, mode);
        let mem = GuestMemory::new();
        let mut rng = StdRng::seed_from_u64(1);
        let token = Token::generate(TokenWidth::B64, &mut rng);
        (p, mem, token)
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let (mut p, mem, tok) = pipe(Mode::Secure);
        for i in 0..10_000u64 {
            let d = DynInst::alu(0x1_0000 + (i % 16) * 4, Some(Reg::A0), [None, None]);
            p.process(&d, &mem, &tok);
        }
        let s = p.finish();
        assert!(s.uipc() > 4.0, "8-wide core must exceed 4 uipc on independent ALU ops, got {}", s.uipc());
    }

    #[test]
    fn dependent_chain_limits_to_one_per_cycle() {
        let (mut p, mem, tok) = pipe(Mode::Secure);
        for i in 0..10_000u64 {
            let d = DynInst::alu(0x1_0000 + (i % 16) * 4, Some(Reg::A0), [Some(Reg::A0), None]);
            p.process(&d, &mem, &tok);
        }
        let s = p.finish();
        assert!(s.uipc() < 1.2, "dependent chain cannot exceed 1 uipc, got {}", s.uipc());
        assert!(s.uipc() > 0.8);
    }

    #[test]
    fn store_to_load_forwarding_beats_cache_latency() {
        let (mut p, mem, tok) = pipe(Mode::Secure);
        // Alternating store/load to the same address: loads forward.
        for i in 0..1000u64 {
            let st = DynInst::store(0x1_0000 + (i % 8) * 8, None, None, 0x5000, 8);
            p.process(&st, &mem, &tok);
            let ld = DynInst::load(0x1_0020, Some(Reg::A1), None, 0x5000, 8);
            p.process(&ld, &mem, &tok);
        }
        let s = p.finish();
        assert!(s.store_forwards > 900, "forwards: {}", s.store_forwards);
    }

    #[test]
    fn forwarding_from_inflight_arm_raises_lsq_exception() {
        let (mut p, mem, tok) = pipe(Mode::Secure);
        let arm = DynInst::arm(0x1_0000, None, 0x6000, 64);
        p.process(&arm, &mem, &tok);
        let ld = DynInst::load(0x1_0004, Some(Reg::A0), None, 0x6010, 8);
        p.process(&ld, &mem, &tok);
        let s = p.finish();
        assert_eq!(s.lsq_rest_exceptions, 1);
    }

    #[test]
    fn debug_mode_store_misses_block_the_rob() {
        // Stores to distinct lines (all misses). In debug mode, commit
        // waits for each write; in secure mode it does not.
        let run = |mode: Mode| {
            let (mut p, mem, tok) = pipe(mode);
            for i in 0..2000u64 {
                let st = DynInst::store(0x1_0000 + (i % 8) * 4, None, None, 0x10_0000 + i * 64, 8);
                p.process(&st, &mem, &tok);
            }
            p.finish()
        };
        let secure = run(Mode::Secure);
        let debug = run(Mode::Debug);
        assert!(
            debug.cycles > secure.cycles * 2,
            "debug {} vs secure {}",
            debug.cycles,
            secure.cycles
        );
        assert!(
            debug.rob_blocked_store_cycles > 3 * secure.rob_blocked_store_cycles.max(1),
            "debug blocked {} vs secure blocked {}",
            debug.rob_blocked_store_cycles,
            secure.rob_blocked_store_cycles
        );
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        let mk = |taken: bool, i: u64| {
            DynInst::branch(
                0x1_0000 + (i % 4) * 4,
                [None, None],
                None,
                BranchInfo {
                    taken,
                    target: 0x1_0000,
                    conditional: true,
                    is_call: false,
                    is_return: false,
                    indirect: false,
                },
            )
        };
        // Pseudo-random outcomes: unpredictable.
        let (mut p, mem, tok) = pipe(Mode::Secure);
        let mut x = 12345u64;
        for i in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.process(&mk(x >> 63 == 1, i), &mem, &tok);
        }
        let random = p.finish();

        let (mut p2, mem2, tok2) = pipe(Mode::Secure);
        for i in 0..5000 {
            p2.process(&mk(true, i), &mem2, &tok2);
        }
        let steady = p2.finish();
        assert!(random.branch_mispredicts > steady.branch_mispredicts * 5);
        assert!(random.cycles > steady.cycles);
    }

    #[test]
    fn cache_misses_slow_the_stream_down() {
        let run = |stride: u64| {
            let (mut p, mem, tok) = pipe(Mode::Secure);
            for i in 0..5000u64 {
                let ld = DynInst::load(0x1_0000 + (i % 8) * 4, Some(Reg::A0), [None, None][0], 0x20_0000 + i * stride, 8)
                    ;
                // Dependent chain so latency is exposed.
                let ld = DynInst {
                    srcs: [Some(Reg::A0), None],
                    ..ld
                };
                p.process(&ld, &mem, &tok);
            }
            p.finish().cycles
        };
        let hits = run(0); // same address: always hits after first
        let misses = run(4096); // new page every time: L2+DRAM misses
        assert!(misses > hits * 3, "misses {misses} vs hits {hits}");
    }

    #[test]
    fn iq_and_rob_stalls_are_counted_under_pressure() {
        let (mut p, mem, tok) = pipe(Mode::Secure);
        // A long dependent divide chain backs everything up.
        for i in 0..5000u64 {
            let d = DynInst::alu(0x1_0000 + (i % 8) * 4, Some(Reg::A0), [Some(Reg::A0), None])
                .with_kind(OpKind::IntDiv);
            p.process(&d, &mem, &tok);
        }
        let s = p.finish();
        assert!(s.iq_stall_cycles + s.rob_stall_cycles > 0);
        assert!(s.uipc() < 0.1);
    }
}
