//! The unified execution interface over the functional emulator.
//!
//! Three kinds of consumers drive the emulator: the timing core steps
//! one macro instruction at a time and materialises the micro-op stream
//! ([`ExecEngine::step`]); functional-only harnesses (attacks,
//! workloads, `restlint --differential`, the perf harness) run whole
//! programs while merely counting micro-ops
//! ([`ExecEngine::run_functional`]); and differential gates drive two
//! engines in lockstep over materialised chunks
//! ([`ExecEngine::run_chunk`]). The trait pins one contract for all of
//! them, so an execution tier (reference decode, decoded-uop cache,
//! superblock traces — see [`crate::ExecTier`]) slots underneath every
//! consumer without any of them changing.
//!
//! Stop handling is part of the contract: once an engine has stopped,
//! every step method returns `false` without executing, and
//! [`ExecEngine::take_stop`] hands over the reason **once** — after it,
//! the engine stays permanently stopped (it never resumes, and a second
//! take returns `None`).

use rest_isa::DynInst;

use crate::emulator::StopReason;

/// Uniform driving interface for functional execution engines.
pub trait ExecEngine {
    /// Executes one macro instruction, appending its micro-ops to
    /// `out`. Returns `false` once the program has stopped.
    fn step(&mut self, out: &mut Vec<DynInst>) -> bool;

    /// Executes one macro instruction without materialising micro-ops
    /// (they are counted for the uop budget, nothing more).
    fn step_quiet(&mut self) -> bool;

    /// Why execution stopped, if it has (and the reason has not been
    /// taken).
    fn stop_reason(&self) -> Option<&StopReason>;

    /// Takes ownership of the stop reason without cloning it. Call
    /// once, after the run loop has exited; a taken engine is
    /// permanently stopped — further steps return `false` and a second
    /// take returns `None`.
    fn take_stop(&mut self) -> Option<StopReason>;

    /// Macro instructions retired so far.
    fn insts(&self) -> u64;

    /// Micro-ops emitted so far (including injected ones).
    fn uops(&self) -> u64;

    /// Current program counter.
    fn pc(&self) -> u64;

    /// Runs the program to completion functionally, discarding the
    /// micro-op stream (fast architectural tests, the perf harness's
    /// guest-IPS measurement). This is where block-dispatch tiers earn
    /// their keep; the default is the plain quiet-step loop.
    fn run_functional(&mut self) -> &StopReason {
        while self.step_quiet() {}
        self.stop_reason().expect("stopped")
    }

    /// Executes **at least** `min_insts` macro instructions (or until
    /// the program stops), appending every micro-op to `out`, and
    /// returns how many were executed. Tiers that retire instructions
    /// in blocks may overshoot; drive the slower engine of a lockstep
    /// pair with the faster engine's return value to stay aligned.
    fn run_chunk(&mut self, out: &mut Vec<DynInst>, min_insts: u64) -> u64 {
        let start = self.insts();
        while self.insts() - start < min_insts && self.step(out) {}
        self.insts() - start
    }
}
