use rand::rngs::StdRng;
use rand::SeedableRng;

use rest_core::{
    ArmedSet, BackendFault, CheckUopKind, Mode, ProtectionBackend, RestException,
    RestExceptionKind, SiteTable, Token,
};
use rest_faults::{FaultHandle, FaultKind, MemEffect};
use rest_isa::{
    BranchInfo, Component, DecodeOptions, DecodedInst, DecodedProgram, DynInst, EcallNum,
    GuestMemory, Inst, Program, Reg, PC_STEP,
};
use rest_runtime::{
    shadow, AsanReport, EcallOutcome, RtEnv, Runtime, Scheme, TrafficRecorder, Violation,
};

use crate::config::{ExecTier, SimConfig};
use crate::exec::ExecEngine;
use crate::profile::CheckCounters;
use crate::superblock::{self, TraceCache, TraceOp};

/// Why the emulated program stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt`.
    Halted,
    /// The program called `exit(code)`.
    Exit(i32),
    /// A memory-safety violation was detected (REST exception or ASan
    /// report, depending on the active scheme).
    Violation(Violation),
    /// The configured micro-op budget was exhausted.
    UopLimit,
    /// The configured guest cycle budget was exhausted (the watchdog
    /// against hung guests; see [`crate::SimConfig::max_cycles`]).
    CycleLimit,
    /// The machine faulted (bad PC, unknown ecall, …).
    Fault(String),
}

/// The functional emulator.
///
/// Executes guest instructions architecturally, ahead of the timing
/// pipeline, producing the oracle [`DynInst`] stream. Protection-scheme
/// behaviour is applied here exactly as the hardened binary would see it:
///
/// * under ASan, every application load/store is preceded by the
///   injected shadow-check micro-ops and validated against shadow
///   memory;
/// * under REST, every access is validated against the architectural
///   [`ArmedSet`] (the content-equivalent of the hardware's token-bit
///   check — see `rest_core::ArmedSet` docs), and `arm`/`disarm`
///   instructions enforce the alignment and armed-state rules of §III-A;
/// * `ecall`s are served by the [`Runtime`], whose recorded traffic is
///   spliced into the stream.
#[derive(Debug)]
pub struct Emulator {
    program: Program,
    regs: [u64; Reg::COUNT],
    pc: u64,
    /// Functional memory image (readable by the timing model's token
    /// detector).
    pub mem: GuestMemory,
    backend: Box<dyn ProtectionBackend>,
    token: Token,
    runtime: Runtime,
    rec: TrafficRecorder,
    /// Decoded-uop cache (`None` on the reference path, which re-decodes
    /// every fetch). Invalidated on ARM/DISARM effects that land in the
    /// code segment.
    decoded: Option<DecodedProgram>,
    decode_opts: DecodeOptions,
    /// Superblock trace store (`Some` only on the trace tier).
    /// Invalidated together with `decoded` on ARM/DISARM code-segment
    /// writes.
    traces: Option<Box<TraceCache>>,
    stop: Option<StopReason>,
    /// Latched by `take_stop`: a taken emulator is permanently stopped.
    /// Without the latch, taking the reason would clear `stop` and make
    /// a later `step`/`step_quiet`/`run_functional` silently resume —
    /// exactly the loss mode consumers mixing the three entry points
    /// would hit.
    stop_taken: bool,
    insts: u64,
    uops: u64,
    max_uops: u64,
    max_cycles: u64,
    /// Shared fault-injection state (also cloned into the hierarchy).
    fault: Option<FaultHandle>,
    /// Fast flag: a `TokenByteFlip` fault is live and arm recording is on.
    fault_flip: bool,
    access_checks: bool,
    check_backend: bool,
    /// Fast flag: the backend stores metadata in the pointer itself, so
    /// addresses must be canonicalised before touching memory. False for
    /// REST/ASan/plain, keeping their address paths untouched.
    tagged_ptrs: bool,
    perfect_hw: bool,
    naive_wide_arm: bool,
    mode: Mode,
    /// Per-allocation-site check attribution (profiling runs only).
    sites: Option<Box<SiteTable>>,
    /// Per-PC check/check-uop counters (profiling runs only).
    pc_checks: Option<Box<CheckCounters>>,
    /// Dense per-PC elision verdicts (index `(pc - CODE_BASE)/PC_STEP`),
    /// built from [`SimConfig::elision`] when the active scheme actually
    /// checks accesses. `None` = nothing elided.
    elide: Option<Box<[bool]>>,
    /// Checks skipped via the elision map.
    elided_checks: u64,
}

impl Emulator {
    /// Creates an emulator for `program` under `cfg`, loading the
    /// program's data segments and generating the system token from
    /// `cfg.token_seed`.
    pub fn new(program: Program, cfg: &SimConfig) -> Emulator {
        let mut rng = StdRng::seed_from_u64(cfg.token_seed);
        let token = Token::generate(cfg.rt.token_width, &mut rng);
        let mut mem = GuestMemory::new();
        for (base, bytes) in program.data_segments() {
            mem.write_bytes(*base, bytes);
        }
        let entry = program.entry();
        let decode_opts = DecodeOptions {
            arm_width: cfg.rt.token_width.bytes(),
            arm_as_store: cfg.rt.perfect_hw,
        };
        let decoded = if cfg.tier == ExecTier::Reference {
            None
        } else {
            Some(DecodedProgram::new(&program, decode_opts))
        };
        let traces =
            (cfg.tier == ExecTier::Trace).then(|| Box::new(TraceCache::new(program.len())));
        let fault = cfg.fault.map(FaultHandle::new);
        let fault_flip = fault
            .as_ref()
            .is_some_and(|f| f.kind() == FaultKind::TokenByteFlip);
        let mut backend = cfg.rt.build_backend(cfg.token_seed);
        if fault_flip {
            // Observe every architectural arm (including the allocator's
            // redzone arms, which never pass through `Inst::Arm`).
            if let Some(armed) = backend.armed_set_mut() {
                armed.set_recording(true);
            }
        }
        let tagged_ptrs = backend.tags_pointers();
        let sites = cfg.profile_guest.then(|| Box::new(SiteTable::new()));
        let pc_checks = cfg
            .profile_guest
            .then(|| Box::new(CheckCounters::new(&program)));
        let access_checks = cfg.rt.scheme == Scheme::Asan && cfg.rt.access_checks;
        // The elision table only matters when the run checks accesses at
        // all; a plain/baseline run has no checks to skip, and building
        // the table there would only invite misattribution.
        let elide = cfg
            .elision
            .as_ref()
            .filter(|_| cfg.rt.checks_in_backend() || access_checks)
            .map(|map| {
                let mut table = vec![false; program.len()].into_boxed_slice();
                for (pc, _) in map.iter() {
                    let idx = pc.wrapping_sub(Program::CODE_BASE) / PC_STEP;
                    if let Some(slot) = table.get_mut(idx as usize) {
                        *slot = true;
                    }
                }
                table
            });
        Emulator {
            program,
            regs: [0; Reg::COUNT],
            pc: entry,
            mem,
            backend,
            token,
            runtime: Runtime::new(cfg.rt.clone()),
            rec: TrafficRecorder::new(),
            decoded,
            decode_opts,
            traces,
            stop: None,
            stop_taken: false,
            insts: 0,
            uops: 0,
            max_uops: cfg.max_uops,
            max_cycles: cfg.max_cycles,
            fault,
            fault_flip,
            access_checks,
            check_backend: cfg.rt.checks_in_backend(),
            tagged_ptrs,
            perfect_hw: cfg.rt.perfect_hw,
            naive_wide_arm: cfg.rt.naive_wide_arm,
            mode: cfg.rt.mode,
            sites,
            pc_checks,
            elide,
            elided_checks: 0,
        }
    }

    /// The system token.
    pub fn token(&self) -> &Token {
        &self.token
    }

    /// The architectural armed-location set (REST backends only).
    pub fn armed(&self) -> Option<&ArmedSet> {
        self.backend.armed_set()
    }

    /// The active protection backend.
    pub fn backend(&self) -> &dyn ProtectionBackend {
        self.backend.as_ref()
    }

    /// Drains the backend's deferred fault (MTE async/asymm semantics:
    /// the first mismatch is latched TFSR-style and surfaced when the
    /// program stops, not at the faulting access).
    pub fn take_deferred(&mut self) -> Option<Violation> {
        self.backend.take_deferred().map(Violation::from)
    }

    /// The guest runtime (for allocator stats and program output).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Drains the per-allocation-site attribution table (profiling runs
    /// only; `None` otherwise or after taking).
    pub fn take_sites(&mut self) -> Option<SiteTable> {
        self.sites.take().map(|b| *b)
    }

    /// Drains the per-PC check counters (profiling runs only; `None`
    /// otherwise or after taking).
    pub fn take_pc_checks(&mut self) -> Option<CheckCounters> {
        self.pc_checks.take().map(|b| *b)
    }

    /// Software component owning `pc` (audit-log provenance).
    pub fn component_at(&self, pc: u64) -> Component {
        self.program.component_at(pc)
    }

    /// The shared fault-injection handle, if a fault is configured.
    pub fn fault_handle(&self) -> Option<&FaultHandle> {
        self.fault.as_ref()
    }

    /// Forces the run to stop with `reason` unless it already stopped
    /// (used by the timing loop's cycle watchdog; the architectural stop
    /// reason, if any — including one already taken — wins).
    pub fn force_stop(&mut self, reason: StopReason) {
        if self.stop.is_none() && !self.stop_taken {
            self.stop = Some(reason);
        }
    }

    /// Applies deferred fault effects queued by the memory hierarchy
    /// (e.g. eviction-time metadata loss): the affected slots leave the
    /// architectural armed set and their stored tokens decay to zero.
    pub fn apply_fault_effects(&mut self) {
        let Some(f) = self.fault.clone() else { return };
        for eff in f.take_effects() {
            match eff {
                MemEffect::DropTokens {
                    line,
                    mask,
                    slot_bytes,
                } => {
                    for i in 0..8u64 {
                        if mask & (1 << i) != 0 {
                            let slot = line + i * slot_bytes;
                            let forgotten = self
                                .backend
                                .armed_set_mut()
                                .is_some_and(|armed| armed.forget(slot));
                            if forgotten {
                                self.mem.fill(slot, slot_bytes, 0);
                                self.invalidate_decoded(slot, slot_bytes);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Decoded-uop cache statistics: `(invalidations, entries re-decoded)`.
    /// Zeroes on the reference path, which has no cache.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        match &self.decoded {
            Some(c) => (c.invalidations(), c.redecoded()),
            None => (0, 0),
        }
    }

    /// Superblock trace statistics: `(traces compiled, traces
    /// invalidated)`. Zeroes off the trace tier.
    pub fn trace_stats(&self) -> (u64, u64) {
        match &self.traces {
            Some(t) => t.stats(),
            None => (0, 0),
        }
    }

    /// Macro instructions retired inside trace dispatch (coverage
    /// telemetry; zero off the trace tier).
    pub fn traced_insts(&self) -> u64 {
        self.traces.as_ref().map_or(0, |t| t.traced_insts())
    }

    /// The runtime traffic recorder's synthetic-PC cursor. The lockstep
    /// differentials assert it advances identically across execution
    /// tiers and sinks (counting mode advances it exactly like
    /// materialising mode).
    pub fn rt_pc_cursor(&self) -> u64 {
        self.rec.pc_cursor()
    }

    /// Current architectural value of `r` (for tests and debuggers).
    pub fn reg_value(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Validates an application access under the active scheme. Returns
    /// the violation to report, if any. `ptr` is the address exactly as
    /// the program computed it (it may carry a tag or PAC in its high
    /// bits); `addr` is its canonical form. `injected` is how many check
    /// micro-ops were emitted for this access (charged to the access PC
    /// and the owning allocation site when profiling is on).
    fn check_app_access(
        &mut self,
        ptr: u64,
        addr: u64,
        size: u64,
        store: bool,
        pc: u64,
        injected: u64,
    ) -> Option<Violation> {
        if self.check_backend {
            // Fail-closed faults: a spuriously-armed slot (flipped
            // metadata bit or glitched LSQ check) raises an exception on
            // a perfectly legal access. REST-only: the fault model
            // targets the token machinery.
            if let Some(f) = &self.fault {
                if self.backend.uses_line_fill_detection() {
                    if let Some(slot) = f.spurious_check(addr, size) {
                        let kind = if store {
                            RestExceptionKind::TokenStore
                        } else {
                            RestExceptionKind::TokenLoad
                        };
                        return Some(Violation::Rest(RestException::new(
                            kind,
                            slot,
                            pc,
                            self.mode.precise_exceptions(),
                        )));
                    }
                }
            }
            if let Some(prof) = self.pc_checks.as_deref_mut() {
                prof.note(pc, injected);
            }
            // `had_deferred` feeds only the site profiler, so skip the
            // backend query on unprofiled runs (the common case).
            let had_deferred = self.sites.is_some() && self.backend.has_deferred();
            let fault = self.backend.check_access(ptr, size, store, pc);
            if let Some(s) = self.sites.as_deref_mut() {
                s.note_check(addr, injected, self.tagged_ptrs);
                if fault.is_some() {
                    s.note_fault(addr);
                } else if !had_deferred && self.backend.has_deferred() {
                    s.note_deferred(addr);
                }
            }
            if let Some(fault) = fault {
                // Fail-open faults: the slot's detection is lost (cleared
                // metadata bit or stuck exception delivery).
                let lost = matches!(&fault, BackendFault::Token(e)
                    if self.fault.as_ref().is_some_and(|f| f.suppress_detection(e.addr)));
                if !lost {
                    return Some(fault.into());
                }
            }
        }
        if self.access_checks {
            if let Some(prof) = self.pc_checks.as_deref_mut() {
                prof.note(pc, injected);
            }
            let classified = shadow::classify_access(&self.mem, addr, size);
            if let Some(s) = self.sites.as_deref_mut() {
                s.note_check(addr, injected, false);
                if classified.is_err() {
                    s.note_fault(addr);
                }
            }
            if let Err(kind) = classified {
                return Some(Violation::Asan(AsanReport {
                    kind,
                    addr,
                    size,
                    pc,
                }));
            }
        }
        None
    }

    /// True when the static elision map proves the check at `pc` cannot
    /// fire. Only application accesses are ever elided — runtime and
    /// instrumentation components never carry injected checks anyway.
    #[inline]
    fn check_elided(&self, pc: u64, component: Component) -> bool {
        if component != Component::App {
            return false;
        }
        match &self.elide {
            Some(t) => {
                let idx = pc.wrapping_sub(Program::CODE_BASE) / PC_STEP;
                t.get(idx as usize).copied().unwrap_or(false)
            }
            None => false,
        }
    }

    /// Records a check skipped via the static elision map, attributing
    /// it to the owning allocation site when profiling is on.
    fn note_elided(&mut self, addr: u64) {
        self.elided_checks += 1;
        if let Some(s) = self.sites.as_deref_mut() {
            s.note_elided(addr);
        }
    }

    /// Checks skipped so far via the static elision map.
    pub fn elided_checks(&self) -> u64 {
        self.elided_checks
    }

    /// Emits the micro-ops of the ASan per-access check (component 3 of
    /// Figure 3), matching the sequence LLVM's pass emits before every
    /// instrumented access: shadow-address arithmetic (shift + add), the
    /// shadow-byte load, the test, and the (never-taken) branch to the
    /// report stub.
    fn emit_asan_check<S: UopSink>(&mut self, out: &mut S, pc: u64, addr: u64) {
        let sh = rest_runtime::shadow_addr(addr);
        out.push(
            DynInst::alu(pc, Some(Reg::TP), [None, None]).with_component(Component::AccessCheck),
        );
        out.push(
            DynInst::alu(pc, Some(Reg::TP), [Some(Reg::TP), None])
                .with_component(Component::AccessCheck),
        );
        out.push(
            DynInst::load(pc, Some(Reg::TP), Some(Reg::TP), sh, 1)
                .with_component(Component::AccessCheck),
        );
        out.push(
            DynInst::alu(pc, Some(Reg::TP), [Some(Reg::TP), None])
                .with_component(Component::AccessCheck),
        );
        out.push(
            DynInst::branch(
                pc,
                [Some(Reg::TP), None],
                None,
                BranchInfo {
                    taken: false,
                    target: pc + PC_STEP,
                    conditional: true,
                    is_call: false,
                    is_return: false,
                    indirect: false,
                },
            )
            .with_component(Component::AccessCheck),
        );
    }

    /// Emits the micro-ops of the backend's per-access check, if the
    /// active backend charges any (MTE synchronous tag fetch, PA
    /// pointer authentication). REST charges zero — its check rides the
    /// cache fill — so this never perturbs the REST uop stream.
    fn emit_backend_check<S: UopSink>(&mut self, out: &mut S, pc: u64, addr: u64, store: bool) {
        for _ in 0..self.backend.check_uops(store) {
            let d = match self.backend.check_uop_kind() {
                // Tag fetch from the packed tag shadow (one byte covers
                // two granules; modelled as a 1-byte load).
                CheckUopKind::TagLoad => {
                    DynInst::load(pc, Some(Reg::TP), None, rest_runtime::tag_addr(addr), 1)
                }
                // PACIA/AUTIA-style recompute-and-compare: ALU work, no
                // memory traffic.
                CheckUopKind::AuthAlu => DynInst::alu(pc, Some(Reg::TP), [None, None]),
            };
            out.push(d.with_component(Component::AccessCheck));
        }
    }

    /// Invalidates decoded entries — and any superblock traces spanning
    /// them — covered by an ARM/DISARM-visible guest write to the
    /// half-open range `[addr, addr + len)`. This is the single choke
    /// point every self-modification path funnels through (ARM/DISARM
    /// execution, perfect-HW disarms, fault-injected token decay), so
    /// stale fused checks can never execute: a trace dies the moment any
    /// byte of its span is rewritten, before the next dispatch.
    fn invalidate_decoded(&mut self, addr: u64, len: u64) {
        if let Some(cache) = self.decoded.as_mut() {
            cache.invalidate_range(&self.program, addr, len);
        }
        if let Some(traces) = self.traces.as_mut() {
            traces.invalidate_range(addr, len);
        }
    }

    /// The generic step loop behind [`Emulator::step`] and
    /// [`Emulator::step_quiet`]: fetches a [`DecodedInst`] (from the
    /// decoded-uop cache, or freshly on the reference path), applies the
    /// architectural effect, and replays the micro-op template with its
    /// dynamic fields patched in.
    fn step_sink<S: UopSink>(&mut self, out: &mut S) -> bool {
        if self.stop.is_some() || self.stop_taken {
            return false;
        }
        if self.uops >= self.max_uops {
            self.stop = Some(StopReason::UopLimit);
            return false;
        }
        // Functional side of the cycle watchdog: one retired micro-op
        // costs at least a fraction of a cycle, so `uops` bounds how long
        // a hung guest can spin. The timing loop additionally enforces
        // the budget against real pipeline cycles.
        if self.max_cycles > 0 && self.uops >= self.max_cycles {
            self.stop = Some(StopReason::CycleLimit);
            return false;
        }
        let pc = self.pc;
        let fetched = match &self.decoded {
            Some(cache) => cache.entry_at(pc).copied(),
            None => DecodedInst::decode_at(&self.program, pc, self.decode_opts),
        };
        let e = match fetched {
            Some(e) => e,
            None => {
                self.stop = Some(StopReason::Fault(format!("bad pc {pc:#x}")));
                return false;
            }
        };
        let before = out.count();
        let mut next_pc = pc + PC_STEP;

        match e.inst {
            Inst::Alu { op, dst, src1, src2 } => {
                let v = op.apply(self.reg(src1), self.reg(src2));
                self.set_reg(dst, v);
                out.push(e.template);
            }
            Inst::AluImm { op, dst, src, imm } => {
                let v = op.apply(self.reg(src), imm as u64);
                self.set_reg(dst, v);
                out.push(e.template);
            }
            Inst::Li { dst, imm } => {
                self.set_reg(dst, imm as u64);
                out.push(e.template);
            }
            Inst::Nop => {
                out.push(e.template);
            }
            Inst::Load {
                dst,
                base,
                offset,
                size,
                signed,
            } => {
                let ptr = self.reg(base).wrapping_add(offset as u64);
                let addr = if self.tagged_ptrs {
                    self.backend.canonical_addr(ptr)
                } else {
                    ptr
                };
                let elided = self.check_elided(pc, e.template.component);
                let check_start = out.count();
                if !elided {
                    if self.access_checks && e.template.component == Component::App {
                        self.emit_asan_check(out, pc, addr);
                    }
                    if self.tagged_ptrs && e.template.component == Component::App {
                        self.emit_backend_check(out, pc, addr, false);
                    }
                }
                let injected = out.count() - check_start;
                out.push(with_mem_addr(e.template, addr));
                let violation = if elided {
                    self.note_elided(addr);
                    None
                } else {
                    self.check_app_access(ptr, addr, size.bytes(), false, pc, injected)
                };
                if let Some(v) = violation {
                    self.stop = Some(StopReason::Violation(v));
                } else {
                    let raw = self.mem.read_scalar(addr, size);
                    let v = if signed {
                        sign_extend(raw, size.bytes())
                    } else {
                        raw
                    };
                    self.set_reg(dst, v);
                }
            }
            Inst::Store {
                src,
                base,
                offset,
                size,
            } => {
                let ptr = self.reg(base).wrapping_add(offset as u64);
                let addr = if self.tagged_ptrs {
                    self.backend.canonical_addr(ptr)
                } else {
                    ptr
                };
                let elided = self.check_elided(pc, e.template.component);
                let check_start = out.count();
                if !elided {
                    if self.access_checks && e.template.component == Component::App {
                        self.emit_asan_check(out, pc, addr);
                    }
                    if self.tagged_ptrs && e.template.component == Component::App {
                        self.emit_backend_check(out, pc, addr, true);
                    }
                }
                let injected = out.count() - check_start;
                out.push(with_mem_addr(e.template, addr));
                let violation = if elided {
                    self.note_elided(addr);
                    None
                } else {
                    self.check_app_access(ptr, addr, size.bytes(), true, pc, injected)
                };
                if let Some(v) = violation {
                    self.stop = Some(StopReason::Violation(v));
                } else {
                    self.mem.write_scalar(addr, self.reg(src), size);
                }
            }
            Inst::Arm { addr } => {
                let a = self.reg(addr);
                out.push(with_mem_addr(e.template, a));
                if !self.perfect_hw {
                    let w = self.token.width().bytes();
                    // A backend without an armed set (MTE/PA) has no
                    // token machinery: the instruction degrades to the
                    // already-pushed memory uop with no architectural
                    // token effect.
                    match self.backend.armed_set_mut().map(|armed| armed.arm(a)) {
                        Some(Ok(())) => {
                            for line in (a & !63..a + w).step_by(64) {
                                self.mem.snapshot_line_pre_image(line);
                            }
                            self.mem.write_bytes(a, self.token.bytes());
                            self.invalidate_decoded(a, w);
                        }
                        Some(Err(kind)) => {
                            self.stop = Some(StopReason::Violation(Violation::Rest(
                                RestException::new(kind, a, pc, true),
                            )));
                        }
                        None => {}
                    }
                }
            }
            Inst::Disarm { addr } => {
                let a = self.reg(addr);
                out.push(with_mem_addr(e.template, a));
                let w = self.token.width().bytes();
                if self.perfect_hw {
                    let base = a & !(w - 1);
                    self.mem.fill(base, w, 0);
                    self.invalidate_decoded(base, w);
                } else {
                    match self.backend.armed_set_mut().map(|armed| armed.disarm(a)) {
                        Some(Ok(())) => {
                            for line in (a & !63..a + w).step_by(64) {
                                self.mem.snapshot_line_pre_image(line);
                            }
                            self.mem.fill(a, w, 0);
                            self.invalidate_decoded(a, w);
                        }
                        Some(Err(kind)) => {
                            self.stop = Some(StopReason::Violation(Violation::Rest(
                                RestException::new(
                                    kind,
                                    a,
                                    pc,
                                    kind.always_precise() || self.mode.precise_exceptions(),
                                ),
                            )));
                        }
                        None => {}
                    }
                }
            }
            Inst::Branch {
                cond, src1, src2, ..
            } => {
                let taken = cond.eval(self.reg(src1), self.reg(src2));
                if taken {
                    next_pc = e.target;
                }
                out.push(with_branch_outcome(e.template, taken, next_pc));
            }
            Inst::Jal { dst, .. } => {
                self.set_reg(dst, pc + PC_STEP);
                next_pc = e.target;
                out.push(e.template);
            }
            Inst::Jalr { dst, base, offset } => {
                let t = self.reg(base).wrapping_add(offset as u64);
                self.set_reg(dst, pc + PC_STEP);
                next_pc = t;
                out.push(with_branch_outcome(e.template, true, t));
            }
            Inst::Ecall => {
                out.push(e.template);
                let num = self.reg(Reg::A7);
                let args = [
                    self.reg(Reg::A0),
                    self.reg(Reg::A1),
                    self.reg(Reg::A2),
                    self.reg(Reg::A3),
                    self.reg(Reg::A4),
                    self.reg(Reg::A5),
                ];
                match EcallNum::from_u64(num) {
                    None => {
                        self.stop = Some(StopReason::Fault(format!("unknown ecall {num}")));
                    }
                    Some(n) => {
                        // The runtime mutates the machine through
                        // disjoint field borrows (no allocator swap);
                        // its recorded traffic — materialised or merely
                        // counted, matching the sink — is spliced into
                        // the stream afterwards.
                        self.rec.set_materialize(S::MATERIALIZE);
                        let Emulator {
                            runtime,
                            mem,
                            rec,
                            backend,
                            token,
                            check_backend,
                            perfect_hw,
                            naive_wide_arm,
                            sites,
                            ..
                        } = self;
                        let mut env = RtEnv {
                            mem,
                            rec,
                            backend: backend.as_mut(),
                            token,
                            check_backend: *check_backend,
                            check_shadow: false,
                            perfect_hw: *perfect_hw,
                            naive_wide_arm: *naive_wide_arm,
                            guest_pc: pc,
                            sites: sites.as_deref_mut(),
                        };
                        let outcome = runtime.ecall(n, args, &mut env);
                        out.splice(&mut self.rec);
                        match outcome {
                            EcallOutcome::Done(v) => self.set_reg(Reg::A0, v),
                            EcallOutcome::Exit(code) => {
                                self.stop = Some(StopReason::Exit(code));
                            }
                            EcallOutcome::Violation(v) => {
                                self.stop = Some(StopReason::Violation(v));
                            }
                        }
                    }
                }
            }
            Inst::Halt => {
                self.stop = Some(StopReason::Halted);
                out.push(e.template);
            }
        }

        if self.fault_flip {
            self.process_arm_faults();
        }
        self.pc = next_pc;
        self.insts += 1;
        self.uops += out.count() - before;
        true
    }

    /// Drains arms recorded this step and, on the trigger arm, flips one
    /// bit of the stored token in guest memory. The slot leaves the
    /// armed set (`forget`, not an architectural disarm): the resident
    /// value no longer matches the token, so the content-based detector
    /// can never fire on it again — the canonical missed-detection case.
    fn process_arm_faults(&mut self) {
        let Some(f) = self.fault.clone() else { return };
        let w = self.token.width().bytes();
        let recent = match self.backend.armed_set_mut() {
            Some(armed) => armed.take_recent_arms(),
            None => return,
        };
        for slot in recent {
            if let Some(bit) = f.arm_event(slot, w) {
                let addr = slot + bit / 8;
                let byte = self.mem.read_scalar(addr, rest_isa::MemSize::B1);
                self.mem
                    .write_scalar(addr, byte ^ (1 << (bit % 8)), rest_isa::MemSize::B1);
                if let Some(armed) = self.backend.armed_set_mut() {
                    armed.forget(slot);
                    // Single-shot: stop paying for arm recording.
                    armed.set_recording(false);
                }
                self.invalidate_decoded(addr, 1);
                self.fault_flip = false;
            }
        }
    }

    /// Compiles (or marks dead) the superblock headed at entry `idx`.
    fn compile_trace_at(&mut self, idx: usize) {
        let Some(decoded) = self.decoded.as_ref() else {
            return;
        };
        let cfg = superblock::TraceCompileCfg {
            access_checks: self.access_checks,
            tagged_ptrs: self.tagged_ptrs,
            load_check_uops: u64::from(self.backend.check_uops(false)),
            store_check_uops: u64::from(self.backend.check_uops(true)),
            elide: self.elide.as_deref(),
        };
        let compiled = superblock::compile(decoded, idx, &cfg);
        let cache = self.traces.as_mut().expect("trace tier");
        match compiled {
            Some(t) => cache.install(idx, t),
            None => cache.mark_dead(idx),
        }
    }

    /// Trace-aware run loop (the trace tier's whole-run dispatcher):
    /// executes compiled superblocks at hot heads and falls back to the
    /// exact per-step path everywhere else. Runs at least `min_insts`
    /// macro instructions (a trace pass may overshoot) or until the
    /// program stops; returns how many were executed.
    ///
    /// Heads heat up on arrival via *any* control transfer (the PC is
    /// not the sequential successor of the previously executed
    /// instruction) — loop headers arrive backward, but function entries
    /// and post-call continuations arrive forward via `jal`/`jalr` and
    /// are every bit as hot in call-heavy code. Sequential arrivals skip
    /// the trace probe entirely, so straight-line fallback execution
    /// pays nothing for the tier. Fault-injection runs pin every step to
    /// the per-step path: the per-step arm-fault hook must see each
    /// instruction.
    fn run_traced<S: UopSink>(&mut self, out: &mut S, min_insts: u64) -> u64 {
        let start = self.insts;
        // PC of the most recently executed instruction (`u64::MAX` =
        // none yet, which makes the first iteration a transfer arrival).
        let mut prev = u64::MAX;
        while self.insts - start < min_insts {
            let pc = self.pc;
            if pc != prev.wrapping_add(PC_STEP) && self.fault.is_none() {
                if let Some(idx) = self.traces.as_ref().and_then(|t| t.index_of(pc)) {
                    let cache = self.traces.as_mut().expect("trace tier");
                    let mut ready = cache.has(idx);
                    if !ready && cache.bump(idx) {
                        self.compile_trace_at(idx);
                        ready = self.traces.as_ref().expect("trace tier").has(idx);
                    }
                    if ready {
                        let (ran, last_pc) = self.run_trace(idx, out);
                        if ran > 0 {
                            prev = last_pc;
                            continue;
                        }
                    }
                }
            }
            prev = pc;
            if !self.step_sink(out) {
                break;
            }
        }
        self.insts - start
    }

    /// Executes the trace installed at head `idx` until a side exit,
    /// violation, budget precondition failure, or (for non-looping
    /// traces) the end of the straight line. Returns `(instructions
    /// executed, PC of the last executed instruction)`; zero executed
    /// means the caller must fall back to the per-step path to make
    /// progress.
    fn run_trace<S: UopSink>(&mut self, idx: usize, out: &mut S) -> (u64, u64) {
        if self.stop.is_some() || self.stop_taken {
            return (0, 0);
        }
        let Some(t) = self.traces.as_mut().expect("trace tier").checkout(idx) else {
            return (0, 0);
        };
        let head = t.head;
        let n = t.ops.len();
        let mut insts_run = 0u64;
        let mut local_uops = 0u64;
        let mut last_pc = head;
        'pass: loop {
            // Budget precondition for one full pass: every instruction
            // emits at least one micro-op, so if the whole pass fits
            // under the budget, no per-step budget stop could have fired
            // mid-trace; anything tighter falls back to the exact
            // per-step path (which also handles the cycle watchdog).
            let projected = self.uops + local_uops + t.total_uops;
            if projected > self.max_uops || (self.max_cycles > 0 && projected > self.max_cycles) {
                // `self.pc` still equals `head`: nothing of this pass ran.
                break 'pass;
            }
            let mut i = 0usize;
            'line: while i < n {
                let pc = head + i as u64 * PC_STEP;
                // Every op that starts executing retires (violations
                // included), exactly as in `step_sink`.
                insts_run += 1;
                match t.ops[i] {
                    TraceOp::Alu { op, dst, src1, src2 } => {
                        let v = op.apply(self.reg(src1), self.reg(src2));
                        self.set_reg(dst, v);
                        local_uops += 1;
                        if S::MATERIALIZE {
                            out.push(t.templates[i]);
                        }
                    }
                    TraceOp::AluImm { op, dst, src, imm } => {
                        let v = op.apply(self.reg(src), imm as u64);
                        self.set_reg(dst, v);
                        local_uops += 1;
                        if S::MATERIALIZE {
                            out.push(t.templates[i]);
                        }
                    }
                    TraceOp::Li { dst, imm } => {
                        self.set_reg(dst, imm as u64);
                        local_uops += 1;
                        if S::MATERIALIZE {
                            out.push(t.templates[i]);
                        }
                    }
                    TraceOp::Nop => {
                        local_uops += 1;
                        if S::MATERIALIZE {
                            out.push(t.templates[i]);
                        }
                    }
                    TraceOp::Load {
                        dst,
                        base,
                        offset,
                        size,
                        signed,
                        app,
                        elided,
                        injected,
                    } => {
                        let ptr = self.reg(base).wrapping_add(offset as u64);
                        let addr = if self.tagged_ptrs {
                            self.backend.canonical_addr(ptr)
                        } else {
                            ptr
                        };
                        if S::MATERIALIZE && !elided {
                            if self.access_checks && app {
                                self.emit_asan_check(out, pc, addr);
                            }
                            if self.tagged_ptrs && app {
                                self.emit_backend_check(out, pc, addr, false);
                            }
                        }
                        local_uops += injected + 1;
                        if S::MATERIALIZE {
                            out.push(with_mem_addr(t.templates[i], addr));
                        }
                        let violation = if elided {
                            self.note_elided(addr);
                            None
                        } else {
                            self.check_app_access(ptr, addr, size.bytes(), false, pc, injected)
                        };
                        if let Some(v) = violation {
                            self.stop = Some(StopReason::Violation(v));
                            self.pc = pc + PC_STEP;
                            last_pc = pc;
                            break 'pass;
                        }
                        let raw = self.mem.read_scalar(addr, size);
                        let v = if signed {
                            sign_extend(raw, size.bytes())
                        } else {
                            raw
                        };
                        self.set_reg(dst, v);
                    }
                    TraceOp::Store {
                        src,
                        base,
                        offset,
                        size,
                        app,
                        elided,
                        injected,
                    } => {
                        let ptr = self.reg(base).wrapping_add(offset as u64);
                        let addr = if self.tagged_ptrs {
                            self.backend.canonical_addr(ptr)
                        } else {
                            ptr
                        };
                        if S::MATERIALIZE && !elided {
                            if self.access_checks && app {
                                self.emit_asan_check(out, pc, addr);
                            }
                            if self.tagged_ptrs && app {
                                self.emit_backend_check(out, pc, addr, true);
                            }
                        }
                        local_uops += injected + 1;
                        if S::MATERIALIZE {
                            out.push(with_mem_addr(t.templates[i], addr));
                        }
                        let violation = if elided {
                            self.note_elided(addr);
                            None
                        } else {
                            self.check_app_access(ptr, addr, size.bytes(), true, pc, injected)
                        };
                        if let Some(v) = violation {
                            self.stop = Some(StopReason::Violation(v));
                            self.pc = pc + PC_STEP;
                            last_pc = pc;
                            break 'pass;
                        }
                        self.mem.write_scalar(addr, self.reg(src), size);
                    }
                    TraceOp::Branch {
                        cond,
                        src1,
                        src2,
                        target,
                    } => {
                        let taken = cond.eval(self.reg(src1), self.reg(src2));
                        let next_pc = if taken { target } else { pc + PC_STEP };
                        local_uops += 1;
                        if S::MATERIALIZE {
                            out.push(with_branch_outcome(t.templates[i], taken, next_pc));
                        }
                        if taken {
                            last_pc = pc;
                            if target == head {
                                // Loop specialisation: a loop-closing
                                // branch re-enters op 0 after the budget
                                // recheck, without leaving dispatch.
                                continue 'pass;
                            }
                            if target > pc {
                                // Forward target inside the trace:
                                // continue this pass at the target op
                                // (skipping ops only — the pass's uop
                                // total stays below `total_uops`, so
                                // the budget precondition still holds).
                                let off = target - head;
                                let j = (off / PC_STEP) as usize;
                                if off % PC_STEP == 0 && j < n {
                                    i = j;
                                    continue 'line;
                                }
                            }
                            self.pc = target;
                            break 'pass;
                        }
                    }
                    TraceOp::Jal { dst, target } => {
                        self.set_reg(dst, pc + PC_STEP);
                        local_uops += 1;
                        if S::MATERIALIZE {
                            out.push(t.templates[i]);
                        }
                        last_pc = pc;
                        self.pc = target;
                        break 'pass;
                    }
                    TraceOp::Jalr { dst, base, offset } => {
                        // Read `base` before writing `dst` (they may be
                        // the same register), exactly like `step_sink`.
                        let target = self.reg(base).wrapping_add(offset as u64);
                        self.set_reg(dst, pc + PC_STEP);
                        local_uops += 1;
                        if S::MATERIALIZE {
                            out.push(with_branch_outcome(t.templates[i], true, target));
                        }
                        last_pc = pc;
                        self.pc = target;
                        break 'pass;
                    }
                }
                i += 1;
            }
            // Fell off the straight line without a side exit.
            self.pc = head + n as u64 * PC_STEP;
            last_pc = head + (n as u64 - 1) * PC_STEP;
            break 'pass;
        }
        self.insts += insts_run;
        self.uops += local_uops;
        let cache = self.traces.as_mut().expect("trace tier");
        cache.count_traced(insts_run);
        cache.restore(idx, t);
        (insts_run, last_pc)
    }
}

impl ExecEngine for Emulator {
    fn step(&mut self, out: &mut Vec<DynInst>) -> bool {
        self.step_sink(out)
    }

    fn step_quiet(&mut self) -> bool {
        let mut sink = CountingSink::default();
        self.step_sink(&mut sink)
    }

    fn stop_reason(&self) -> Option<&StopReason> {
        self.stop.as_ref()
    }

    fn take_stop(&mut self) -> Option<StopReason> {
        self.stop_taken = true;
        self.stop.take()
    }

    fn insts(&self) -> u64 {
        self.insts
    }

    fn uops(&self) -> u64 {
        self.uops
    }

    fn pc(&self) -> u64 {
        self.pc
    }

    fn run_functional(&mut self) -> &StopReason {
        let mut sink = CountingSink::default();
        if self.traces.is_some() {
            self.run_traced(&mut sink, u64::MAX);
        } else {
            while self.step_sink(&mut sink) {}
        }
        self.stop.as_ref().expect("stopped")
    }

    fn run_chunk(&mut self, out: &mut Vec<DynInst>, min_insts: u64) -> u64 {
        if self.traces.is_some() {
            self.run_traced(out, min_insts)
        } else {
            let start = self.insts;
            while self.insts - start < min_insts && self.step_sink(out) {}
            self.insts - start
        }
    }
}

/// Destination for the functional micro-op stream. The timing path
/// materialises [`DynInst`]s into a `Vec`; functional-only runs count
/// them instead, skipping all per-uop heap traffic.
trait UopSink {
    /// Whether runtime services should materialise their recorded
    /// traffic (`false` lets the recorder count instead).
    const MATERIALIZE: bool;
    /// Accepts one micro-op.
    fn push(&mut self, d: DynInst);
    /// Micro-ops accepted so far.
    fn count(&self) -> u64;
    /// Splices the runtime recorder's traffic into the stream.
    fn splice(&mut self, rec: &mut TrafficRecorder);
}

impl UopSink for Vec<DynInst> {
    const MATERIALIZE: bool = true;

    #[inline]
    fn push(&mut self, d: DynInst) {
        Vec::push(self, d);
    }

    fn count(&self) -> u64 {
        self.len() as u64
    }

    fn splice(&mut self, rec: &mut TrafficRecorder) {
        rec.drain_into(self);
    }
}

/// Counts micro-ops without building them (the uop budget still needs
/// the number).
#[derive(Debug, Default)]
struct CountingSink {
    n: u64,
}

impl UopSink for CountingSink {
    const MATERIALIZE: bool = false;

    #[inline]
    fn push(&mut self, _d: DynInst) {
        self.n += 1;
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn splice(&mut self, rec: &mut TrafficRecorder) {
        self.n += rec.take_recorded();
    }
}

/// Replay-time patch: resolves the template's memory address.
#[inline]
fn with_mem_addr(mut d: DynInst, addr: u64) -> DynInst {
    if let Some(m) = d.mem.as_mut() {
        m.addr = addr;
    }
    d
}

/// Replay-time patch: resolves the template's branch outcome.
#[inline]
fn with_branch_outcome(mut d: DynInst, taken: bool, target: u64) -> DynInst {
    if let Some(b) = d.branch.as_mut() {
        b.taken = taken;
        b.target = target;
    }
    d
}

fn sign_extend(v: u64, bytes: u64) -> u64 {
    let bits = bytes * 8;
    if bits >= 64 {
        return v;
    }
    let shift = 64 - bits;
    (((v << shift) as i64) >> shift) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_isa::{OpKind, ProgramBuilder};
    use rest_runtime::RtConfig;

    fn run(program: Program, rt: RtConfig) -> (Emulator, StopReason) {
        let cfg = SimConfig::isca2018(rt);
        let mut emu = Emulator::new(program, &cfg);
        emu.run_functional();
        let stop = emu.take_stop().expect("stopped");
        (emu, stop)
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 0);
        p.li(Reg::T0, 100);
        p.bind(lp);
        p.add(Reg::A0, Reg::A0, Reg::T0);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, lp);
        p.halt();
        let (emu, stop) = run(p.build(), RtConfig::plain());
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(emu.regs[Reg::A0.index()], 5050);
        assert_eq!(emu.insts(), 2 + 3 * 100 + 1);
    }

    #[test]
    fn loads_and_stores_round_trip_with_sign_extension() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::T0, 0x30_0000);
        p.li(Reg::T1, -2);
        p.store(Reg::T1, Reg::T0, 0, rest_isa::MemSize::B2);
        p.load_signed(Reg::A0, Reg::T0, 0, rest_isa::MemSize::B2);
        p.load(Reg::A1, Reg::T0, 0, rest_isa::MemSize::B2);
        p.halt();
        let (emu, _) = run(p.build(), RtConfig::plain());
        assert_eq!(emu.regs[Reg::A0.index()], (-2i64) as u64);
        assert_eq!(emu.regs[Reg::A1.index()], 0xfffe);
    }

    #[test]
    fn malloc_ecall_allocates_and_programs_can_use_it() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S0, Reg::A0);
        p.li(Reg::T0, 42);
        p.sd(Reg::T0, Reg::S0, 0);
        p.ld(Reg::A0, Reg::S0, 0);
        p.li(Reg::A0, 0);
        p.ecall(EcallNum::Exit);
        let (emu, stop) = run(p.build(), RtConfig::rest(Mode::Secure, false));
        assert_eq!(stop, StopReason::Exit(0));
        assert_eq!(emu.runtime().allocator().stats().allocs, 1);
    }

    #[test]
    fn rest_catches_heap_overflow_in_guest_code() {
        // Allocate 64 bytes, then walk past the end one dword at a time.
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S0, Reg::A0);
        p.li(Reg::T0, 0); // index
        p.bind(lp);
        p.add(Reg::T1, Reg::S0, Reg::T0);
        p.ld(Reg::A1, Reg::T1, 0);
        p.addi(Reg::T0, Reg::T0, 8);
        p.li(Reg::T2, 4096);
        p.blt(Reg::T0, Reg::T2, lp);
        p.halt();
        let (_, stop) = run(p.build(), RtConfig::rest(Mode::Secure, false));
        match stop {
            StopReason::Violation(Violation::Rest(e)) => {
                assert_eq!(e.kind, RestExceptionKind::TokenLoad);
                assert!(!e.precise, "secure mode reports imprecisely");
            }
            other => panic!("expected REST violation, got {other:?}"),
        }
    }

    #[test]
    fn asan_catches_the_same_overflow_with_injected_checks() {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S0, Reg::A0);
        p.li(Reg::T0, 0);
        p.bind(lp);
        p.add(Reg::T1, Reg::S0, Reg::T0);
        p.ld(Reg::A1, Reg::T1, 0);
        p.addi(Reg::T0, Reg::T0, 8);
        p.li(Reg::T2, 4096);
        p.blt(Reg::T0, Reg::T2, lp);
        p.halt();
        let cfg = SimConfig::isca2018(RtConfig::asan());
        let mut emu = Emulator::new(p.build(), &cfg);
        let mut uops = Vec::new();
        while emu.step(&mut uops) {}
        match emu.stop_reason() {
            Some(StopReason::Violation(Violation::Asan(r))) => {
                assert_eq!(r.kind, rest_runtime::AsanReportKind::HeapRedzone);
            }
            other => panic!("expected ASan violation, got {other:?}"),
        }
        // The injected check uops must be present and attributed.
        assert!(uops
            .iter()
            .any(|u| u.component == Component::AccessCheck));
    }

    #[test]
    fn plain_build_lets_the_overflow_through() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 64);
        p.ecall(EcallNum::Malloc);
        p.mv(Reg::S0, Reg::A0);
        p.ld(Reg::A1, Reg::S0, 256); // straight past the end
        p.halt();
        let (_, stop) = run(p.build(), RtConfig::plain());
        assert_eq!(stop, StopReason::Halted);
    }

    #[test]
    fn guest_arm_disarm_work_and_misalignment_faults() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::T0, 0x30_0040);
        p.arm(Reg::T0);
        p.disarm(Reg::T0);
        p.li(Reg::T0, 0x30_0041); // misaligned
        p.arm(Reg::T0);
        p.halt();
        let (_, stop) = run(p.build(), RtConfig::rest(Mode::Secure, true));
        match stop {
            StopReason::Violation(Violation::Rest(e)) => {
                assert_eq!(e.kind, RestExceptionKind::MisalignedArm);
                assert!(e.precise, "invalid REST instruction exceptions are precise");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disarm_of_unarmed_location_faults() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::T0, 0x30_0040);
        p.disarm(Reg::T0);
        p.halt();
        let (_, stop) = run(p.build(), RtConfig::rest(Mode::Secure, true));
        match stop {
            StopReason::Violation(Violation::Rest(e)) => {
                assert_eq!(e.kind, RestExceptionKind::DisarmUnarmed);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn perfect_hw_turns_arms_into_stores_and_disables_detection() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::T0, 0x30_0040);
        p.arm(Reg::T0);
        p.ld(Reg::A0, Reg::T0, 0); // would fault on real REST hardware
        p.halt();
        let cfg = SimConfig::isca2018(RtConfig::rest_perfect(true));
        let mut emu = Emulator::new(p.build(), &cfg);
        let mut uops = Vec::new();
        while emu.step(&mut uops) {}
        assert_eq!(emu.stop_reason(), Some(&StopReason::Halted));
        assert!(uops.iter().all(|u| u.kind != OpKind::Arm));
    }

    #[test]
    fn uop_limit_stops_infinite_loops() {
        let mut p = ProgramBuilder::new();
        let lp = p.label_here();
        p.j(lp);
        let mut cfg = SimConfig::isca2018(RtConfig::plain());
        cfg.max_uops = 1000;
        let mut emu = Emulator::new(p.build(), &cfg);
        let mut buf = Vec::new();
        while emu.step(&mut buf) {
            buf.clear();
        }
        assert_eq!(emu.stop_reason(), Some(&StopReason::UopLimit));
    }

    #[test]
    fn ecall_traffic_is_spliced_with_allocator_attribution() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 128);
        p.ecall(EcallNum::Malloc);
        p.halt();
        let cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, false));
        let mut emu = Emulator::new(p.build(), &cfg);
        let mut uops = Vec::new();
        while emu.step(&mut uops) {}
        let arms = uops.iter().filter(|u| u.kind == OpKind::Arm).count();
        assert!(arms >= 2, "redzone arms must appear in the stream: {arms}");
        assert!(uops
            .iter()
            .any(|u| u.component == Component::Allocator && u.kind == OpKind::Arm));
    }

    /// Satellite: the `take_stop` contract. Taking the stop reason must
    /// leave the engine permanently stopped — no consumer idiom (step,
    /// step_quiet, run_functional's loop) may resume it, no later stop
    /// may overwrite history, and a second take returns `None`.
    #[test]
    fn take_stop_permanently_stops_the_engine() {
        let mut p = ProgramBuilder::new();
        p.li(Reg::A0, 0);
        p.ecall(EcallNum::Exit);
        p.halt(); // would run if the engine wrongly resumed
        let cfg = SimConfig::isca2018(RtConfig::plain());
        let mut emu = Emulator::new(p.build(), &cfg);
        while emu.step_quiet() {}
        let insts = emu.insts();
        assert_eq!(emu.take_stop(), Some(StopReason::Exit(0)));

        // Taken: the reason is gone and the engine refuses to execute.
        assert_eq!(emu.take_stop(), None, "second take must return None");
        assert_eq!(emu.stop_reason(), None);
        assert!(!emu.step_quiet(), "step_quiet must not resume a taken engine");
        let mut buf = Vec::new();
        assert!(!emu.step(&mut buf), "step must not resume a taken engine");
        assert!(buf.is_empty(), "a refused step must not emit micro-ops");
        assert_eq!(emu.insts(), insts, "no instruction may retire after take");

        // A forced stop after consumption must not resurrect the engine
        // with a different history either.
        emu.force_stop(StopReason::Halted);
        assert_eq!(emu.stop_reason(), None, "taken engines ignore force_stop");
    }

    fn hot_loop_program(iters: i64) -> Program {
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 0);
        p.li(Reg::T0, iters);
        p.bind(lp);
        p.add(Reg::A0, Reg::A0, Reg::T0);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, lp);
        p.halt();
        p.build()
    }

    #[test]
    fn trace_tier_compiles_hot_loops_and_matches_the_fast_path() {
        let mut cfg = SimConfig::isca2018(RtConfig::plain());
        cfg.tier = ExecTier::Trace;
        let mut traced = Emulator::new(hot_loop_program(500), &cfg);
        traced.run_functional();
        let (compiled, _) = traced.trace_stats();
        assert!(compiled >= 1, "a 500-iteration loop must compile a trace");

        let fast_cfg = SimConfig::isca2018(RtConfig::plain());
        let mut fast = Emulator::new(hot_loop_program(500), &fast_cfg);
        fast.run_functional();
        assert_eq!(traced.insts(), fast.insts());
        assert_eq!(traced.uops(), fast.uops());
        assert_eq!(traced.pc(), fast.pc());
        assert_eq!(traced.regs[Reg::A0.index()], fast.regs[Reg::A0.index()]);
        assert_eq!(traced.take_stop(), fast.take_stop());
    }

    #[test]
    fn trace_tier_respects_the_uop_budget_exactly() {
        // The budget must stop the trace tier at the same instruction
        // the per-step path stops at, even when the limit lands in the
        // middle of a would-be trace pass.
        for max_uops in [50, 97, 403, 1000] {
            let mut cfg = SimConfig::isca2018(RtConfig::plain());
            cfg.max_uops = max_uops;
            cfg.tier = ExecTier::Trace;
            let mut traced = Emulator::new(hot_loop_program(10_000), &cfg);
            traced.run_functional();

            let mut cfg = SimConfig::isca2018(RtConfig::plain());
            cfg.max_uops = max_uops;
            let mut fast = Emulator::new(hot_loop_program(10_000), &cfg);
            fast.run_functional();

            assert_eq!(traced.insts(), fast.insts(), "budget {max_uops}");
            assert_eq!(traced.uops(), fast.uops(), "budget {max_uops}");
            assert_eq!(traced.take_stop(), fast.take_stop(), "budget {max_uops}");
        }
    }

    #[test]
    fn arm_invalidates_overlapping_traces_before_the_next_dispatch() {
        // A hot loop that, once warmed, ARMs a slot *inside the code
        // segment image of its own body* would execute stale fused
        // checks if invalidation missed. Here we drive the invalidation
        // path directly: run a loop hot, then arm a slot covering its
        // span and observe the trace cache drop it.
        let mut cfg = SimConfig::isca2018(RtConfig::rest(Mode::Secure, true));
        cfg.tier = ExecTier::Trace;
        let mut p = ProgramBuilder::new();
        let lp = p.new_label();
        p.li(Reg::A0, 0);
        p.li(Reg::T0, 200);
        p.bind(lp);
        p.add(Reg::A0, Reg::A0, Reg::T0);
        p.addi(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, lp);
        // After the loop goes cold: arm + disarm a heap slot. The
        // addresses are data, not code, so the *code-segment clamp*
        // inside invalidate_range must keep the trace alive.
        p.li(Reg::T1, 0x30_0040);
        p.arm(Reg::T1);
        p.disarm(Reg::T1);
        p.halt();
        let mut emu = Emulator::new(p.build(), &cfg);
        emu.run_functional();
        let (compiled, invalidated) = emu.trace_stats();
        assert!(compiled >= 1, "loop must compile");
        assert_eq!(
            invalidated, 0,
            "data-address arms must not kill code traces (clamp to code segment)"
        );
        assert_eq!(emu.take_stop(), Some(StopReason::Halted));

        // Now the direct invalidation check at the cache level: a write
        // over the loop body's span must drop the trace.
        let mut cache = crate::superblock::TraceCache::new(8);
        let decoded = DecodedProgram::new(
            &hot_loop_program(5),
            DecodeOptions {
                arm_width: 8,
                arm_as_store: false,
            },
        );
        let compile_cfg = superblock::TraceCompileCfg {
            access_checks: false,
            tagged_ptrs: false,
            load_check_uops: 0,
            store_check_uops: 0,
            elide: None,
        };
        let t = superblock::compile(&decoded, 2, &compile_cfg).expect("loop body compiles");
        cache.install(2, t);
        assert!(cache.has(2));
        cache.invalidate_range(Program::CODE_BASE + 2 * PC_STEP, 1);
        assert!(!cache.has(2), "overlapping write must invalidate the trace");
    }
}
