use std::sync::Arc;

use rest_core::ElisionMap;
use rest_faults::FaultSpec;
use rest_mem::MemConfig;
use rest_runtime::RtConfig;

/// Functional execution tier. All three tiers are architecturally
/// identical by construction — the differential gate in `rest-bench`
/// holds their micro-op streams and stats byte-for-byte equal — and
/// differ only in how much static work they amortise per fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// Re-decode every instruction on every fetch. The slow oracle CI
    /// diffs the other tiers against.
    Reference,
    /// Replay prebuilt micro-op templates from the decoded-uop cache.
    #[default]
    Fast,
    /// The decoded-uop cache plus run-time superblock traces: hot
    /// straight-line regions discovered at backward-branch targets are
    /// compiled into fused trace ops and dispatched without per-step
    /// fetch/budget overhead. See `crate::superblock`.
    Trace,
}

impl ExecTier {
    /// Stable label used in cache keys and result columns.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Reference => "reference",
            ExecTier::Fast => "fast",
            ExecTier::Trace => "trace",
        }
    }
}

/// Core (pipeline) configuration — the processor side of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched/issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Front-end depth in cycles (fetch→dispatch).
    pub frontend_depth: u64,
    /// Cycles from branch resolution to corrected fetch.
    pub mispredict_penalty: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Integer divide latency (unpipelined).
    pub div_latency: u64,
    /// Simple-ALU functional units.
    pub alu_units: usize,
    /// Multiplier units.
    pub mul_units: usize,
    /// L1-D access ports (loads + draining stores per cycle).
    pub mem_ports: usize,
    /// Branch-predictor global-history bits (gshare; stand-in for the
    /// paper's L-TAGE at similar storage).
    pub bpred_history_bits: usize,
    /// Branch-target-buffer entries.
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Ablation: serialise `arm`/`disarm` execution (each is the only
    /// in-flight instruction) instead of the paper's LSQ forwarding-check
    /// design — the simple-but-slow alternative §III-B rejects.
    pub serialize_rest_ops: bool,
}

impl CoreConfig {
    /// The paper's Table II core: 2 GHz, 8-wide fetch/issue/writeback,
    /// 64-entry IQ, 192-entry ROB, 32-entry LQ and SQ, L-TAGE-class
    /// prediction.
    pub fn isca2018() -> CoreConfig {
        CoreConfig {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 192,
            iq_entries: 64,
            lq_entries: 32,
            sq_entries: 32,
            frontend_depth: 6,
            mispredict_penalty: 3,
            mul_latency: 3,
            div_latency: 20,
            alu_units: 6,
            mul_units: 2,
            mem_ports: 2,
            bpred_history_bits: 15,
            btb_entries: 4096,
            ras_depth: 32,
            serialize_rest_ops: false,
        }
    }

    /// A narrow in-order-ish core (used for the Figure 3 breakdown,
    /// which the paper measured on an in-order core): single-issue,
    /// small windows.
    pub fn inorder() -> CoreConfig {
        CoreConfig {
            fetch_width: 1,
            issue_width: 1,
            commit_width: 1,
            rob_entries: 8,
            iq_entries: 4,
            lq_entries: 4,
            sq_entries: 4,
            frontend_depth: 4,
            mispredict_penalty: 2,
            mul_latency: 3,
            div_latency: 20,
            alu_units: 1,
            mul_units: 1,
            mem_ports: 1,
            bpred_history_bits: 12,
            btb_entries: 512,
            ras_depth: 8,
            serialize_rest_ops: false,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::isca2018()
    }
}

/// Complete configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Pipeline configuration.
    pub core: CoreConfig,
    /// Memory-hierarchy configuration.
    pub mem: MemConfig,
    /// Runtime / protection-scheme configuration.
    pub rt: RtConfig,
    /// Seed for the token value (fixed per run for reproducibility).
    pub token_seed: u64,
    /// Safety cap on emulated micro-ops (guards against runaway guest
    /// programs; generously above any workload in this repository).
    pub max_uops: u64,
    /// Guest cycle budget (0 = disabled). The timing pipeline stops the
    /// run with [`crate::StopReason::CycleLimit`] once its cycle count
    /// reaches the budget; functional-only runs apply the same budget to
    /// retired micro-ops (1 uop ≥ 1 cycle on this machine, so the
    /// functional check is conservative but always terminates).
    pub max_cycles: u64,
    /// Seeded single-shot hardware fault to inject (None = fault-free).
    /// See `rest_faults::FaultSpec`.
    pub fault: Option<FaultSpec>,
    /// Record pipeline-stage timestamps for the first N micro-ops
    /// (0 = tracing off). See [`crate::PipelineTrace`].
    pub trace_uops: usize,
    /// Snapshot the full counter map plus occupancy gauges every N
    /// committed macro instructions into the result's time-series
    /// (0 = sampling off). See [`rest_obs::TimeSeries`].
    pub sample_interval: u64,
    /// Functional execution tier: reference re-decode, decoded-uop
    /// cache, or superblock traces. Architecturally identical by
    /// construction (the differential gate in rest-bench compares the
    /// tiers byte-for-byte); exists so CI can diff results and perf can
    /// measure the speedups.
    pub tier: ExecTier,
    /// Collect the guest hotspot profile: dense per-PC cycle/uop/check
    /// counters plus the per-allocation-site check attribution table.
    /// Deterministic simulation state — off by default because the
    /// dense tables cost memory proportional to program size.
    pub profile_guest: bool,
    /// Static check-elision map from `rest-verify`: memory-access PCs
    /// whose REST/ASan check is proven unable to fire. The emulator
    /// skips check injection and validation at those PCs (application
    /// component only), counting each skip in
    /// `CoreStats::elided_checks`. `None` = every access checked.
    /// Shared via `Arc` because the engine reuses one map across the
    /// paired elided/full runs of a workload.
    pub elision: Option<Arc<ElisionMap>>,
}

impl SimConfig {
    /// Table II hardware with the given runtime configuration.
    pub fn isca2018(rt: RtConfig) -> SimConfig {
        SimConfig {
            core: CoreConfig::isca2018(),
            mem: MemConfig::isca2018(),
            rt,
            token_seed: 0x5e5f_1e1d,
            max_uops: 400_000_000,
            max_cycles: 0,
            fault: None,
            trace_uops: 0,
            sample_interval: 0,
            tier: ExecTier::Fast,
            profile_guest: false,
            elision: None,
        }
    }

    /// Narrow core variant for the Figure 3 breakdown.
    pub fn inorder(rt: RtConfig) -> SimConfig {
        SimConfig {
            core: CoreConfig::inorder(),
            ..SimConfig::isca2018(rt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let c = CoreConfig::isca2018();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.iq_entries, 64);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
    }

    #[test]
    fn sim_config_composes() {
        let s = SimConfig::isca2018(RtConfig::plain());
        assert_eq!(s.mem.l2.hit_latency, 20);
        let i = SimConfig::inorder(RtConfig::asan());
        assert_eq!(i.core.issue_width, 1);
        assert_eq!(i.rt.label(), "asan");
    }
}
