//! Out-of-order core model and functional emulator for the REST
//! simulator.
//!
//! The paper evaluates REST in gem5's out-of-order x86 model (Table II:
//! 8-wide, 192-entry ROB, 64-entry IQ, 32-entry LQ/SQ, L-TAGE). This
//! crate rebuilds that pipeline from scratch using the standard
//! *trace-driven timing* construction:
//!
//! 1. The [`Emulator`] executes the guest program functionally, ahead of
//!    the pipeline, resolving memory addresses and branch outcomes and
//!    invoking the [`rest_runtime::Runtime`] for `ecall`s. It emits a
//!    stream of oracle [`rest_isa::DynInst`]s — including the micro-ops
//!    injected by ASan instrumentation and by runtime services — and
//!    decides program-visible REST/ASan violations architecturally.
//! 2. The [`Pipeline`] replays that stream through fetch (branch
//!    predictor + I-cache), dispatch (ROB/IQ/LQ/SQ occupancy), issue
//!    (register dependencies, functional units, memory disambiguation
//!    with store-to-load forwarding and the REST forwarding rules of
//!    Table I), execution against the [`rest_mem::Hierarchy`], and
//!    in-order commit with the secure/debug store-commit policies.
//!
//! [`System`] glues the two together and produces a [`SimResult`] with
//! the cycle count and every statistic the paper's evaluation quotes
//! (ROB-blocked-by-store cycles, IQ-full cycles, token traffic at the
//! L2/memory interface, …).

#![forbid(unsafe_code)]

mod bpred;
mod config;
mod emulator;
mod exec;
mod multiproc;
mod pipeline;
mod profile;
mod stats;
mod superblock;
mod system;
mod trace;

pub use bpred::BranchPredictor;
pub use config::{CoreConfig, ExecTier, SimConfig};
pub use emulator::{Emulator, StopReason};
pub use exec::ExecEngine;
pub use multiproc::MultiSystem;
pub use pipeline::Pipeline;
pub use profile::{CheckCounters, GuestProfile, PcCounters};
pub use stats::{stats_map_parts, CoreStats, SimResult, ALLOC_KEY_COUNT, CORE_KEY_COUNT};
pub use system::System;
pub use trace::{PipelineTrace, TraceEntry};
