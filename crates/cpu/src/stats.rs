use rest_faults::FaultReport;
use rest_isa::Component;
use rest_mem::MemStats;
use rest_obs::{AuditLog, CpiStack, TimeSeries};
use rest_runtime::AllocStats;

use crate::emulator::StopReason;
use crate::profile::GuestProfile;
use crate::trace::PipelineTrace;

/// Pipeline-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Total cycles (commit time of the last micro-op).
    pub cycles: u64,
    /// Macro instructions retired.
    pub insts: u64,
    /// Micro-ops processed (including injected instrumentation and
    /// runtime traffic).
    pub uops: u64,
    /// Micro-ops per software component (Figure 3 attribution), indexed
    /// by [`Component::ALL`] order.
    pub uops_by_component: [u64; 5],
    /// Conditional/indirect branch predictions made.
    pub branch_lookups: u64,
    /// Mispredictions (direction or target).
    pub branch_mispredicts: u64,
    /// Loads served by store-to-load forwarding.
    pub store_forwards: u64,
    /// Loads delayed by a partial overlap with an in-flight store.
    pub load_partial_stalls: u64,
    /// Cycles the ROB head was blocked waiting for a store's write to
    /// complete (debug mode's dominant cost; §VI-B reports this an order
    /// of magnitude higher in debug than secure).
    pub rob_blocked_store_cycles: u64,
    /// Aggregate dispatch-stall cycles charged to a full IQ.
    pub iq_stall_cycles: u64,
    /// Aggregate dispatch-stall cycles charged to a full ROB.
    pub rob_stall_cycles: u64,
    /// Aggregate dispatch-stall cycles charged to full LQ/SQ.
    pub lsq_stall_cycles: u64,
    /// REST exceptions detected by the LSQ forwarding rules (loads that
    /// would have forwarded from an in-flight arm, stores hitting an
    /// in-flight arm, double in-flight disarms).
    pub lsq_rest_exceptions: u64,
    /// I-cache fetch stalls (cycles).
    pub fetch_stall_cycles: u64,
    /// Checks skipped because the static elision map proved them unable
    /// to fire (see [`crate::SimConfig::elision`]). Kept out of
    /// [`stats_map_parts`] so the flat counter snapshot — and every
    /// artifact serialized from it — is byte-identical for runs without
    /// an elision map.
    pub elided_checks: u64,
    /// Commit-time cycle attribution. The components always sum to
    /// `cycles` (valid after [`crate::Pipeline::finish`]); built by the
    /// pipeline as each micro-op advances the commit frontier.
    pub cpi: CpiStack,
}

impl CoreStats {
    /// Micro-ops per cycle.
    pub fn uipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }

    /// Records a micro-op's component attribution.
    pub fn note_component(&mut self, c: Component) {
        let idx = Component::ALL.iter().position(|&x| x == c).expect("known");
        self.uops_by_component[idx] += 1;
    }
}

/// Complete result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Pipeline-stage trace of the first N micro-ops, when enabled via
    /// [`crate::SimConfig::trace_uops`].
    pub trace: Option<PipelineTrace>,
    /// Pipeline statistics.
    pub core: CoreStats,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// Allocator statistics.
    pub alloc: AllocStats,
    /// Why the program stopped.
    pub stop: StopReason,
    /// Program output (PutChar bytes).
    pub output: Vec<u8>,
    /// Configuration label (e.g. `"rest-secure-full"`).
    pub label: String,
    /// Interval time-series, when sampling was enabled via
    /// [`crate::SimConfig::sample_interval`].
    pub series: Option<TimeSeries>,
    /// Every REST/ASan violation the run detected, with provenance.
    pub audit: AuditLog,
    /// Fault-injection summary, when the run was configured with a
    /// [`crate::SimConfig::fault`] spec (None on fault-free runs).
    pub fault: Option<FaultReport>,
    /// Guest hotspot profile, when collection was enabled via
    /// [`crate::SimConfig::profile_guest`].
    pub profile: Option<GuestProfile>,
}

impl SimResult {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.core.cycles
    }

    /// Slowdown of this run relative to `baseline`, as a ratio (1.0 =
    /// equal).
    pub fn slowdown_vs(&self, baseline: &SimResult) -> f64 {
        if baseline.core.cycles == 0 {
            return 0.0;
        }
        self.core.cycles as f64 / baseline.core.cycles as f64
    }

    /// Overhead percentage relative to `baseline` (paper's figures).
    pub fn overhead_pct_vs(&self, baseline: &SimResult) -> f64 {
        (self.slowdown_vs(baseline) - 1.0) * 100.0
    }

    /// Tokens crossing the L2/memory interface per kilo-instruction
    /// (§VI-B prose statistic).
    pub fn tokens_per_kiloinst_l2_mem(&self) -> f64 {
        if self.core.insts == 0 {
            0.0
        } else {
            self.mem.token_lines_l2_mem as f64 * 1000.0 / self.core.insts as f64
        }
    }

    /// Flat, deterministically ordered `name → value` snapshot of every
    /// counter in the result (core, memory hierarchy, allocator), for
    /// machine-readable result sinks. Keys are stable
    /// `<subsystem>.<counter>` identifiers; per-component micro-op
    /// counters expand to one key per [`Component`].
    pub fn stats_map(&self) -> Vec<(&'static str, u64)> {
        stats_map_parts(&self.core, &self.mem, &self.alloc)
    }
}

/// Number of `core.*` keys [`stats_map_parts`] emits (scalar counters
/// plus one per [`Component`]). Guarded by the exhaustiveness test
/// below alongside [`MemStats::FIELD_COUNT`].
pub const CORE_KEY_COUNT: usize = 13 + Component::ALL.len();

/// Number of `alloc.*` keys [`stats_map_parts`] emits.
pub const ALLOC_KEY_COUNT: usize = 9;

/// Builds the flat counter map from the three stats blocks. Free
/// function so the interval sampler can snapshot a *running* system —
/// [`SimResult::stats_map`] delegates here at end of run.
pub fn stats_map_parts(
    c: &CoreStats,
    m: &MemStats,
    a: &AllocStats,
) -> Vec<(&'static str, u64)> {
    let mut map = vec![
        ("core.cycles", c.cycles),
        ("core.insts", c.insts),
        ("core.uops", c.uops),
        ("core.branch_lookups", c.branch_lookups),
        ("core.branch_mispredicts", c.branch_mispredicts),
        ("core.store_forwards", c.store_forwards),
        ("core.load_partial_stalls", c.load_partial_stalls),
        ("core.rob_blocked_store_cycles", c.rob_blocked_store_cycles),
        ("core.iq_stall_cycles", c.iq_stall_cycles),
        ("core.rob_stall_cycles", c.rob_stall_cycles),
        ("core.lsq_stall_cycles", c.lsq_stall_cycles),
        ("core.lsq_rest_exceptions", c.lsq_rest_exceptions),
        ("core.fetch_stall_cycles", c.fetch_stall_cycles),
    ];
    const COMPONENT_KEYS: [&str; 5] = [
        "core.uops_app",
        "core.uops_allocator",
        "core.uops_stack_protect",
        "core.uops_access_check",
        "core.uops_api_intercept",
    ];
    for (key, count) in COMPONENT_KEYS.iter().zip(c.uops_by_component) {
        map.push((key, count));
    }
    map.extend([
        ("mem.l1i_hits", m.l1i_hits),
        ("mem.l1i_misses", m.l1i_misses),
        ("mem.l1d_hits", m.l1d_hits),
        ("mem.l1d_misses", m.l1d_misses),
        ("mem.l2_hits", m.l2_hits),
        ("mem.l2_misses", m.l2_misses),
        ("mem.dram_accesses", m.dram_accesses),
        ("mem.l1d_writebacks", m.l1d_writebacks),
        ("mem.l2_writebacks", m.l2_writebacks),
        ("mem.token_detections_on_fill", m.token_detections_on_fill),
        ("mem.token_lines_evicted_l1d", m.token_lines_evicted_l1d),
        ("mem.token_lines_l2_mem", m.token_lines_l2_mem),
        ("mem.rest_exceptions", m.rest_exceptions),
        ("mem.debug_load_holds", m.debug_load_holds),
        ("mem.token_cache_hits", m.token_cache_hits),
        ("alloc.allocs", a.allocs),
        ("alloc.frees", a.frees),
        ("alloc.bytes_requested", a.bytes_requested),
        ("alloc.live_bytes", a.live_bytes),
        ("alloc.peak_live_bytes", a.peak_live_bytes),
        ("alloc.quarantine_bytes", a.quarantine_bytes),
        ("alloc.quarantine_evictions", a.quarantine_evictions),
        ("alloc.bad_frees", a.bad_frees),
        ("alloc.reuses", a.reuses),
    ]);
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_attribution_indexes_align() {
        let mut s = CoreStats::default();
        s.note_component(Component::App);
        s.note_component(Component::Allocator);
        s.note_component(Component::Allocator);
        assert_eq!(s.uops_by_component[0], 1);
        assert_eq!(s.uops_by_component[1], 2);
    }

    #[test]
    fn derived_metrics() {
        let mut a = SimResult {
            trace: None,
            core: CoreStats {
                cycles: 1000,
                insts: 2000,
                uops: 2500,
                ..CoreStats::default()
            },
            mem: MemStats::default(),
            alloc: AllocStats::default(),
            stop: StopReason::Halted,
            output: Vec::new(),
            label: "plain".into(),
            series: None,
            audit: AuditLog::default(),
            fault: None,
            profile: None,
        };
        let b = SimResult {
            core: CoreStats {
                cycles: 1400,
                ..a.core
            },
            label: "asan".into(),
            ..a.clone()
        };
        assert!((b.slowdown_vs(&a) - 1.4).abs() < 1e-12);
        assert!((b.overhead_pct_vs(&a) - 40.0).abs() < 1e-9);
        assert!((a.core.uipc() - 2.5).abs() < 1e-12);
        a.mem.token_lines_l2_mem = 4;
        assert!((a.tokens_per_kiloinst_l2_mem() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_map_is_complete_ordered_and_keyed_uniquely() {
        let mut r = SimResult {
            trace: None,
            core: CoreStats {
                cycles: 123,
                insts: 456,
                ..CoreStats::default()
            },
            mem: MemStats::default(),
            alloc: AllocStats::default(),
            stop: StopReason::Halted,
            output: Vec::new(),
            label: "plain".into(),
            series: None,
            audit: AuditLog::default(),
            fault: None,
            profile: None,
        };
        r.core.note_component(Component::Allocator);
        r.mem.token_lines_l2_mem = 9;
        r.alloc.allocs = 3;

        let map = r.stats_map();
        let get = |k: &str| {
            map.iter()
                .find(|(n, _)| *n == k)
                .unwrap_or_else(|| panic!("missing key {k}"))
                .1
        };
        assert_eq!(get("core.cycles"), 123);
        assert_eq!(get("core.insts"), 456);
        assert_eq!(get("core.uops_allocator"), 1);
        assert_eq!(get("mem.token_lines_l2_mem"), 9);
        assert_eq!(get("alloc.allocs"), 3);

        // Unique keys, deterministic order (core → mem → alloc).
        let mut names: Vec<&str> = map.iter().map(|(n, _)| *n).collect();
        assert_eq!(names[0], "core.cycles");
        let last_core = names.iter().rposition(|n| n.starts_with("core.")).unwrap();
        let first_mem = names.iter().position(|n| n.starts_with("mem.")).unwrap();
        let first_alloc = names.iter().position(|n| n.starts_with("alloc.")).unwrap();
        assert!(last_core < first_mem && first_mem < first_alloc);
        let len = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate stat keys");
        // A second call yields the identical snapshot.
        assert_eq!(map, r.stats_map());
    }

    /// Exhaustiveness guard (paired with `MemStats::merge_covers_every_
    /// field` in `rest-mem`): adding a counter to `CoreStats` or
    /// `MemStats` must fail compilation or these assertions until it is
    /// wired into `stats_map_parts`.
    #[test]
    fn stats_map_covers_every_counter_field() {
        // Compile-time: naming every CoreStats field here means a new
        // field breaks this destructuring until it is acknowledged.
        let CoreStats {
            cycles: _,
            insts: _,
            uops: _,
            uops_by_component: _,
            branch_lookups: _,
            branch_mispredicts: _,
            store_forwards: _,
            load_partial_stalls: _,
            rob_blocked_store_cycles: _,
            iq_stall_cycles: _,
            rob_stall_cycles: _,
            lsq_stall_cycles: _,
            lsq_rest_exceptions: _,
            fetch_stall_cycles: _,
            elided_checks: _, // deliberately not a map key: elision-off artifacts stay byte-identical
            cpi: _,           // emitted as its own `cpi` JSON object, not a map key
        } = CoreStats::default();

        let r = SimResult {
            trace: None,
            core: CoreStats::default(),
            mem: MemStats::default(),
            alloc: AllocStats::default(),
            stop: StopReason::Halted,
            output: Vec::new(),
            label: "plain".into(),
            series: None,
            audit: AuditLog::default(),
            fault: None,
            profile: None,
        };
        let map = r.stats_map();
        let count = |prefix: &str| map.iter().filter(|(k, _)| k.starts_with(prefix)).count();
        assert_eq!(count("core."), CORE_KEY_COUNT, "core keys drifted");
        assert_eq!(count("mem."), MemStats::FIELD_COUNT, "mem keys drifted");
        assert_eq!(count("alloc."), ALLOC_KEY_COUNT, "alloc keys drifted");
        assert_eq!(
            map.len(),
            CORE_KEY_COUNT + MemStats::FIELD_COUNT + ALLOC_KEY_COUNT
        );
    }
}
