use rest_isa::BranchInfo;

/// Branch predictor: gshare direction predictor + branch target buffer +
/// return-address stack.
///
/// A storage-comparable stand-in for the paper's L-TAGE (31 k entries):
/// what the evaluation needs is a realistic, high-accuracy predictor so
/// that front-end behaviour — and the cost of the extra branches ASan
/// instrumentation introduces — is modelled, not a bit-exact L-TAGE.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters indexed by `pc ^ history`.
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    /// BTB: tagged target cache for taken/indirect branches.
    btb: Vec<Option<(u64, u64)>>, // (pc, target)
    ras: Vec<u64>,
    ras_depth: usize,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `history_bits` of global history,
    /// `btb_entries` targets, and a `ras_depth`-deep return stack.
    pub fn new(history_bits: usize, btb_entries: usize, ras_depth: usize) -> BranchPredictor {
        assert!(history_bits > 0 && history_bits < 30);
        assert!(btb_entries.is_power_of_two(), "BTB size must be a power of two");
        BranchPredictor {
            counters: vec![1u8; 1 << history_bits],
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            btb: vec![None; btb_entries],
            ras: Vec::new(),
            ras_depth,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn counter_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.history_mask) as usize
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb.len() - 1)
    }

    /// Predicts the branch at `pc`, then trains on the oracle `outcome`,
    /// returning whether the prediction was **correct** (direction and,
    /// where needed, target).
    pub fn predict_and_train(&mut self, pc: u64, outcome: &BranchInfo) -> bool {
        self.lookups += 1;
        // --- predict ---
        let dir = if outcome.conditional {
            self.counters[self.counter_index(pc)] >= 2
        } else {
            true
        };
        let target = if outcome.is_return {
            self.ras.last().copied()
        } else {
            self.btb[self.btb_index(pc)]
                .filter(|&(tag, _)| tag == pc)
                .map(|(_, t)| t)
        };
        let correct_dir = dir == outcome.taken;
        // A taken branch also needs the right target from the BTB/RAS;
        // direct branches resolve the target at decode, so only indirect
        // ones pay for a BTB miss here.
        let needs_target = outcome.taken && (outcome.indirect || outcome.is_return);
        let correct_target = !needs_target || target == Some(outcome.target);
        let correct = correct_dir && correct_target;
        if !correct {
            self.mispredicts += 1;
        }
        // --- train ---
        if outcome.conditional {
            let idx = self.counter_index(pc);
            let c = &mut self.counters[idx];
            if outcome.taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        self.history = ((self.history << 1) | outcome.taken as u64) & self.history_mask;
        if outcome.taken {
            let idx = self.btb_index(pc);
            self.btb[idx] = Some((pc, outcome.target));
        }
        if outcome.is_call {
            if self.ras.len() == self.ras_depth {
                self.ras.remove(0);
            }
            self.ras.push(pc + rest_isa::PC_STEP);
        }
        if outcome.is_return {
            self.ras.pop();
        }
        correct
    }

    /// Total predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate in [0, 1].
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taken_branch(target: u64) -> BranchInfo {
        BranchInfo {
            taken: true,
            target,
            conditional: true,
            is_call: false,
            is_return: false,
            indirect: false,
        }
    }

    fn pred() -> BranchPredictor {
        BranchPredictor::new(12, 512, 8)
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = pred();
        let b = taken_branch(0x100);
        // After warm-up (global history must saturate before the gshare
        // index stabilises), an always-taken branch predicts correctly.
        for _ in 0..20 {
            p.predict_and_train(0x40, &b);
        }
        assert!(p.predict_and_train(0x40, &b));
        assert!(p.predict_and_train(0x40, &b));
    }

    #[test]
    fn learns_a_loop_pattern() {
        let mut p = pred();
        let mut wrong = 0;
        // 100 iterations of a 10-iteration loop: backward branch taken 9
        // times then not taken.
        for _ in 0..100 {
            for i in 0..10 {
                let b = BranchInfo {
                    taken: i != 9,
                    target: 0x80,
                    conditional: true,
                    is_call: false,
                    is_return: false,
                    indirect: false,
                };
                if !p.predict_and_train(0x44, &b) {
                    wrong += 1;
                }
            }
        }
        // Global history disambiguates the exit iteration; accuracy must
        // be well above a static predictor's 90%.
        assert!(wrong < 60, "too many mispredicts: {wrong}");
    }

    #[test]
    fn ras_predicts_returns() {
        let mut p = pred();
        let call = BranchInfo {
            taken: true,
            target: 0x1000,
            conditional: false,
            is_call: true,
            is_return: false,
            indirect: false,
        };
        // Train the call once (BTB learns its target).
        p.predict_and_train(0x40, &call);
        let ret = BranchInfo {
            taken: true,
            target: 0x44, // return to call site + 4
            conditional: false,
            is_call: false,
            is_return: true,
            indirect: true,
        };
        p.predict_and_train(0x40, &call);
        assert!(
            p.predict_and_train(0x1000, &ret),
            "RAS must predict the return target"
        );
    }

    #[test]
    fn indirect_branch_needs_btb_hit() {
        let mut p = pred();
        let ind = BranchInfo {
            taken: true,
            target: 0x2000,
            conditional: false,
            is_call: false,
            is_return: false,
            indirect: true,
        };
        // Cold BTB: mispredict.
        assert!(!p.predict_and_train(0x80, &ind));
        // Warm: correct.
        assert!(p.predict_and_train(0x80, &ind));
        // Target change: mispredict again.
        let ind2 = BranchInfo { target: 0x3000, ..ind };
        assert!(!p.predict_and_train(0x80, &ind2));
    }

    #[test]
    fn stats_accumulate() {
        let mut p = pred();
        let b = taken_branch(0x100);
        for _ in 0..100 {
            p.predict_and_train(0x40, &b);
        }
        assert_eq!(p.lookups(), 100);
        assert!(p.mispredict_rate() < 0.5);
    }
}
