//! Edge-case tests for the runtime service layer across all three
//! schemes: allocation-family corner cases, interception boundaries,
//! and the sprinkling extension.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rest_core::{ArmedSet, Mode, ProtectionBackend, Token};
use rest_isa::{EcallNum, GuestMemory};
use rest_runtime::{
    Allocator, EcallOutcome, RestAllocator, RtConfig, RtEnv, Runtime, TrafficRecorder, Violation,
};

struct Fx {
    mem: GuestMemory,
    rec: TrafficRecorder,
    backend: Box<dyn ProtectionBackend>,
    token: Token,
    cfg: RtConfig,
}

impl Fx {
    fn new(cfg: RtConfig) -> Fx {
        let mut rng = StdRng::seed_from_u64(1234);
        Fx {
            mem: GuestMemory::new(),
            rec: TrafficRecorder::new(),
            backend: cfg.build_backend(1234),
            token: Token::generate(cfg.token_width, &mut rng),
            cfg,
        }
    }

    fn env(&mut self) -> RtEnv<'_> {
        RtEnv {
            mem: &mut self.mem,
            rec: &mut self.rec,
            backend: self.backend.as_mut(),
            token: &self.token,
            check_backend: self.cfg.checks_in_backend(),
            check_shadow: false,
            perfect_hw: self.cfg.perfect_hw,
            naive_wide_arm: self.cfg.naive_wide_arm,
            guest_pc: 0,
            sites: None,
        }
    }

    fn armed(&self) -> &ArmedSet {
        self.backend
            .armed_set()
            .expect("fixture scheme carries an armed set")
    }
}

fn call(rt: &mut Runtime, fx: &mut Fx, num: EcallNum, args: [u64; 6]) -> EcallOutcome {
    let mut env = fx.env();
    rt.ecall(num, args, &mut env)
}

fn done(out: EcallOutcome) -> u64 {
    match out {
        EcallOutcome::Done(v) => v,
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn zero_size_malloc_is_valid_and_freeable() {
    for cfg in [RtConfig::plain(), RtConfig::asan(), RtConfig::rest(Mode::Secure, false)] {
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg.clone());
        let p = done(call(&mut rt, &mut fx, EcallNum::Malloc, [0, 0, 0, 0, 0, 0]));
        assert_ne!(p, 0, "{}: zero-size malloc must still return a chunk", cfg.label());
        assert_eq!(
            call(&mut rt, &mut fx, EcallNum::Free, [p, 0, 0, 0, 0, 0]),
            EcallOutcome::Done(0)
        );
    }
}

#[test]
fn zero_length_memcpy_and_memset_are_noops() {
    let cfg = RtConfig::asan();
    let mut fx = Fx::new(cfg.clone());
    let mut rt = Runtime::new(cfg);
    assert_eq!(
        call(&mut rt, &mut fx, EcallNum::Memcpy, [0x9000, 0x8000, 0, 0, 0, 0]),
        EcallOutcome::Done(0x9000)
    );
    assert_eq!(
        call(&mut rt, &mut fx, EcallNum::Memset, [0x9000, 0xff, 0, 0, 0, 0]),
        EcallOutcome::Done(0x9000)
    );
    assert_eq!(rt.intercept_checks(), 0, "zero-length calls skip checking");
}

#[test]
fn realloc_of_null_behaves_like_malloc() {
    let cfg = RtConfig::rest(Mode::Secure, false);
    let mut fx = Fx::new(cfg.clone());
    let mut rt = Runtime::new(cfg);
    let p = done(call(&mut rt, &mut fx, EcallNum::Realloc, [0, 128, 0, 0, 0, 0]));
    assert_ne!(p, 0);
    assert_eq!(rt.allocator().stats().allocs, 1);
}

#[test]
fn realloc_shrink_preserves_prefix() {
    let cfg = RtConfig::asan();
    let mut fx = Fx::new(cfg.clone());
    let mut rt = Runtime::new(cfg);
    let p = done(call(&mut rt, &mut fx, EcallNum::Malloc, [64, 0, 0, 0, 0, 0]));
    fx.mem.write_u64(p, 0xfeed);
    fx.mem.write_u64(p + 8, 0xf00d);
    let q = done(call(&mut rt, &mut fx, EcallNum::Realloc, [p, 16, 0, 0, 0, 0]));
    assert_eq!(fx.mem.read_u64(q), 0xfeed);
    assert_eq!(fx.mem.read_u64(q + 8), 0xf00d);
}

#[test]
fn memset_intercept_rejects_range_into_redzone() {
    let cfg = RtConfig::asan();
    let mut fx = Fx::new(cfg.clone());
    let mut rt = Runtime::new(cfg);
    let p = done(call(&mut rt, &mut fx, EcallNum::Malloc, [32, 0, 0, 0, 0, 0]));
    let out = call(&mut rt, &mut fx, EcallNum::Memset, [p, 0, 64, 0, 0, 0]);
    assert!(
        matches!(out, EcallOutcome::Violation(Violation::Asan(_))),
        "{out:?}"
    );
    // In-bounds memset is fine.
    let out = call(&mut rt, &mut fx, EcallNum::Memset, [p, 0, 32, 0, 0, 0]);
    assert_eq!(out, EcallOutcome::Done(p));
}

#[test]
fn rest_memset_over_quarantined_chunk_trips_tokens() {
    let cfg = RtConfig::rest(Mode::Secure, false);
    let mut fx = Fx::new(cfg.clone());
    let mut rt = Runtime::new(cfg);
    let p = done(call(&mut rt, &mut fx, EcallNum::Malloc, [64, 0, 0, 0, 0, 0]));
    call(&mut rt, &mut fx, EcallNum::Free, [p, 0, 0, 0, 0, 0]);
    let out = call(&mut rt, &mut fx, EcallNum::Memset, [p, 0x41, 16, 0, 0, 0]);
    assert!(
        matches!(out, EcallOutcome::Violation(Violation::Rest(_))),
        "{out:?}"
    );
}

#[test]
fn sprinkled_allocator_spaces_chunks_with_armed_decoys() {
    let mut fx = Fx::new(RtConfig::rest(Mode::Secure, false).with_sprinkle());
    let mut alloc = RestAllocator::new(1 << 20, 64).with_sprinkle();
    let mut ptrs = Vec::new();
    {
        let mut env = fx.env();
        for _ in 0..16 {
            ptrs.push(alloc.malloc(&mut env, 64).unwrap());
        }
    }
    // Some inter-chunk gaps must exceed the un-sprinkled stride…
    let mut strides: Vec<u64> = ptrs.windows(2).map(|w| w[1] - w[0]).collect();
    strides.sort_unstable();
    assert!(
        strides.last() > strides.first(),
        "sprinkling must perturb the stride lattice: {strides:?}"
    );
    // …and decoys beyond the allocator's own redzones must be armed.
    let redzone_slots = 16 * 2; // two redzones per chunk at this size
    assert!(
        fx.armed().armed_count() > redzone_slots,
        "decoys must add armed slots: {} armed",
        fx.armed().armed_count()
    );
}

#[test]
fn perfect_hw_runtime_performs_no_arming() {
    let cfg = RtConfig::rest_perfect(false);
    let mut fx = Fx::new(cfg.clone());
    let mut rt = Runtime::new(cfg);
    let p = done(call(&mut rt, &mut fx, EcallNum::Malloc, [64, 0, 0, 0, 0, 0]));
    call(&mut rt, &mut fx, EcallNum::Free, [p, 0, 0, 0, 0, 0]);
    assert_eq!(fx.armed().armed_count(), 0, "PerfectHW must not arm anything");
}

#[test]
fn allocator_stats_track_a_mixed_session() {
    let cfg = RtConfig::rest(Mode::Secure, false).with_quarantine(512);
    let mut fx = Fx::new(cfg.clone());
    let mut rt = Runtime::new(cfg);
    let mut live = Vec::new();
    for i in 0..10u64 {
        let p = done(call(&mut rt, &mut fx, EcallNum::Malloc, [32 + i * 16, 0, 0, 0, 0, 0]));
        live.push(p);
    }
    for p in live.drain(..) {
        call(&mut rt, &mut fx, EcallNum::Free, [p, 0, 0, 0, 0, 0]);
    }
    let s = rt.allocator().stats();
    assert_eq!(s.allocs, 10);
    assert_eq!(s.frees, 10);
    assert_eq!(s.live_bytes, 0);
    assert!(s.peak_live_bytes > 0);
    assert!(s.quarantine_evictions > 0, "tiny quarantine must evict");
}

#[test]
fn fast_pool_preserves_protection_with_fewer_token_ops() {
    // §VIII future-work allocator: same guarantees, less arm/disarm work.
    let run = |fast: bool| {
        let mut cfg = RtConfig::rest(Mode::Secure, false).with_quarantine(256);
        if fast {
            cfg = cfg.with_fast_pool();
        }
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        // Churn: allocate/free the same class so recycling happens.
        let mut ops = 0u64;
        for _ in 0..8 {
            let p = done(call(&mut rt, &mut fx, EcallNum::Malloc, [64, 0, 0, 0, 0, 0]));
            // Freshly handed-out memory must be zero (no uninit leaks)...
            assert_eq!(fx.mem.read_u64(p), 0, "fast={fast}: reuse must be zeroed");
            // ...in-bounds use must work...
            fx.mem.write_u64(p, 0xABCD);
            // ...and the redzones must be armed.
            assert!(fx.armed().is_armed(p - 64), "fast={fast}: left rz");
            assert!(fx.armed().is_armed(p + 64), "fast={fast}: right rz");
            call(&mut rt, &mut fx, EcallNum::Free, [p, 0, 0, 0, 0, 0]);
            // Freed chunk is blacklisted (UAF window).
            assert!(fx.armed().overlaps(p, 8), "fast={fast}: freed must be armed");
            ops += fx.armed().total_arms() + fx.armed().total_disarms();
        }
        let arms = fx.armed().total_arms();
        let disarms = fx.armed().total_disarms();
        let _ = ops;
        arms + disarms
    };
    let normal_ops = run(false);
    let fast_ops = run(true);
    assert!(
        fast_ops < normal_ops,
        "fast pool must do fewer token ops: {fast_ops} vs {normal_ops}"
    );
}
