use rest_core::TokenWidth;
use rest_isa::{Component, ProgramBuilder, Reg};

use crate::alloc::redzone_for;
use crate::layout::SHADOW_BASE;
use crate::shadow::{POISON_STACK_LEFT, POISON_STACK_RIGHT};

/// Stack-protection flavour applied at function prologues/epilogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackScheme {
    /// No stack hardening (plain builds, and REST/ASan "heap only").
    None,
    /// ASan: poison shadow of frame redzones in the prologue, unpoison in
    /// the epilogue (the paper's overhead component 2, "stack frame
    /// setup").
    Asan,
    /// REST: `arm` redzones in the prologue, `disarm` in the epilogue
    /// (§IV-A, Figure 6A).
    Rest,
}

/// One protected buffer inside a laid-out frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSlot {
    /// Offset of the buffer's first byte from the post-prologue SP.
    pub offset: u64,
    /// Requested buffer size in bytes.
    pub size: u64,
    /// Padding after the buffer up to the trailing redzone (the §V-C
    /// false-negative window).
    pub padding: u64,
}

/// Computed stack-frame layout: buffer placement plus redzone positions.
#[derive(Debug, Clone)]
pub struct FrameLayout {
    /// Total frame size (SP is decremented by this much).
    pub frame_size: u64,
    /// Locations of the protected buffers, in declaration order.
    pub buffers: Vec<BufferSlot>,
    /// `(offset, len)` of each redzone, relative to the post-prologue SP.
    pub redzones: Vec<(u64, u64)>,
    /// Offset of the unprotected locals area (always at the frame base).
    pub locals_offset: u64,
}

/// The stack-protection pass.
///
/// Given the buffer sizes a function declares, [`FrameGuard::layout`]
/// computes a frame with redzones bracketing each vulnerable buffer, and
/// [`FrameGuard::emit_prologue`] / [`FrameGuard::emit_epilogue`] emit the
/// hardening code — `arm`/`disarm` for REST, shadow poisoning stores for
/// ASan, nothing for plain builds. Scratch registers `tp` and `t6` are
/// reserved for instrumentation; `gp` must hold [`SHADOW_BASE`] (set up
/// by [`FrameGuard::emit_startup`]).
///
/// # Example
///
/// ```
/// use rest_isa::ProgramBuilder;
/// use rest_core::TokenWidth;
/// use rest_runtime::{FrameGuard, StackScheme};
///
/// let guard = FrameGuard::new(StackScheme::Rest, TokenWidth::B64);
/// let layout = guard.layout(&[16], 32);
/// let mut p = ProgramBuilder::new();
/// guard.emit_prologue(&mut p, &layout);
/// guard.emit_epilogue(&mut p, &layout);
/// assert!(p.len() > 2, "prologue/epilogue emit arm/disarm code");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FrameGuard {
    scheme: StackScheme,
    width: TokenWidth,
}

impl FrameGuard {
    /// Creates a pass for `scheme`; `width` governs REST redzone
    /// alignment (ASan uses its 8-byte shadow granule).
    pub fn new(scheme: StackScheme, width: TokenWidth) -> FrameGuard {
        FrameGuard { scheme, width }
    }

    /// The active scheme.
    pub fn scheme(&self) -> StackScheme {
        self.scheme
    }

    fn granule(&self) -> u64 {
        match self.scheme {
            StackScheme::None => 8,
            StackScheme::Asan => 8,
            StackScheme::Rest => self.width.bytes(),
        }
    }

    /// Emits process-startup code: SP, and the shadow base in `gp` for
    /// ASan instrumentation. Call once at the program entry.
    pub fn emit_startup(&self, p: &mut ProgramBuilder) {
        p.li(Reg::SP, crate::layout::STACK_TOP as i64);
        p.li(Reg::GP, SHADOW_BASE as i64);
    }

    /// Computes the frame layout for a function with the given protected
    /// buffer sizes plus `locals` bytes of unprotected locals.
    pub fn layout(&self, buffer_sizes: &[u64], locals: u64) -> FrameLayout {
        let g = self.granule();
        let mut off = round(locals, 16); // locals at the frame base
        let mut buffers = Vec::new();
        let mut redzones = Vec::new();
        for &size in buffer_sizes {
            if self.scheme == StackScheme::None {
                let slot = round(size.max(1), 8);
                buffers.push(BufferSlot {
                    offset: off,
                    size,
                    padding: slot - size,
                });
                off += slot;
            } else {
                let rz = redzone_for(size, g);
                // Redzones must sit at granule-aligned offsets (token
                // alignment under REST), whatever the locals size was.
                off = round(off, g);
                redzones.push((off, rz));
                off += rz;
                let padded = round(size.max(1), g);
                buffers.push(BufferSlot {
                    offset: off,
                    size,
                    padding: padded - size,
                });
                off += padded;
                redzones.push((off, rz));
                off += rz;
            }
        }
        // Keep SP aligned to the protection granule so redzone addresses
        // are token-aligned under REST.
        let frame_size = round(off.max(16), self.granule().max(16));
        FrameLayout {
            frame_size,
            buffers,
            redzones,
            locals_offset: 0,
        }
    }

    /// Emits the frame prologue: the SP adjustment (application work)
    /// followed by redzone hardening (attributed to
    /// [`Component::StackProtect`]).
    pub fn emit_prologue(&self, p: &mut ProgramBuilder, l: &FrameLayout) {
        p.addi(Reg::SP, Reg::SP, -(l.frame_size as i64));
        match self.scheme {
            StackScheme::None => {}
            StackScheme::Rest => {
                let prev = p.current_component();
                p.set_component(Component::StackProtect);
                let w = self.width.bytes();
                for &(off, len) in &l.redzones {
                    let mut a = off;
                    while a < off + len {
                        p.addi(Reg::TP, Reg::SP, a as i64);
                        p.arm(Reg::TP);
                        a += w;
                    }
                }
                p.set_component(prev);
            }
            StackScheme::Asan => {
                let prev = p.current_component();
                p.set_component(Component::StackProtect);
                for (i, &(off, len)) in l.redzones.iter().enumerate() {
                    let poison = if i % 2 == 0 {
                        POISON_STACK_LEFT
                    } else {
                        POISON_STACK_RIGHT
                    };
                    self.emit_shadow_fill(p, off, len, poison_pattern(poison));
                }
                p.set_component(prev);
            }
        }
    }

    /// Emits the frame epilogue: redzone cleanup then the SP restore.
    pub fn emit_epilogue(&self, p: &mut ProgramBuilder, l: &FrameLayout) {
        match self.scheme {
            StackScheme::None => {}
            StackScheme::Rest => {
                let prev = p.current_component();
                p.set_component(Component::StackProtect);
                let w = self.width.bytes();
                for &(off, len) in &l.redzones {
                    let mut a = off;
                    while a < off + len {
                        p.addi(Reg::TP, Reg::SP, a as i64);
                        p.disarm(Reg::TP);
                        a += w;
                    }
                }
                p.set_component(prev);
            }
            StackScheme::Asan => {
                let prev = p.current_component();
                p.set_component(Component::StackProtect);
                for &(off, len) in &l.redzones {
                    self.emit_shadow_fill(p, off, len, 0);
                }
                p.set_component(prev);
            }
        }
        p.addi(Reg::SP, Reg::SP, l.frame_size as i64);
    }

    /// Emits code writing `pattern` over the shadow of
    /// `[sp+off, sp+off+len)` using 8-byte stores (each covering 64 app
    /// bytes).
    fn emit_shadow_fill(&self, p: &mut ProgramBuilder, off: u64, len: u64, pattern: u64) {
        // tp = shadow(sp + off) = gp + (sp + off) >> 3
        p.addi(Reg::TP, Reg::SP, off as i64);
        p.srli(Reg::TP, Reg::TP, 3);
        p.add(Reg::TP, Reg::TP, Reg::GP);
        p.li(Reg::T6, pattern as i64);
        let shadow_bytes = len.div_ceil(8);
        let mut s = 0u64;
        while s < shadow_bytes {
            let w = (shadow_bytes - s).min(8);
            p.store(
                Reg::T6,
                Reg::TP,
                s as i64,
                match w {
                    8 => rest_isa::MemSize::B8,
                    4..=7 => rest_isa::MemSize::B4,
                    2..=3 => rest_isa::MemSize::B2,
                    _ => rest_isa::MemSize::B1,
                },
            );
            s += w;
        }
    }
}

fn poison_pattern(b: u8) -> u64 {
    u64::from_le_bytes([b; 8])
}

fn round(v: u64, g: u64) -> u64 {
    v.div_ceil(g) * g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_isa::Inst;

    #[test]
    fn plain_layout_has_no_redzones() {
        let g = FrameGuard::new(StackScheme::None, TokenWidth::B64);
        let l = g.layout(&[16, 100], 24);
        assert!(l.redzones.is_empty());
        assert_eq!(l.buffers.len(), 2);
        assert_eq!(l.buffers[0].offset, 32); // locals rounded to 16
        assert_eq!(l.frame_size % 16, 0);
    }

    #[test]
    fn rest_layout_brackets_each_buffer_with_aligned_redzones() {
        let g = FrameGuard::new(StackScheme::Rest, TokenWidth::B64);
        let l = g.layout(&[16], 0);
        assert_eq!(l.redzones.len(), 2);
        for &(off, len) in &l.redzones {
            assert_eq!(off % 64, 0, "redzone offset must be token-aligned");
            assert_eq!(len % 64, 0, "redzone length must be token multiple");
        }
        let b = l.buffers[0];
        assert_eq!(b.offset, l.redzones[0].0 + l.redzones[0].1);
        assert_eq!(b.padding, 64 - 16);
        assert_eq!(l.frame_size % 64, 0);
    }

    #[test]
    fn rest_prologue_emits_one_arm_per_redzone_slot() {
        let g = FrameGuard::new(StackScheme::Rest, TokenWidth::B64);
        let l = g.layout(&[16], 0);
        let mut p = ProgramBuilder::new();
        g.emit_prologue(&mut p, &l);
        let arms = p_count(&p, |i| matches!(i, Inst::Arm { .. }));
        assert_eq!(arms, 2); // two 64 B redzones, one slot each
        g.emit_epilogue(&mut p, &l);
        let disarms = p_count(&p, |i| matches!(i, Inst::Disarm { .. }));
        assert_eq!(disarms, 2);
    }

    #[test]
    fn narrow_tokens_mean_more_arms() {
        let g = FrameGuard::new(StackScheme::Rest, TokenWidth::B16);
        let l = g.layout(&[16], 0);
        let mut p = ProgramBuilder::new();
        g.emit_prologue(&mut p, &l);
        let arms = p_count(&p, |i| matches!(i, Inst::Arm { .. }));
        // 16 B redzones at 16 B tokens: one arm per redzone.
        assert_eq!(arms, 2);
        // But the false-negative pad shrinks to zero for 16 B buffers.
        assert_eq!(l.buffers[0].padding, 0);
    }

    #[test]
    fn asan_prologue_emits_shadow_stores_not_arms() {
        let g = FrameGuard::new(StackScheme::Asan, TokenWidth::B64);
        let l = g.layout(&[16], 0);
        let mut p = ProgramBuilder::new();
        g.emit_prologue(&mut p, &l);
        assert_eq!(p_count(&p, |i| matches!(i, Inst::Arm { .. })), 0);
        assert!(p_count(&p, |i| matches!(i, Inst::Store { .. })) >= 2);
    }

    #[test]
    fn hardening_code_is_attributed_to_stack_protect() {
        let g = FrameGuard::new(StackScheme::Rest, TokenWidth::B64);
        let l = g.layout(&[16], 0);
        let mut p = ProgramBuilder::new();
        g.emit_prologue(&mut p, &l);
        p.halt();
        let prog = p.build();
        // First instruction: SP adjust = App; the arm code = StackProtect;
        // trailing halt = App again (component restored).
        assert_eq!(prog.component_at(prog.entry()), Component::App);
        let mut saw_protect = false;
        for i in 0..prog.len() as u64 {
            let pc = prog.entry() + i * 4;
            if prog.component_at(pc) == Component::StackProtect {
                saw_protect = true;
            }
        }
        assert!(saw_protect);
        let last = prog.entry() + (prog.len() as u64 - 1) * 4;
        assert_eq!(prog.component_at(last), Component::App);
    }

    fn p_count(p: &ProgramBuilder, f: impl Fn(&Inst) -> bool) -> usize {
        p.instructions().iter().filter(|i| f(i)).count()
    }
}
