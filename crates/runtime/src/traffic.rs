use rest_isa::{Component, DynInst};

use crate::layout::{RUNTIME_PC_BASE, RUNTIME_PC_SPAN};

/// Records the dynamic micro-ops performed by runtime services so they
/// can be replayed through the simulated pipeline.
///
/// Every allocator metadata update, shadow poke, token arm, and bulk-copy
/// word transfer becomes a [`DynInst`] here, attributed to the software
/// [`Component`] responsible — the mechanism behind the paper's Figure 3
/// overhead breakdown. Synthetic PCs cycle through a small window so the
/// injected stream behaves like a resident runtime loop in the front end.
#[derive(Debug)]
pub struct TrafficRecorder {
    ops: Vec<DynInst>,
    component: Component,
    pc_cursor: u64,
    /// When `false`, micro-ops are counted instead of built — the
    /// functional-only fast path, where the stream is never replayed.
    /// Synthetic PCs still advance identically so a later materialising
    /// call observes the same cursor state.
    materialize: bool,
    /// Micro-ops recorded while `materialize` was off.
    counted: u64,
}

impl Default for TrafficRecorder {
    fn default() -> TrafficRecorder {
        TrafficRecorder {
            ops: Vec::new(),
            component: Component::default(),
            pc_cursor: 0,
            materialize: true,
            counted: 0,
        }
    }
}

impl TrafficRecorder {
    /// Creates an empty recorder attributing to [`Component::App`].
    pub fn new() -> TrafficRecorder {
        TrafficRecorder::default()
    }

    /// Switches between materialising micro-ops (the timing path) and
    /// merely counting them (the functional fast path).
    pub fn set_materialize(&mut self, materialize: bool) {
        self.materialize = materialize;
    }

    fn record(&mut self, d: DynInst) {
        if self.materialize {
            self.ops.push(d);
        } else {
            self.counted += 1;
        }
    }

    /// Sets the component attributed to subsequent operations; returns
    /// the previous value so callers can restore it.
    pub fn set_component(&mut self, component: Component) -> Component {
        std::mem::replace(&mut self.component, component)
    }

    fn next_pc(&mut self) -> u64 {
        let pc = RUNTIME_PC_BASE + self.pc_cursor;
        self.pc_cursor = (self.pc_cursor + 4) % RUNTIME_PC_SPAN;
        pc
    }

    /// Records `n` integer ALU micro-ops (address arithmetic, compares).
    pub fn alu(&mut self, n: u64) {
        for _ in 0..n {
            let pc = self.next_pc();
            let d = DynInst::alu(pc, None, [None, None]).with_component(self.component);
            self.record(d);
        }
    }

    /// Records a load of `size` bytes at `addr`.
    pub fn load(&mut self, addr: u64, size: u64) {
        let pc = self.next_pc();
        let d = DynInst::load(pc, None, None, addr, size).with_component(self.component);
        self.record(d);
    }

    /// Records a store of `size` bytes at `addr`.
    pub fn store(&mut self, addr: u64, size: u64) {
        let pc = self.next_pc();
        let d = DynInst::store(pc, None, None, addr, size).with_component(self.component);
        self.record(d);
    }

    /// Records an `arm` of the token slot at `addr`.
    pub fn arm(&mut self, addr: u64, width: u64) {
        let pc = self.next_pc();
        let d = DynInst::arm(pc, None, addr, width).with_component(self.component);
        self.record(d);
    }

    /// Records a `disarm` of the token slot at `addr`.
    pub fn disarm(&mut self, addr: u64, width: u64) {
        let pc = self.next_pc();
        let d = DynInst::disarm(pc, None, addr, width).with_component(self.component);
        self.record(d);
    }

    /// Records a pre-built micro-op, overriding its component with the
    /// recorder's current attribution.
    pub fn push(&mut self, d: DynInst) {
        let component = self.component;
        self.record(d.with_component(component));
    }

    /// Number of recorded micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drains the recorded micro-ops in order.
    pub fn drain(&mut self) -> Vec<DynInst> {
        std::mem::take(&mut self.ops)
    }

    /// Appends the recorded micro-ops to `out` and clears the recorder,
    /// retaining its buffer capacity (the allocation-free splice used by
    /// the emulator's step loop).
    pub fn drain_into(&mut self, out: &mut Vec<DynInst>) {
        out.append(&mut self.ops);
    }

    /// Takes the count of micro-ops recorded while materialisation was
    /// off, resetting it to zero.
    pub fn take_recorded(&mut self) -> u64 {
        std::mem::take(&mut self.counted)
    }

    /// Read-only view of the recorded micro-ops.
    pub fn ops(&self) -> &[DynInst] {
        &self.ops
    }

    /// Current synthetic-PC cursor offset (advances identically in
    /// materialising and counting modes; lockstep differentials assert
    /// it matches across execution tiers).
    pub fn pc_cursor(&self) -> u64 {
        self.pc_cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_isa::{MemAccessKind, OpKind};

    #[test]
    fn records_in_order_with_component() {
        let mut r = TrafficRecorder::new();
        r.set_component(Component::Allocator);
        r.alu(2);
        r.store(0x100, 8);
        r.arm(0x140, 64);
        let ops = r.drain();
        assert_eq!(ops.len(), 4);
        assert!(ops.iter().all(|o| o.component == Component::Allocator));
        assert_eq!(ops[0].kind, OpKind::IntAlu);
        assert_eq!(ops[2].mem.unwrap().kind, MemAccessKind::Store);
        assert_eq!(ops[3].kind, OpKind::Arm);
        assert_eq!(ops[3].mem.unwrap().size, 64);
        assert!(r.is_empty());
    }

    #[test]
    fn synthetic_pcs_stay_in_runtime_window() {
        let mut r = TrafficRecorder::new();
        for _ in 0..1000 {
            r.load(0x2000, 8);
        }
        for op in r.ops() {
            assert!(op.pc >= RUNTIME_PC_BASE);
            assert!(op.pc < RUNTIME_PC_BASE + RUNTIME_PC_SPAN);
        }
    }

    #[test]
    fn counting_mode_counts_instead_of_materialising() {
        let mut r = TrafficRecorder::new();
        r.set_materialize(false);
        r.alu(3);
        r.store(0x100, 8);
        r.arm(0x140, 64);
        assert!(r.is_empty(), "counting mode must not build ops");
        assert_eq!(r.take_recorded(), 5);
        assert_eq!(r.take_recorded(), 0, "take resets the count");
        // The synthetic PC cursor advances identically in both modes, so
        // switching back to materialising continues the same window.
        let mut m = TrafficRecorder::new();
        m.alu(3);
        m.store(0x100, 8);
        m.arm(0x140, 64);
        r.set_materialize(true);
        r.load(0x2000, 8);
        m.load(0x2000, 8);
        assert_eq!(r.drain().last().unwrap().pc, m.drain().last().unwrap().pc);
    }

    #[test]
    fn drain_into_appends_and_retains_capacity() {
        let mut r = TrafficRecorder::new();
        r.alu(2);
        let mut out = vec![DynInst::alu(0x1_0000, None, [None, None])];
        r.drain_into(&mut out);
        assert_eq!(out.len(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn set_component_returns_previous() {
        let mut r = TrafficRecorder::new();
        let prev = r.set_component(Component::AccessCheck);
        assert_eq!(prev, Component::App);
        let prev = r.set_component(prev);
        assert_eq!(prev, Component::AccessCheck);
    }
}
