//! AddressSanitizer shadow memory.
//!
//! Every 8 bytes of application memory map to one shadow byte
//! (`shadow(a) = SHADOW_BASE + a/8`). A shadow byte of 0 means all eight
//! bytes are addressable; 1–7 means only that prefix is addressable; a
//! high (poison) value means none are, with the value encoding *why* —
//! which redzone or freed region the byte belongs to. This module
//! implements the mapping, the poison encoding, and the access
//! classification used both by the per-access instrumentation (overhead
//! component 3) and the libc interception (component 4).

use rest_isa::GuestMemory;

use crate::env::RtEnv;
use crate::layout::{shadow_addr, SHADOW_GRANULE};
use crate::violation::AsanReportKind;

/// Poison value: heap left redzone.
pub const POISON_HEAP_LEFT: u8 = 0xfa;
/// Poison value: heap right redzone.
pub const POISON_HEAP_RIGHT: u8 = 0xfb;
/// Poison value: freed (quarantined) heap memory.
pub const POISON_FREED: u8 = 0xfd;
/// Poison value: stack left redzone.
pub const POISON_STACK_LEFT: u8 = 0xf1;
/// Poison value: stack right redzone.
pub const POISON_STACK_RIGHT: u8 = 0xf3;

/// Classifies the poison value of a shadow byte.
fn kind_of_poison(value: u8) -> AsanReportKind {
    match value {
        POISON_FREED => AsanReportKind::UseAfterFree,
        POISON_STACK_LEFT | POISON_STACK_RIGHT => AsanReportKind::StackRedzone,
        POISON_HEAP_LEFT | POISON_HEAP_RIGHT => AsanReportKind::HeapRedzone,
        _ => AsanReportKind::PartialGranule,
    }
}

/// Pure check (no traffic recorded): is `[addr, addr+size)` fully
/// addressable per the shadow encoding?
///
/// # Errors
///
/// The report kind for the first inaccessible byte.
pub fn classify_access(mem: &GuestMemory, addr: u64, size: u64) -> Result<(), AsanReportKind> {
    for a in addr..addr + size.max(1) {
        let sv = mem.read_u8(shadow_addr(a));
        if sv == 0 {
            continue;
        }
        if sv < SHADOW_GRANULE as u8 {
            if (a % SHADOW_GRANULE) < sv as u64 {
                continue;
            }
            return Err(AsanReportKind::PartialGranule);
        }
        return Err(kind_of_poison(sv));
    }
    Ok(())
}

/// The instrumented-access model: records the shadow load the injected
/// check performs, then classifies. One shadow load covers the (≤ 8-byte)
/// scalar access the compiler instruments.
pub fn check_access_recorded(
    env: &mut RtEnv<'_>,
    addr: u64,
    size: u64,
) -> Result<(), AsanReportKind> {
    env.rec.load(shadow_addr(addr), 1);
    classify_access(env.mem, addr, size)
}

/// Poisons `[addr, addr+len)` with `value`, recording the shadow stores.
/// Stores are coalesced to 8-byte writes where the shadow range allows,
/// as compiler-generated poisoning does.
pub fn poison_region(env: &mut RtEnv<'_>, addr: u64, len: u64, value: u8) {
    write_shadow(env, addr, len, value);
}

/// Marks `[addr, addr+len)` addressable, encoding a partial tail granule
/// when `len` is not a multiple of 8.
pub fn unpoison_region(env: &mut RtEnv<'_>, addr: u64, len: u64) {
    debug_assert_eq!(addr % SHADOW_GRANULE, 0, "unpoison base must be granule-aligned");
    let full = len / SHADOW_GRANULE * SHADOW_GRANULE;
    write_shadow(env, addr, full, 0);
    let tail = len % SHADOW_GRANULE;
    if tail != 0 {
        let s = shadow_addr(addr + full);
        env.rec.store(s, 1);
        env.mem.write_u8(s, tail as u8);
    }
}

fn write_shadow(env: &mut RtEnv<'_>, addr: u64, len: u64, value: u8) {
    if len == 0 {
        return;
    }
    let s0 = shadow_addr(addr);
    let s1 = shadow_addr(addr + len - 1);
    let nbytes = s1 - s0 + 1;
    // Functional effect.
    env.mem.fill(s0, nbytes, value);
    // Recorded traffic: 8-byte stores over the shadow range.
    let mut s = s0;
    while s <= s1 {
        let w = (s1 - s + 1).min(8);
        env.rec.store(s, w);
        s += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::{NullBackend, Token, TokenWidth};
    use rest_isa::GuestMemory;

    use crate::traffic::TrafficRecorder;

    struct Fixture {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: NullBackend,
        token: Token,
    }

    impl Fixture {
        fn new() -> Fixture {
            let mut rng = StdRng::seed_from_u64(5);
            Fixture {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: NullBackend,
                token: Token::generate(TokenWidth::B64, &mut rng),
            }
        }

        fn env(&mut self) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut self.backend,
                token: &self.token,
                check_backend: false,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    #[test]
    fn poison_then_classify() {
        let mut f = Fixture::new();
        let mut env = f.env();
        poison_region(&mut env, 0x4000_0000, 64, POISON_HEAP_LEFT);
        assert_eq!(
            classify_access(env.mem, 0x4000_0000, 8),
            Err(AsanReportKind::HeapRedzone)
        );
        assert_eq!(
            classify_access(env.mem, 0x4000_003f, 1),
            Err(AsanReportKind::HeapRedzone)
        );
        assert_eq!(classify_access(env.mem, 0x4000_0040, 8), Ok(()));
        // An access straddling into the redzone is caught.
        assert_eq!(
            classify_access(env.mem, 0x3fff_fffc, 8),
            Err(AsanReportKind::HeapRedzone)
        );
    }

    #[test]
    fn unpoison_restores_addressability_with_partial_tail() {
        let mut f = Fixture::new();
        let mut env = f.env();
        poison_region(&mut env, 0x5000, 64, POISON_FREED);
        unpoison_region(&mut env, 0x5000, 13);
        assert_eq!(classify_access(env.mem, 0x5000, 8), Ok(()));
        // Bytes 8..13 addressable (partial granule value 5).
        assert_eq!(classify_access(env.mem, 0x5008, 5), Ok(()));
        // Byte 13 is beyond the valid prefix.
        assert_eq!(
            classify_access(env.mem, 0x500d, 1),
            Err(AsanReportKind::PartialGranule)
        );
        // Byte 16 is still freed-poisoned.
        assert_eq!(
            classify_access(env.mem, 0x5010, 1),
            Err(AsanReportKind::UseAfterFree)
        );
    }

    #[test]
    fn poison_values_map_to_report_kinds() {
        let mut f = Fixture::new();
        let mut env = f.env();
        poison_region(&mut env, 0x100, 8, POISON_STACK_LEFT);
        poison_region(&mut env, 0x108, 8, POISON_FREED);
        assert_eq!(
            classify_access(env.mem, 0x100, 1),
            Err(AsanReportKind::StackRedzone)
        );
        assert_eq!(
            classify_access(env.mem, 0x108, 1),
            Err(AsanReportKind::UseAfterFree)
        );
    }

    #[test]
    fn shadow_stores_are_coalesced() {
        let mut f = Fixture::new();
        let mut env = f.env();
        // 512 app bytes -> 64 shadow bytes -> 8 stores.
        poison_region(&mut env, 0x4000_0000, 512, POISON_HEAP_RIGHT);
        let _ = env;
        let stores = f.rec.drain();
        assert_eq!(stores.len(), 8);
        assert!(stores.iter().all(|o| o.mem.unwrap().size == 8));
    }

    #[test]
    fn recorded_check_emits_one_shadow_load() {
        let mut f = Fixture::new();
        let mut env = f.env();
        assert_eq!(check_access_recorded(&mut env, 0x6000, 8), Ok(()));
        let _ = env;
        let ops = f.rec.drain();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].mem.unwrap().addr, shadow_addr(0x6000));
    }
}
