//! Guest runtime for the REST simulator: heap allocators, shadow memory,
//! stack-protection passes, and the `ecall` service layer.
//!
//! The paper's software contribution (§IV) is an AddressSanitizer-derived
//! stack: a hardened heap allocator whose redzones are REST tokens
//! instead of shadow-memory poison, plus compiler instrumentation for
//! stack frames. This crate implements all three schemes side by side so
//! every figure's baselines come from the same machinery:
//!
//! * [`LibcAllocator`] — the plain, performance-first baseline (paper's
//!   "unsafe" binaries with the stock libc allocator),
//! * [`AsanAllocator`] + [`shadow`] — the ASan model: shadow-memory
//!   poisoning, redzones, quarantine, per-access checks
//!   and libc-call interception (the paper's four overhead components of
//!   Figure 3),
//! * [`RestAllocator`] — the REST allocator: token redzones, quarantined
//!   frees filled with tokens, and the relaxed invariant that free-pool
//!   chunks are *zeroed* rather than blacklisted (§IV-A),
//! * [`FrameGuard`] — the stack-protection pass, emitting either
//!   shadow-poisoning stores (ASan) or `arm`/`disarm` instructions (REST)
//!   at function prologues/epilogues,
//! * [`Runtime`] — the `ecall` dispatcher gluing it all to the emulator,
//!   including the `memcpy`/`memset` models that ASan intercepts.
//!
//! All runtime work is *recorded* as dynamic micro-ops through a
//! [`TrafficRecorder`], so every metadata store, shadow poke, and token
//! arm flows through the simulated pipeline and caches and shows up in
//! the measured overhead, exactly as in the paper's evaluation.

#![forbid(unsafe_code)]

pub mod alloc;
mod config;
mod env;
mod layout;
mod services;
pub mod shadow;
mod stackguard;
mod traffic;
mod violation;

pub use alloc::{AllocStats, Allocator, AsanAllocator, LibcAllocator, MteAllocator, PacAllocator, RestAllocator};
pub use config::{RtConfig, Scheme};
pub use env::RtEnv;
pub use layout::*;
pub use services::{EcallOutcome, Runtime};
pub use stackguard::{FrameGuard, FrameLayout, StackScheme};
pub use traffic::TrafficRecorder;
pub use violation::{AsanReport, AsanReportKind, Violation};
