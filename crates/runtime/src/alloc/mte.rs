use crate::alloc::{
    note_alloc, note_free, round_up, AllocStats, Allocator, Arena, ChunkInfo, ChunkState, LiveMap,
};
use crate::env::RtEnv;
use crate::layout::{tag_addr, HEAP_BASE};
use crate::violation::Violation;
use rest_core::backend::CANONICAL_MASK;

/// Header size of an MTE chunk (size word + user-size word). The header
/// granule keeps tag 0, so a tagged pointer walking backwards into it
/// mismatches — the header doubles as an underflow guard.
const HEADER: u64 = 16;
/// Allocation granule = the tag granule (16 B on ARM MTE).
const GRANULE: u64 = 16;

/// The MTE-model allocator: lock-and-key tagging instead of redzones.
///
/// Layout: `[16 B header][user data]`, 16-byte granularity, segregated
/// free bins with immediate reuse — deliberately the *plain* allocator's
/// shape, because MTE's protection is the tag, not the layout: no
/// redzones (adjacent-overflow detection comes from the neighbouring
/// chunk's different tag), no quarantine (use-after-free detection comes
/// from retag-on-free). Each malloc draws a fresh 4-bit tag through the
/// backend, tags the user granules, and returns the key in the
/// pointer's top byte; each free retags, so dangling pointers mismatch
/// with probability 15/16.
///
/// Tag maintenance traffic is charged like ASan's shadow writes: one
/// recorded 8-byte store to tag storage per cache line of user data
/// (the `DC GVA`-style bulk-tagging path).
#[derive(Debug)]
pub struct MteAllocator {
    arena: Arena,
    live: LiveMap,
    stats: AllocStats,
}

impl MteAllocator {
    /// Creates an empty allocator over the standard heap arena.
    pub fn new() -> MteAllocator {
        MteAllocator {
            arena: Arena::new(HEAP_BASE),
            live: LiveMap::default(),
            stats: AllocStats::default(),
        }
    }

    fn total_for(user: u64) -> u64 {
        HEADER + round_up(user.max(1), GRANULE)
    }

    /// Records the tag-maintenance stores for `len` bytes at `base`:
    /// one 8-byte tag-storage store per 64-byte line.
    fn record_tag_stores(env: &mut RtEnv<'_>, base: u64, len: u64) {
        let mut a = base;
        while a < base + len {
            env.rec.store(tag_addr(a), 8);
            a += 64;
        }
    }
}

impl Default for MteAllocator {
    fn default() -> Self {
        MteAllocator::new()
    }
}

impl Allocator for MteAllocator {
    fn name(&self) -> &'static str {
        "mte"
    }

    fn malloc(&mut self, env: &mut RtEnv<'_>, size: u64) -> Result<u64, Violation> {
        let total = Self::total_for(size);
        let user_len = total - HEADER;
        env.rec.alu(8); // size classing + IRG tag draw
        let (chunk, reused) = match self.arena.pop(total) {
            Some(c) => {
                env.rec.load(c, 8); // bin-list unlink reads the header
                (c, true)
            }
            None => match self.arena.grow(HEAP_BASE, total) {
                Some(c) => (c, false),
                None => return Ok(0),
            },
        };
        env.store_u64(chunk, total);
        env.store_u64(chunk + 8, size);
        let user = chunk + HEADER;
        // Metadata placement: draw a tag, tag the granules, key the
        // pointer. The header granule stays tag 0.
        let tagged = env.backend.on_alloc(user, user_len);
        Self::record_tag_stores(env, user, user_len);
        self.live.insert(
            user,
            ChunkInfo {
                chunk,
                total,
                user: size,
                left_rz: HEADER,
                state: ChunkState::Live,
            },
        );
        note_alloc(&mut self.stats, size, reused);
        Ok(tagged)
    }

    fn free(&mut self, env: &mut RtEnv<'_>, ptr: u64) -> Result<(), Violation> {
        if ptr == 0 {
            return Ok(());
        }
        let user = ptr & CANONICAL_MASK;
        env.rec.alu(6);
        // Lock-and-key free validation: the freeing pointer's key is
        // checked against the current granule tag (the LDG the hardened
        // free performs). A stale pointer — double free, or free of a
        // reused chunk — mismatches unless the retag drew the same tag
        // (the 1/16 aliasing miss).
        env.rec.load(tag_addr(user), 8);
        if let Some(fault) = env.backend_validate(ptr, 1) {
            self.stats.bad_frees += 1;
            return Err(fault.into());
        }
        let Some(info) = self.live.get(user).copied() else {
            // Not a chunk this allocator handed out (and the tag check
            // above passed, e.g. an untagged pointer into unmanaged
            // memory): plain-allocator behaviour, push nothing.
            return Ok(());
        };
        let user_len = info.total - HEADER;
        // Metadata retirement: retag so dangling uses mismatch.
        env.backend.on_free(user, user_len);
        Self::record_tag_stores(env, user, user_len);
        if let Some(i) = self.live.get_mut(user) {
            i.state = ChunkState::Free;
        }
        self.arena.push(info.chunk, info.total);
        note_free(&mut self.stats, info.user);
        Ok(())
    }

    fn usable_size(&self, ptr: u64) -> Option<u64> {
        self.live
            .get(ptr & CANONICAL_MASK)
            .filter(|i| i.state == ChunkState::Live)
            .map(|i| i.user)
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::backend::TAG_SHIFT;
    use rest_core::{MteBackend, MteMode, Token, TokenWidth};
    use rest_isa::GuestMemory;

    use crate::traffic::TrafficRecorder;

    struct Fx {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: MteBackend,
        token: Token,
    }

    impl Fx {
        fn new(mode: MteMode, seed: u64) -> Fx {
            let mut rng = StdRng::seed_from_u64(3);
            Fx {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: MteBackend::new(mode, seed),
                token: Token::generate(TokenWidth::B64, &mut rng),
            }
        }

        fn env(&mut self) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut self.backend,
                token: &self.token,
                check_backend: true,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    #[test]
    fn malloc_returns_tagged_pointer_over_tagged_granules() {
        let mut fx = Fx::new(MteMode::Sync, 5);
        let mut env = fx.env();
        let mut a = MteAllocator::new();
        let p = a.malloc(&mut env, 48).unwrap();
        let canon = p & CANONICAL_MASK;
        let tag = ((p >> TAG_SHIFT) & 0xF) as u8;
        assert_eq!(canon % GRANULE, 0);
        assert!(canon >= HEAP_BASE);
        let _ = env;
        assert_eq!(fx.backend.granule_tag(canon), tag);
        assert_eq!(fx.backend.granule_tag(canon + 32), tag);
        // Header granule stays untagged: a backwards walk mismatches.
        assert_eq!(fx.backend.granule_tag(canon - HEADER), 0);
        assert_eq!(a.usable_size(p), Some(48));
    }

    #[test]
    fn free_retags_and_double_free_usually_faults() {
        // Seeds are deterministic: find one where the retag draws a
        // different tag so the double free is detected (the aliasing
        // seed is exercised by the statistical test in rest-core).
        let mut fx = Fx::new(MteMode::Sync, 1);
        let mut env = fx.env();
        let mut a = MteAllocator::new();
        let p = a.malloc(&mut env, 32).unwrap();
        a.free(&mut env, p).unwrap();
        let _ = env;
        let old = ((p >> TAG_SHIFT) & 0xF) as u8;
        let new = fx.backend.granule_tag(p & CANONICAL_MASK);
        assert_ne!(old, new, "seed 1 must retag differently");
        let mut env = fx.env();
        let err = a.free(&mut env, p).unwrap_err();
        assert!(matches!(err, Violation::Tag(_)), "{err:?}");
        assert_eq!(a.stats().bad_frees, 1);
    }

    #[test]
    fn reuse_draws_a_fresh_tag_for_the_same_chunk() {
        let mut fx = Fx::new(MteMode::Sync, 2);
        let mut env = fx.env();
        let mut a = MteAllocator::new();
        let p1 = a.malloc(&mut env, 100).unwrap();
        // Free with the matching key succeeds.
        a.free(&mut env, p1).unwrap();
        let p2 = a.malloc(&mut env, 100).unwrap();
        assert_eq!(p1 & CANONICAL_MASK, p2 & CANONICAL_MASK, "chunk reused");
        assert_eq!(a.stats().reuses, 1);
    }

    #[test]
    fn tag_maintenance_traffic_reaches_tag_storage() {
        let mut fx = Fx::new(MteMode::Sync, 4);
        let mut env = fx.env();
        let mut a = MteAllocator::new();
        a.malloc(&mut env, 256).unwrap();
        let _ = env;
        let ops = fx.rec.drain();
        let tag_stores = ops
            .iter()
            .filter_map(|o| o.mem)
            .filter(|m| {
                m.kind == rest_isa::MemAccessKind::Store && m.addr >= crate::layout::TAG_BASE
            })
            .count();
        // 256 user bytes = 4 lines of tag stores.
        assert_eq!(tag_stores, 4);
    }

    #[test]
    fn free_of_null_is_noop() {
        let mut fx = Fx::new(MteMode::Sync, 6);
        let mut env = fx.env();
        let mut a = MteAllocator::new();
        a.free(&mut env, 0).unwrap();
        assert_eq!(a.stats().frees, 0);
    }

    #[test]
    fn oom_returns_null() {
        let mut fx = Fx::new(MteMode::Sync, 7);
        let mut env = fx.env();
        let mut a = MteAllocator::new();
        let p = a.malloc(&mut env, crate::alloc::HEAP_LIMIT).unwrap();
        assert_eq!(p, 0);
    }
}
