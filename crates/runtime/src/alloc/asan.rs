use crate::alloc::{
    note_alloc, note_free, redzone_for, round_up, AllocStats, Allocator, Arena, ChunkInfo,
    ChunkState, LiveMap, Quarantine,
};
use crate::env::RtEnv;
use crate::layout::{HEAP_BASE, SHADOW_GRANULE};
use crate::shadow;
use crate::violation::{AsanReport, AsanReportKind, Violation};

/// Header size (kept inside the left redzone, as in real ASan).
const HEADER: u64 = 32;

/// The AddressSanitizer allocator model.
///
/// Every allocation is wrapped in shadow-poisoned redzones:
///
/// ```text
/// [ header+left redzone : 0xfa ][ user : 0x00/partial ][ right rz : 0xfb ]
/// ```
///
/// Freed chunks are poisoned `0xfd` and parked in a FIFO quarantine
/// instead of the free pool, deferring reuse to widen the use-after-free
/// detection window. This reproduces the paper's "allocator designed with
/// security in mind … slower than other allocators" (overhead source 1).
#[derive(Debug)]
pub struct AsanAllocator {
    arena: Arena,
    quarantine: Quarantine,
    live: LiveMap,
    stats: AllocStats,
}

impl AsanAllocator {
    /// Creates the allocator with the given quarantine byte budget.
    pub fn new(quarantine_bytes: u64) -> AsanAllocator {
        AsanAllocator {
            arena: Arena::new(HEAP_BASE),
            quarantine: Quarantine::new(quarantine_bytes),
            live: LiveMap::default(),
            stats: AllocStats::default(),
        }
    }

    fn layout_for(size: u64) -> (u64, u64, u64) {
        // (left redzone incl. header, padded user, right redzone)
        let rz = redzone_for(size, SHADOW_GRANULE);
        let left = round_up(HEADER.max(rz), SHADOW_GRANULE);
        let user_pad = round_up(size.max(1), SHADOW_GRANULE);
        (left, user_pad, rz)
    }

    /// Chunks currently parked in quarantine (for tests/benches).
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }
}

impl Allocator for AsanAllocator {
    fn name(&self) -> &'static str {
        "asan"
    }

    fn malloc(&mut self, env: &mut RtEnv<'_>, size: u64) -> Result<u64, Violation> {
        let (left, user_pad, right) = Self::layout_for(size);
        let total = left + user_pad + right;
        // Size classing, layout arithmetic, stats, and the security
        // checks of a hardened malloc path (ASan's allocator runs tens
        // of instructions per call beyond the metadata stores).
        env.rec.alu(24);
        let (chunk, reused) = match self.arena.pop(total) {
            Some(c) => {
                env.rec.load(c, 8);
                (c, true)
            }
            None => match self.arena.grow(HEAP_BASE, total) {
                Some(c) => (c, false),
                None => return Ok(0),
            },
        };
        let user_ptr = chunk + left;
        // Header writes (inside the left redzone).
        env.store_u64(chunk, total);
        env.store_u64(chunk + 8, size);
        env.store_u64(chunk + 16, ChunkState::Live as u64);
        // Shadow: poison both redzones, unpoison the user area (with a
        // partial tail granule when size % 8 != 0).
        shadow::poison_region(env, chunk, left, shadow::POISON_HEAP_LEFT);
        shadow::unpoison_region(env, user_ptr, size.max(1));
        let tail_base = user_ptr + round_up(size.max(1), SHADOW_GRANULE);
        shadow::poison_region(
            env,
            tail_base,
            total - left - round_up(size.max(1), SHADOW_GRANULE),
            shadow::POISON_HEAP_RIGHT,
        );
        self.live.insert(
            user_ptr,
            ChunkInfo {
                chunk,
                total,
                user: size,
                left_rz: left,
                state: ChunkState::Live,
            },
        );
        note_alloc(&mut self.stats, size, reused);
        Ok(user_ptr)
    }

    fn free(&mut self, env: &mut RtEnv<'_>, ptr: u64) -> Result<(), Violation> {
        if ptr == 0 {
            return Ok(());
        }
        env.rec.alu(14);
        let info = match self.live.get_mut(ptr) {
            Some(i) if i.state == ChunkState::Live => i,
            _ => {
                self.stats.bad_frees += 1;
                return Err(Violation::Asan(AsanReport {
                    kind: AsanReportKind::BadFree,
                    addr: ptr,
                    size: 0,
                    pc: 0,
                }));
            }
        };
        info.state = ChunkState::Quarantined;
        let info = *info;
        env.rec.load(info.chunk, 8); // header read
        env.store_u64(info.chunk + 16, ChunkState::Quarantined as u64);
        // Poison the entire user region as freed memory.
        shadow::poison_region(
            env,
            info.chunk + info.left_rz,
            info.total - info.left_rz,
            shadow::POISON_FREED,
        );
        note_free(&mut self.stats, info.user);
        // Quarantine, releasing the oldest chunks past the budget.
        for (chunk, total) in self.quarantine.push(info.chunk, info.total) {
            self.stats.quarantine_evictions += 1;
            // Released chunks return to the bins still poisoned; the
            // next malloc rewrites their shadow.
            env.store_u64(chunk + 16, ChunkState::Free as u64);
            self.arena.push(chunk, total);
        }
        self.stats.quarantine_bytes = self.quarantine.bytes();
        Ok(())
    }

    fn usable_size(&self, ptr: u64) -> Option<u64> {
        self.live
            .get(ptr)
            .filter(|i| i.state == ChunkState::Live)
            .map(|i| i.user)
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::{NullBackend, Token, TokenWidth};
    use rest_isa::GuestMemory;

    use crate::traffic::TrafficRecorder;

    struct Fx {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: NullBackend,
        token: Token,
    }

    impl Fx {
        fn new() -> Fx {
            let mut rng = StdRng::seed_from_u64(21);
            Fx {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: NullBackend,
                token: Token::generate(TokenWidth::B64, &mut rng),
            }
        }

        fn env(&mut self) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut self.backend,
                token: &self.token,
                check_backend: false,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    #[test]
    fn allocation_is_bracketed_by_poison() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = AsanAllocator::new(1 << 20);
        let p = a.malloc(&mut env, 40).unwrap();
        // User area addressable.
        assert!(shadow::classify_access(env.mem, p, 40).is_ok());
        // One byte past the end: right redzone.
        assert_eq!(
            shadow::classify_access(env.mem, p + 40, 1),
            Err(AsanReportKind::HeapRedzone)
        );
        // One byte before: left redzone.
        assert_eq!(
            shadow::classify_access(env.mem, p - 1, 1),
            Err(AsanReportKind::HeapRedzone)
        );
    }

    #[test]
    fn freed_memory_reports_use_after_free() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = AsanAllocator::new(1 << 20);
        let p = a.malloc(&mut env, 64).unwrap();
        a.free(&mut env, p).unwrap();
        assert_eq!(
            shadow::classify_access(env.mem, p, 8),
            Err(AsanReportKind::UseAfterFree)
        );
    }

    #[test]
    fn quarantine_defers_reuse() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = AsanAllocator::new(1 << 20);
        let p1 = a.malloc(&mut env, 64).unwrap();
        a.free(&mut env, p1).unwrap();
        let p2 = a.malloc(&mut env, 64).unwrap();
        assert_ne!(p1, p2, "quarantine must prevent immediate reuse");
        assert_eq!(a.quarantine_len(), 1);
    }

    #[test]
    fn quarantine_eviction_releases_chunks_for_reuse() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        // Budget below two chunks: the second free evicts the first.
        let mut a = AsanAllocator::new(200);
        let p1 = a.malloc(&mut env, 64).unwrap();
        let p2 = a.malloc(&mut env, 64).unwrap();
        a.free(&mut env, p1).unwrap();
        a.free(&mut env, p2).unwrap();
        assert!(a.stats().quarantine_evictions >= 1);
        // New allocation of the same class reuses an evicted chunk.
        let p3 = a.malloc(&mut env, 64).unwrap();
        assert!(p3 == p1 || p3 == p2);
        // And the reused chunk is addressable again.
        assert!(shadow::classify_access(env.mem, p3, 64).is_ok());
    }

    #[test]
    fn double_free_is_reported() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = AsanAllocator::new(1 << 20);
        let p = a.malloc(&mut env, 32).unwrap();
        a.free(&mut env, p).unwrap();
        let err = a.free(&mut env, p).unwrap_err();
        assert!(matches!(
            err,
            Violation::Asan(r) if r.kind == AsanReportKind::BadFree
        ));
        assert_eq!(a.stats().bad_frees, 1);
    }

    #[test]
    fn invalid_free_is_reported() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = AsanAllocator::new(1 << 20);
        let err = a.free(&mut env, 0xdead_0000).unwrap_err();
        assert!(matches!(
            err,
            Violation::Asan(r) if r.kind == AsanReportKind::BadFree
        ));
    }

    #[test]
    fn usable_size_tracks_live_state() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = AsanAllocator::new(1 << 20);
        let p = a.malloc(&mut env, 33).unwrap();
        assert_eq!(a.usable_size(p), Some(33));
        a.free(&mut env, p).unwrap();
        assert_eq!(a.usable_size(p), None);
    }

    #[test]
    fn partial_tail_granule_catches_intra_granule_overflow() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = AsanAllocator::new(1 << 20);
        let p = a.malloc(&mut env, 13).unwrap();
        assert!(shadow::classify_access(env.mem, p, 13).is_ok());
        assert_eq!(
            shadow::classify_access(env.mem, p + 13, 1),
            Err(AsanReportKind::PartialGranule)
        );
    }
}
