use crate::alloc::{
    note_alloc, note_free, round_up, AllocStats, Allocator, Arena,
};
use crate::env::RtEnv;
use crate::layout::HEAP_BASE;
use crate::violation::Violation;

/// Header size of a plain chunk (size word + state word).
const HEADER: u64 = 16;
/// Allocation granule.
const GRANULE: u64 = 16;

/// The plain, performance-first baseline allocator (the paper's "unsafe"
/// binaries with the stock libc allocator).
///
/// Layout: `[16 B header][user data]`, 16-byte granularity, segregated
/// free bins with immediate reuse, **no redzones, no quarantine, no
/// validation**. A double free corrupts the free list exactly the way
/// real fast allocators are corrupted — the attack scenarios depend on
/// this behaviour, so do not "fix" it.
///
/// # Example
///
/// ```no_run
/// use rest_runtime::{Allocator, LibcAllocator};
///
/// let mut a = LibcAllocator::new();
/// assert_eq!(a.name(), "libc");
/// ```
#[derive(Debug)]
pub struct LibcAllocator {
    arena: Arena,
    stats: AllocStats,
}

impl LibcAllocator {
    /// Creates an empty allocator over the standard heap arena.
    pub fn new() -> LibcAllocator {
        LibcAllocator {
            arena: Arena::new(HEAP_BASE),
            stats: AllocStats::default(),
        }
    }

    fn total_for(user: u64) -> u64 {
        HEADER + round_up(user.max(1), GRANULE)
    }
}

impl Default for LibcAllocator {
    fn default() -> Self {
        LibcAllocator::new()
    }
}

impl Allocator for LibcAllocator {
    fn name(&self) -> &'static str {
        "libc"
    }

    fn malloc(&mut self, env: &mut RtEnv<'_>, size: u64) -> Result<u64, Violation> {
        let total = Self::total_for(size);
        env.rec.alu(6); // size classing + fast-path bookkeeping
        let (chunk, reused) = match self.arena.pop(total) {
            Some(c) => {
                env.rec.load(c, 8); // bin-list unlink reads the header
                (c, true)
            }
            None => match self.arena.grow(HEAP_BASE, total) {
                Some(c) => (c, false),
                None => return Ok(0),
            },
        };
        // Header: total size and user size.
        env.store_u64(chunk, total);
        env.store_u64(chunk + 8, size);
        note_alloc(&mut self.stats, size, reused);
        Ok(chunk + HEADER)
    }

    fn free(&mut self, env: &mut RtEnv<'_>, ptr: u64) -> Result<(), Violation> {
        if ptr == 0 {
            return Ok(());
        }
        let chunk = ptr - HEADER;
        let total = env.load_u64(chunk);
        let user = env.load_u64(chunk + 8);
        env.rec.alu(4);
        // No validation whatsoever: a double free pushes the chunk into
        // the bin twice, so two future mallocs alias — the classic libc
        // corruption the hardened allocators exist to stop.
        self.arena.push(chunk, total);
        note_free(&mut self.stats, user);
        Ok(())
    }

    fn usable_size(&self, _ptr: u64) -> Option<u64> {
        // The plain allocator keeps no host-side map; callers that need
        // the size read the header through guest memory.
        None
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::{NullBackend, Token, TokenWidth};
    use rest_isa::GuestMemory;

    use crate::traffic::TrafficRecorder;

    struct Fx {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: NullBackend,
        token: Token,
    }

    impl Fx {
        fn new() -> Fx {
            let mut rng = StdRng::seed_from_u64(3);
            Fx {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: NullBackend,
                token: Token::generate(TokenWidth::B64, &mut rng),
            }
        }

        fn env(&mut self) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut self.backend,
                token: &self.token,
                check_backend: false,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    #[test]
    fn malloc_returns_distinct_aligned_pointers() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = LibcAllocator::new();
        let p1 = a.malloc(&mut env, 24).unwrap();
        let p2 = a.malloc(&mut env, 24).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(p1 % GRANULE, 0);
        assert!(p1 >= HEAP_BASE);
        assert_eq!(a.stats().allocs, 2);
    }

    #[test]
    fn free_enables_immediate_reuse() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = LibcAllocator::new();
        let p1 = a.malloc(&mut env, 100).unwrap();
        a.free(&mut env, p1).unwrap();
        let p2 = a.malloc(&mut env, 100).unwrap();
        assert_eq!(p1, p2, "plain allocator reuses immediately");
        assert_eq!(a.stats().reuses, 1);
    }

    #[test]
    fn double_free_causes_aliasing_allocations() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = LibcAllocator::new();
        let p = a.malloc(&mut env, 64).unwrap();
        a.free(&mut env, p).unwrap();
        a.free(&mut env, p).unwrap(); // silently corrupts the bin
        let q1 = a.malloc(&mut env, 64).unwrap();
        let q2 = a.malloc(&mut env, 64).unwrap();
        assert_eq!(q1, q2, "two live allocations alias after double free");
    }

    #[test]
    fn free_of_null_is_noop() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = LibcAllocator::new();
        a.free(&mut env, 0).unwrap();
        assert_eq!(a.stats().frees, 0);
    }

    #[test]
    fn traffic_is_recorded() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = LibcAllocator::new();
        a.malloc(&mut env, 32).unwrap();
        let _ = env;
        assert!(fx.rec.len() >= 3, "header stores + alu must be recorded");
    }

    #[test]
    fn oom_returns_null() {
        let mut fx = Fx::new();
        let mut env = fx.env();
        let mut a = LibcAllocator::new();
        let p = a.malloc(&mut env, crate::alloc::HEAP_LIMIT).unwrap();
        assert_eq!(p, 0);
    }
}
