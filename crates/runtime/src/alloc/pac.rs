use crate::alloc::{
    note_alloc, note_free, round_up, AllocStats, Allocator, Arena, ChunkInfo, ChunkState, LiveMap,
};
use crate::env::RtEnv;
use crate::layout::HEAP_BASE;
use crate::violation::Violation;
use rest_core::backend::CANONICAL_MASK;

/// Header size of a PA chunk (size word + user-size word).
const HEADER: u64 = 16;
/// Allocation granule.
const GRANULE: u64 = 16;

/// The PA-model allocator: pointer signing instead of redzones.
///
/// Layout is the *plain* allocator's (`[16 B header][user data]`,
/// 16-byte granularity, immediate reuse, no redzones, no quarantine):
/// PA's protection lives entirely in the pointer. malloc signs the
/// returned pointer with an 8-bit PAC over (base, generation) through
/// the backend; free authenticates the incoming pointer — catching
/// double and invalid frees — then bumps the generation so dangling
/// pointers no longer authenticate. All metadata is registry state in
/// the backend; unlike MTE there is no tag storage traffic, only the
/// PACIA/AUTIA-style computations charged as ALU work.
#[derive(Debug)]
pub struct PacAllocator {
    arena: Arena,
    live: LiveMap,
    stats: AllocStats,
}

impl PacAllocator {
    /// Creates an empty allocator over the standard heap arena.
    pub fn new() -> PacAllocator {
        PacAllocator {
            arena: Arena::new(HEAP_BASE),
            live: LiveMap::default(),
            stats: AllocStats::default(),
        }
    }

    fn total_for(user: u64) -> u64 {
        HEADER + round_up(user.max(1), GRANULE)
    }
}

impl Default for PacAllocator {
    fn default() -> Self {
        PacAllocator::new()
    }
}

impl Allocator for PacAllocator {
    fn name(&self) -> &'static str {
        "pa"
    }

    fn malloc(&mut self, env: &mut RtEnv<'_>, size: u64) -> Result<u64, Violation> {
        let total = Self::total_for(size);
        let user_len = total - HEADER;
        env.rec.alu(10); // size classing + PACIA sign computation
        let (chunk, reused) = match self.arena.pop(total) {
            Some(c) => {
                env.rec.load(c, 8); // bin-list unlink reads the header
                (c, true)
            }
            None => match self.arena.grow(HEAP_BASE, total) {
                Some(c) => (c, false),
                None => return Ok(0),
            },
        };
        env.store_u64(chunk, total);
        env.store_u64(chunk + 8, size);
        let user = chunk + HEADER;
        // Metadata placement: register the (padded) allocation and sign
        // the pointer. The registry covers the whole granule-rounded
        // user area, so intra-padding overreads authenticate — PA's
        // granularity limit, like MTE's.
        let signed = env.backend.on_alloc(user, user_len);
        self.live.insert(
            user,
            ChunkInfo {
                chunk,
                total,
                user: size,
                left_rz: HEADER,
                state: ChunkState::Live,
            },
        );
        note_alloc(&mut self.stats, size, reused);
        Ok(signed)
    }

    fn free(&mut self, env: &mut RtEnv<'_>, ptr: u64) -> Result<(), Violation> {
        if ptr == 0 {
            return Ok(());
        }
        let user = ptr & CANONICAL_MASK;
        // AUTIA-style authentication of the freed pointer: a double free
        // authenticates against the already-bumped generation and an
        // invalid free against a missing registry entry — both fail
        // unless the 8-bit PACs collide (1/256).
        env.rec.alu(6);
        if let Some(fault) = env.backend_validate(ptr, 1) {
            self.stats.bad_frees += 1;
            return Err(fault.into());
        }
        let Some(info) = self.live.get(user).copied() else {
            // Unsigned pointer into unmanaged memory: plain-allocator
            // behaviour, nothing to push.
            return Ok(());
        };
        let user_len = info.total - HEADER;
        // Metadata retirement: bump the generation.
        env.backend.on_free(user, user_len);
        if let Some(i) = self.live.get_mut(user) {
            i.state = ChunkState::Free;
        }
        self.arena.push(info.chunk, info.total);
        note_free(&mut self.stats, info.user);
        Ok(())
    }

    fn usable_size(&self, ptr: u64) -> Option<u64> {
        self.live
            .get(ptr & CANONICAL_MASK)
            .filter(|i| i.state == ChunkState::Live)
            .map(|i| i.user)
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::backend::PAC_SHIFT;
    use rest_core::{PacBackend, Token, TokenWidth};
    use rest_isa::GuestMemory;

    use crate::traffic::TrafficRecorder;

    struct Fx {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: PacBackend,
        token: Token,
    }

    impl Fx {
        fn new(seed: u64) -> Fx {
            let mut rng = StdRng::seed_from_u64(3);
            Fx {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: PacBackend::new(seed),
                token: Token::generate(TokenWidth::B64, &mut rng),
            }
        }

        fn env(&mut self) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut self.backend,
                token: &self.token,
                check_backend: true,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    #[test]
    fn malloc_signs_and_the_signed_pointer_authenticates() {
        let mut fx = Fx::new(11);
        let mut env = fx.env();
        let mut a = PacAllocator::new();
        let p = a.malloc(&mut env, 40).unwrap();
        let canon = p & CANONICAL_MASK;
        assert!(canon >= HEAP_BASE);
        assert_ne!(p, canon, "pointer must carry a PAC");
        assert!(env.backend.check_access(p, 8, false, 0).is_none());
        // The padded tail (40 -> 48) authenticates: granularity limit.
        assert!(env.backend.check_access(p + 44, 4, false, 0).is_none());
        // Past the padded area it does not.
        assert!(env.backend.check_access(p + 48, 8, false, 0).is_some());
        assert_eq!(a.usable_size(p), Some(40));
    }

    #[test]
    fn double_free_fails_authentication() {
        let mut fx = Fx::new(12);
        let mut env = fx.env();
        let mut a = PacAllocator::new();
        let p = a.malloc(&mut env, 64).unwrap();
        a.free(&mut env, p).unwrap();
        let err = a.free(&mut env, p).unwrap_err();
        assert!(matches!(err, Violation::Pac(_)), "{err:?}");
        assert_eq!(a.stats().bad_frees, 1);
    }

    #[test]
    fn reuse_signs_with_a_new_generation() {
        let mut fx = Fx::new(13);
        let mut env = fx.env();
        let mut a = PacAllocator::new();
        let p1 = a.malloc(&mut env, 64).unwrap();
        a.free(&mut env, p1).unwrap();
        let p2 = a.malloc(&mut env, 64).unwrap();
        assert_eq!(p1 & CANONICAL_MASK, p2 & CANONICAL_MASK, "chunk reused");
        let pac1 = (p1 >> PAC_SHIFT) & 0xFF;
        let pac2 = (p2 >> PAC_SHIFT) & 0xFF;
        assert_ne!(pac1, pac2, "seed 13 must not collide generations");
        // The dangling pointer no longer authenticates; the fresh one
        // does.
        assert!(env.backend.check_access(p1, 8, false, 0).is_some());
        assert!(env.backend.check_access(p2, 8, false, 0).is_none());
    }

    #[test]
    fn free_of_null_is_noop() {
        let mut fx = Fx::new(14);
        let mut env = fx.env();
        let mut a = PacAllocator::new();
        a.free(&mut env, 0).unwrap();
        assert_eq!(a.stats().frees, 0);
    }

    #[test]
    fn oom_returns_null() {
        let mut fx = Fx::new(15);
        let mut env = fx.env();
        let mut a = PacAllocator::new();
        let p = a.malloc(&mut env, crate::alloc::HEAP_LIMIT).unwrap();
        assert_eq!(p, 0);
    }
}
