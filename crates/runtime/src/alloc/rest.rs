use crate::alloc::{
    note_alloc, note_free, redzone_for, round_up, AllocStats, Allocator, Arena, ChunkInfo,
    ChunkState, LiveMap, Quarantine,
};
use crate::env::RtEnv;
use crate::layout::HEAP_BASE;
use crate::violation::{AsanReport, AsanReportKind, Violation};

/// Header block size. The header holds 32 B of metadata; a full token
/// slot is reserved so user areas and redzones stay token-aligned.
const HEADER: u64 = 64;

/// The REST heap allocator (§IV-A, Figure 6B).
///
/// Adapted from ASan's allocator, with tokens instead of shadow metadata:
///
/// ```text
/// [ header ][ left rz: tokens ][ user (token-aligned) ][ right rz: tokens ]
/// ```
///
/// * `malloc` arms both redzones (spatial protection); redzones isolate
///   allocations from each other *and from the metadata*.
/// * `free` fills the entire chunk body with tokens and parks it in the
///   quarantine pool (temporal protection): dangling-pointer accesses and
///   the data they'd touch stay blacklisted until reuse.
/// * On release from quarantine the chunk is disarmed, which zeroes it —
///   the paper's **relaxed invariant**: free-pool chunks are *zeroed*,
///   not blacklisted (unlike ASan, which keeps its free pool poisoned),
///   trading arm/disarm work for no uninitialised-data leaks.
///
/// Because detection is in hardware, no access instrumentation exists
/// anywhere — this allocator is the *entire* software overhead of REST
/// heap protection, which is why the paper's Figure 7 overheads track
/// the allocator component of Figure 3.
#[derive(Debug)]
pub struct RestAllocator {
    arena: Arena,
    quarantine: Quarantine,
    live: LiveMap,
    stats: AllocStats,
    width: u64,
    sprinkle: bool,
    fast_pool: bool,
}

impl RestAllocator {
    /// Creates the allocator for the given token width (bytes are taken
    /// from the `RtEnv`'s token at call time; the width fixes alignment).
    pub fn new(quarantine_bytes: u64, token_width_bytes: u64) -> RestAllocator {
        assert!(
            matches!(token_width_bytes, 16 | 32 | 64),
            "token width must be 16, 32 or 64 bytes"
        );
        RestAllocator {
            arena: Arena::new(HEAP_BASE),
            quarantine: Quarantine::new(quarantine_bytes),
            live: LiveMap::default(),
            stats: AllocStats::default(),
            width: token_width_bytes,
            sprinkle: false,
            fast_pool: false,
        }
    }

    /// Enables the REST-aware fast pool (§VIII: "an allocator designed
    /// to take advantage of REST properties could be significantly
    /// faster"). Chunks released from quarantine stay *fully armed* in
    /// the free pool instead of being disarmed; reuse then only disarms
    /// the user area (which zeroes it — the uninitialised-data-leak
    /// guarantee is preserved) and skips re-arming the still-armed
    /// redzones. This removes the release-time disarm sweep and the
    /// redzone re-arming entirely for recycled chunks.
    pub fn with_fast_pool(mut self) -> RestAllocator {
        self.fast_pool = true;
        self
    }

    /// Enables decoy-token sprinkling (§V-C): fresh arena growth leaves
    /// pseudo-randomly placed armed slots in the gaps between chunks, so
    /// attacks that jump *over* redzones at a fixed stride still land on
    /// tokens. Placement is a deterministic hash of the chunk address.
    pub fn with_sprinkle(mut self) -> RestAllocator {
        self.sprinkle = true;
        self
    }

    fn layout_for(&self, size: u64) -> (u64, u64, u64) {
        let rz = redzone_for(size, self.width);
        let user_pad = round_up(size.max(1), self.width);
        (rz, user_pad, rz)
    }

    /// Chunks currently parked in quarantine (for tests/benches).
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }
}

impl Allocator for RestAllocator {
    fn name(&self) -> &'static str {
        "rest"
    }

    fn malloc(&mut self, env: &mut RtEnv<'_>, size: u64) -> Result<u64, Violation> {
        let (left, user_pad, right) = self.layout_for(size);
        let total = HEADER + left + user_pad + right;
        // The REST allocator is ASan's allocator adapted (§IV-A): same
        // hardened-path length.
        env.rec.alu(24);
        let (chunk, reused) = match self.arena.pop(total) {
            Some(c) => {
                env.rec.load(c, 8);
                (c, true)
            }
            None => match self.arena.grow(HEAP_BASE, total) {
                Some(c) => {
                    if self.sprinkle {
                        // Decoy token after roughly every other fresh
                        // chunk, at a hash-derived slot offset.
                        let h = c.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
                        if h & 1 == 0 {
                            let slots = 1 + (h >> 1) % 3;
                            if let Some(gap) =
                                self.arena.grow(HEAP_BASE, slots * self.width)
                            {
                                env.arm_range(gap, self.width);
                            }
                        }
                    }
                    (c, false)
                }
                None => return Ok(0),
            },
        };
        let user_ptr = chunk + HEADER + left;
        env.store_u64(chunk, total);
        env.store_u64(chunk + 8, size);
        env.store_u64(chunk + 16, ChunkState::Live as u64);
        if self.fast_pool && reused {
            // Fast pool: the chunk arrives fully armed; disarm (and
            // thereby zero) just the user area. The redzones stay armed
            // for free.
            env.disarm_range(user_ptr, user_pad);
        } else {
            // Arm the redzones. Free-pool chunks arrive zeroed (relaxed
            // invariant), fresh chunks are demand-zero: either way the
            // redzones are unarmed before this.
            env.arm_range(chunk + HEADER, left);
            env.arm_range(user_ptr + user_pad, right);
        }
        self.live.insert(
            user_ptr,
            ChunkInfo {
                chunk,
                total,
                user: size,
                left_rz: HEADER + left,
                state: ChunkState::Live,
            },
        );
        note_alloc(&mut self.stats, size, reused);
        Ok(user_ptr)
    }

    fn free(&mut self, env: &mut RtEnv<'_>, ptr: u64) -> Result<(), Violation> {
        if ptr == 0 {
            return Ok(());
        }
        env.rec.alu(14);
        let info = match self.live.get_mut(ptr) {
            Some(i) if i.state == ChunkState::Live => i,
            _ => {
                // Double or invalid free: the chunk is not live. This is
                // the allocator's own (software) validation — present in
                // ASan's allocator, which REST reuses (§IV-A).
                self.stats.bad_frees += 1;
                return Err(Violation::Asan(AsanReport {
                    kind: AsanReportKind::BadFree,
                    addr: ptr,
                    size: 0,
                    pc: 0,
                }));
            }
        };
        info.state = ChunkState::Quarantined;
        let info = *info;
        env.rec.load(info.chunk, 8);
        env.store_u64(info.chunk + 16, ChunkState::Quarantined as u64);
        // Blacklist the freed user area (the redzones are already armed):
        // any dangling access now raises in hardware.
        env.arm_range(ptr, info.total - info.left_rz - redzone_for(info.user, self.width));
        note_free(&mut self.stats, info.user);
        for (chunk, total) in self.quarantine.push(info.chunk, info.total) {
            self.stats.quarantine_evictions += 1;
            if self.fast_pool {
                // Fast pool: keep the chunk fully armed in the free
                // pool — release costs nothing; reuse pays the user-area
                // disarm it needs anyway.
                env.store_u64(chunk + 16, ChunkState::Free as u64);
            } else {
                // Disarm the entire chunk body; disarm zeroes each slot,
                // so the chunk re-enters the free pool zeroed (the
                // relaxed invariant) and uninitialised-data leaks are
                // impossible.
                env.disarm_range(chunk + HEADER, total - HEADER);
                env.store_u64(chunk + 16, ChunkState::Free as u64);
            }
            self.arena.push(chunk, total);
        }
        self.stats.quarantine_bytes = self.quarantine.bytes();
        Ok(())
    }

    fn usable_size(&self, ptr: u64) -> Option<u64> {
        self.live
            .get(ptr)
            .filter(|i| i.state == ChunkState::Live)
            .map(|i| i.user)
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::{Mode, RestBackend, RestExceptionKind, Token, TokenWidth};
    use rest_isa::{GuestMemory, MemSize};

    use crate::traffic::TrafficRecorder;
    use crate::violation::Violation;

    struct Fx {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: RestBackend,
        token: Token,
    }

    impl Fx {
        fn new(width: TokenWidth) -> Fx {
            let mut rng = StdRng::seed_from_u64(33);
            Fx {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: RestBackend::new(width, Mode::Secure),
                token: Token::generate(width, &mut rng),
            }
        }

        fn env(&mut self) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut self.backend,
                token: &self.token,
                check_backend: true,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    #[test]
    fn allocation_is_bracketed_by_tokens() {
        let mut fx = Fx::new(TokenWidth::B64);
        let mut env = fx.env();
        let mut a = RestAllocator::new(1 << 20, 64);
        let p = a.malloc(&mut env, 100).unwrap();
        assert_eq!(p % 64, 0, "user area must be token-aligned");
        // In-bounds accesses are fine.
        assert!(env.checked_load(p, MemSize::B8).is_ok());
        assert!(env.checked_load(p + 96, MemSize::B4).is_ok());
        // Past the padded end: right redzone token.
        let err = env.checked_load(p + 128, MemSize::B8).unwrap_err();
        assert!(matches!(err, Violation::Rest(_)));
        // Before the start: left redzone token.
        let err = env.checked_load(p - 8, MemSize::B8).unwrap_err();
        assert!(matches!(err, Violation::Rest(_)));
    }

    #[test]
    fn padding_gap_is_a_known_false_negative() {
        // §V-C "False Negatives": an overflow small enough to stay inside
        // the alignment padding is not detected (and reads zeroes, so
        // nothing leaks on the heap).
        let mut fx = Fx::new(TokenWidth::B64);
        let mut env = fx.env();
        let mut a = RestAllocator::new(1 << 20, 64);
        let p = a.malloc(&mut env, 100).unwrap();
        // Bytes 100..128 are padding: access does NOT fault…
        let v = env.checked_load(p + 100, MemSize::B8).unwrap();
        // …but the pad is zeroed, so nothing of value leaks.
        assert_eq!(v, 0);
    }

    #[test]
    fn freed_chunk_is_fully_blacklisted_until_reuse() {
        let mut fx = Fx::new(TokenWidth::B64);
        let mut env = fx.env();
        let mut a = RestAllocator::new(1 << 20, 64);
        let p = a.malloc(&mut env, 64).unwrap();
        env.checked_store(p, 0xdead, MemSize::B8).unwrap();
        a.free(&mut env, p).unwrap();
        // Dangling read now hits a token (UAF caught).
        let err = env.checked_load(p, MemSize::B8).unwrap_err();
        assert!(matches!(err, Violation::Rest(e) if e.kind == RestExceptionKind::TokenLoad));
        // And reuse is deferred by the quarantine.
        let p2 = a.malloc(&mut env, 64).unwrap();
        assert_ne!(p, p2);
    }

    #[test]
    fn quarantine_release_zeroes_the_chunk() {
        let mut fx = Fx::new(TokenWidth::B64);
        let mut env = fx.env();
        let mut a = RestAllocator::new(400, 64); // tiny budget
        let p1 = a.malloc(&mut env, 64).unwrap();
        env.checked_store(p1, 0x5ec4e7, MemSize::B8).unwrap();
        a.free(&mut env, p1).unwrap();
        // Another free forces p1's chunk out of quarantine.
        let p2 = a.malloc(&mut env, 64).unwrap();
        a.free(&mut env, p2).unwrap();
        assert!(a.stats().quarantine_evictions >= 1);
        // Reallocate p1's chunk: contents must be zero (no uninit leak).
        let p3 = a.malloc(&mut env, 64).unwrap();
        assert_eq!(p3, p1);
        let v = env.checked_load(p3, MemSize::B8).unwrap();
        assert_eq!(v, 0, "relaxed invariant: free-pool chunks are zeroed");
        assert_eq!(a.stats().reuses, 1);
    }

    #[test]
    fn double_free_is_reported() {
        let mut fx = Fx::new(TokenWidth::B64);
        let mut env = fx.env();
        let mut a = RestAllocator::new(1 << 20, 64);
        let p = a.malloc(&mut env, 48).unwrap();
        a.free(&mut env, p).unwrap();
        let err = a.free(&mut env, p).unwrap_err();
        assert!(matches!(
            err,
            Violation::Asan(r) if r.kind == AsanReportKind::BadFree
        ));
    }

    #[test]
    fn narrow_tokens_shrink_padding() {
        let mut fx = Fx::new(TokenWidth::B16);
        let mut env = fx.env();
        let mut a = RestAllocator::new(1 << 20, 16);
        let p = a.malloc(&mut env, 20).unwrap();
        assert_eq!(p % 16, 0);
        // With 16 B tokens the pad after 20 bytes is 12 bytes; byte 32
        // is already a token.
        assert!(env.checked_load(p + 20, MemSize::B4).is_ok());
        let err = env.checked_load(p + 32, MemSize::B8).unwrap_err();
        assert!(matches!(err, Violation::Rest(_)));
    }

    #[test]
    fn metadata_is_separated_from_user_data_by_redzones() {
        let mut fx = Fx::new(TokenWidth::B64);
        let mut env = fx.env();
        let mut a = RestAllocator::new(1 << 20, 64);
        let p = a.malloc(&mut env, 64).unwrap();
        // Walking backwards from the user pointer, the attacker hits a
        // token before reaching the header.
        let mut hit_token = false;
        let mut addr = p - 8;
        for _ in 0..64 {
            match env.checked_load(addr, MemSize::B8) {
                Err(Violation::Rest(_)) => {
                    hit_token = true;
                    break;
                }
                _ => addr -= 8,
            }
        }
        assert!(hit_token, "header must be guarded by the left redzone");
    }

    #[test]
    fn alloc_free_cycles_preserve_armed_set_consistency() {
        let mut fx = Fx::new(TokenWidth::B64);
        let mut env = fx.env();
        let mut a = RestAllocator::new(2048, 64);
        let mut ptrs = Vec::new();
        for i in 0..20 {
            let p = a.malloc(&mut env, 32 + (i % 5) * 48).unwrap();
            assert_ne!(p, 0);
            ptrs.push(p);
        }
        for p in ptrs {
            a.free(&mut env, p).unwrap();
        }
        // Everything still armed is accounted for by quarantined chunks
        // and live redzones; disarms never panicked, so the allocator
        // and the armed set agree.
        assert!(env.backend.armed_set().unwrap().armed_count() > 0);
        assert_eq!(a.stats().allocs, 20);
        assert_eq!(a.stats().frees, 20);
    }
}
