//! Heap allocators: the plain baseline, the ASan model, and the REST
//! allocator the paper builds (§IV-A).
//!
//! All three share the same arena machinery (bump allocation from
//! [`crate::HEAP_BASE`], segregated free bins keyed by chunk size, a FIFO
//! quarantine for the hardened schemes) so that measured differences come
//! from the *protection work* — shadow poisoning vs. token arming vs.
//! nothing — not from incidental implementation divergence.

mod asan;
mod libc;
mod mte;
mod pac;
mod rest;

pub use asan::AsanAllocator;
pub use libc::LibcAllocator;
pub use mte::MteAllocator;
pub use pac::PacAllocator;
pub use rest::RestAllocator;

use std::collections::{HashMap, VecDeque};

use crate::env::RtEnv;
use crate::violation::Violation;

/// Counters every allocator maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful `malloc`-family calls.
    pub allocs: u64,
    /// Successful `free` calls.
    pub frees: u64,
    /// Total user bytes handed out.
    pub bytes_requested: u64,
    /// Live user bytes right now.
    pub live_bytes: u64,
    /// Peak live user bytes.
    pub peak_live_bytes: u64,
    /// Bytes currently parked in the quarantine pool.
    pub quarantine_bytes: u64,
    /// Chunks released from quarantine back to the free pool.
    pub quarantine_evictions: u64,
    /// Invalid/double frees detected (hardened allocators only).
    pub bad_frees: u64,
    /// Chunks reused from the free bins (vs. fresh arena growth).
    pub reuses: u64,
}

/// A heap allocator operating on simulated guest memory.
///
/// All memory traffic the allocator performs is recorded through the
/// [`RtEnv`] so it is charged to the simulated pipeline — this is the
/// "Allocator" component of the paper's Figure 3.
pub trait Allocator: std::fmt::Debug {
    /// Scheme name (`"libc"`, `"asan"`, `"rest"`).
    fn name(&self) -> &'static str;

    /// Allocates `size` user bytes; returns the user pointer, or 0 when
    /// the arena is exhausted.
    ///
    /// # Errors
    ///
    /// Hardened allocators may report violations discovered during
    /// bookkeeping (none in the current designs; the `Result` keeps the
    /// trait uniform with [`Allocator::free`]).
    fn malloc(&mut self, env: &mut RtEnv<'_>, size: u64) -> Result<u64, Violation>;

    /// Frees the allocation at `ptr`.
    ///
    /// # Errors
    ///
    /// Hardened allocators report double/invalid frees. The plain
    /// allocator silently corrupts its free list instead, as real libc
    /// does — attack scenarios rely on this.
    fn free(&mut self, env: &mut RtEnv<'_>, ptr: u64) -> Result<(), Violation>;

    /// User size of the live allocation at `ptr`, if `ptr` is one.
    fn usable_size(&self, ptr: u64) -> Option<u64>;

    /// Counter snapshot.
    fn stats(&self) -> &AllocStats;
}

/// Chunk lifecycle state stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkState {
    Free = 0,
    Live = 1,
    Quarantined = 2,
}

/// Arena limit: 256 MiB of heap address space (re-exported to guest
/// tooling as [`crate::layout::HEAP_SPAN`]).
pub(crate) const HEAP_LIMIT: u64 = crate::layout::HEAP_SPAN;

/// Shared arena: bump pointer plus segregated free bins keyed by total
/// chunk size.
#[derive(Debug)]
pub(crate) struct Arena {
    pub brk: u64,
    bins: HashMap<u64, Vec<u64>>,
}

impl Arena {
    pub fn new(base: u64) -> Arena {
        Arena {
            brk: base,
            bins: HashMap::new(),
        }
    }

    /// Pops a recycled chunk of exactly `total` bytes, if any.
    pub fn pop(&mut self, total: u64) -> Option<u64> {
        self.bins.get_mut(&total)?.pop()
    }

    /// Returns a chunk to its bin.
    pub fn push(&mut self, chunk: u64, total: u64) {
        self.bins.entry(total).or_default().push(chunk);
    }

    /// Bump-allocates `total` fresh bytes, or `None` past the arena
    /// limit.
    pub fn grow(&mut self, base: u64, total: u64) -> Option<u64> {
        if self.brk + total > base + HEAP_LIMIT {
            return None;
        }
        let chunk = self.brk;
        self.brk += total;
        Some(chunk)
    }
}

/// FIFO quarantine holding freed chunks until the byte budget overflows.
#[derive(Debug)]
pub(crate) struct Quarantine {
    fifo: VecDeque<(u64, u64)>, // (chunk, total)
    bytes: u64,
    budget: u64,
}

impl Quarantine {
    pub fn new(budget: u64) -> Quarantine {
        Quarantine {
            fifo: VecDeque::new(),
            bytes: 0,
            budget,
        }
    }

    /// Parks a chunk; returns the chunks evicted to stay within budget.
    pub fn push(&mut self, chunk: u64, total: u64) -> Vec<(u64, u64)> {
        self.fifo.push_back((chunk, total));
        self.bytes += total;
        let mut evicted = Vec::new();
        while self.bytes > self.budget {
            let (c, t) = self.fifo.pop_front().expect("bytes>0 implies entries");
            self.bytes -= t;
            evicted.push((c, t));
        }
        evicted
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn len(&self) -> usize {
        self.fifo.len()
    }
}

/// Redzone size for a `user`-byte allocation, at `granule` alignment:
/// scales with allocation size (ASan-style), clamped to [granule·max(16),
/// 2048], rounded up to the granule.
pub(crate) fn redzone_for(user: u64, granule: u64) -> u64 {
    let base = (user / 4).clamp(16.max(granule), 2048);
    base.div_ceil(granule) * granule
}

/// Rounds `v` up to a multiple of `granule`.
pub(crate) fn round_up(v: u64, granule: u64) -> u64 {
    v.div_ceil(granule.max(1)) * granule.max(1)
}

/// Book-keeping helpers shared by the hardened allocators: live-pointer
/// map plus stats updates.
#[derive(Debug, Default)]
pub(crate) struct LiveMap {
    /// user pointer -> (chunk base, total size, user size, left rz).
    map: HashMap<u64, ChunkInfo>,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ChunkInfo {
    pub chunk: u64,
    pub total: u64,
    pub user: u64,
    pub left_rz: u64,
    pub state: ChunkState,
}

impl LiveMap {
    pub fn insert(&mut self, ptr: u64, info: ChunkInfo) {
        self.map.insert(ptr, info);
    }

    pub fn get(&self, ptr: u64) -> Option<&ChunkInfo> {
        self.map.get(&ptr)
    }

    pub fn get_mut(&mut self, ptr: u64) -> Option<&mut ChunkInfo> {
        self.map.get_mut(&ptr)
    }


}

pub(crate) fn note_alloc(stats: &mut AllocStats, size: u64, reused: bool) {
    stats.allocs += 1;
    stats.bytes_requested += size;
    stats.live_bytes += size;
    stats.peak_live_bytes = stats.peak_live_bytes.max(stats.live_bytes);
    if reused {
        stats.reuses += 1;
    }
}

pub(crate) fn note_free(stats: &mut AllocStats, size: u64) {
    stats.frees += 1;
    stats.live_bytes = stats.live_bytes.saturating_sub(size);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redzone_scales_and_clamps() {
        assert_eq!(redzone_for(8, 8), 16); // min 16
        assert_eq!(redzone_for(8, 64), 64); // min one token
        assert_eq!(redzone_for(4096, 64), 1024); // size/4
        assert_eq!(redzone_for(1 << 20, 64), 2048); // clamped
        assert_eq!(redzone_for(100, 8), 32); // 25 -> 32
        // Always granule multiples.
        for user in [0u64, 1, 7, 100, 5000, 1 << 22] {
            for g in [8u64, 16, 32, 64] {
                assert_eq!(redzone_for(user, g) % g, 0);
            }
        }
    }

    #[test]
    fn arena_reuses_and_grows() {
        let mut a = Arena::new(0x1000);
        assert_eq!(a.pop(128), None);
        let c1 = a.grow(0x1000, 128).unwrap();
        assert_eq!(c1, 0x1000);
        let c2 = a.grow(0x1000, 128).unwrap();
        assert_eq!(c2, 0x1080);
        a.push(c1, 128);
        assert_eq!(a.pop(128), Some(c1));
        assert_eq!(a.pop(128), None);
    }

    #[test]
    fn arena_limit() {
        let mut a = Arena::new(0);
        assert!(a.grow(0, HEAP_LIMIT + 1).is_none());
        assert!(a.grow(0, HEAP_LIMIT).is_some());
        assert!(a.grow(0, 1).is_none());
    }

    #[test]
    fn quarantine_fifo_evicts_oldest_over_budget() {
        let mut q = Quarantine::new(100);
        assert!(q.push(1, 40).is_empty());
        assert!(q.push(2, 40).is_empty());
        let ev = q.push(3, 40);
        assert_eq!(ev, vec![(1, 40)]);
        assert_eq!(q.bytes(), 80);
        assert_eq!(q.len(), 2);
        // A huge chunk flushes everything including itself if needed.
        let ev = q.push(4, 500);
        assert_eq!(ev.len(), 3);
        assert_eq!(q.bytes(), 0);
    }
}
