use rest_isa::{Component, EcallNum, MemSize};

use crate::alloc::{Allocator, AsanAllocator, LibcAllocator, MteAllocator, PacAllocator, RestAllocator};
use crate::config::{RtConfig, Scheme};
use crate::env::RtEnv;
use crate::layout::STATIC_BASE;
use crate::shadow;
use crate::violation::{AsanReport, Violation};

/// Result of dispatching one `ecall`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcallOutcome {
    /// Service completed; value to place in `a0`.
    Done(u64),
    /// Program requested termination with this exit code.
    Exit(i32),
    /// The service detected a memory-safety violation.
    Violation(Violation),
}

/// The guest runtime: allocator + libc models behind the `ecall`
/// interface.
///
/// One `Runtime` exists per simulated program run. The emulator passes
/// each `ecall` here along with an [`RtEnv`] giving access to guest
/// memory and the traffic recorder; all work the runtime performs is
/// recorded as micro-ops and charged to the simulated pipeline.
#[derive(Debug)]
pub struct Runtime {
    cfg: RtConfig,
    allocator: Box<dyn Allocator>,
    output: Vec<u8>,
    sbrk: u64,
    /// Intercepted libc calls that performed range checks.
    intercept_checks: u64,
}

impl Runtime {
    /// Builds the runtime for `cfg`, selecting the matching allocator.
    pub fn new(cfg: RtConfig) -> Runtime {
        let allocator: Box<dyn Allocator> = match cfg.scheme {
            Scheme::Plain => Box::new(LibcAllocator::new()),
            Scheme::Asan => Box::new(AsanAllocator::new(cfg.quarantine_bytes)),
            Scheme::Rest => {
                let mut a = RestAllocator::new(cfg.quarantine_bytes, cfg.token_width.bytes());
                if cfg.sprinkle_tokens {
                    a = a.with_sprinkle();
                }
                if cfg.fast_pool_allocator {
                    a = a.with_fast_pool();
                }
                Box::new(a)
            }
            Scheme::Mte => Box::new(MteAllocator::new()),
            Scheme::Pa => Box::new(PacAllocator::new()),
        };
        Runtime {
            cfg,
            allocator,
            output: Vec::new(),
            sbrk: STATIC_BASE,
            intercept_checks: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RtConfig {
        &self.cfg
    }

    /// The active allocator (for stats inspection).
    pub fn allocator(&self) -> &dyn Allocator {
        &*self.allocator
    }

    /// Bytes the program wrote via `PutChar`.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Number of intercepted libc calls that were range-checked.
    pub fn intercept_checks(&self) -> u64 {
        self.intercept_checks
    }

    /// Dispatches one `ecall`. `args` are the values of `a0..a5`.
    pub fn ecall(&mut self, num: EcallNum, args: [u64; 6], env: &mut RtEnv<'_>) -> EcallOutcome {
        match num {
            EcallNum::Malloc => self.do_malloc(env, args[0]),
            EcallNum::Free => {
                env.note_free_site(args[0]);
                match self.allocator.free(env, args[0]) {
                    Ok(()) => EcallOutcome::Done(0),
                    Err(v) => EcallOutcome::Violation(v),
                }
            }
            EcallNum::Calloc => {
                let bytes = args[0].saturating_mul(args[1]);
                match self.do_malloc(env, bytes) {
                    EcallOutcome::Done(ptr) if ptr != 0 => {
                        let prev = env.rec.set_component(Component::Allocator);
                        let r = self.copy_fill(env, ptr, 0, bytes);
                        env.rec.set_component(prev);
                        match r {
                            Ok(()) => EcallOutcome::Done(ptr),
                            Err(v) => EcallOutcome::Violation(v),
                        }
                    }
                    other => other,
                }
            }
            EcallNum::Realloc => self.do_realloc(env, args[0], args[1]),
            EcallNum::Memcpy => match self.do_memcpy(env, args[0], args[1], args[2]) {
                Ok(()) => EcallOutcome::Done(args[0]),
                Err(v) => EcallOutcome::Violation(v),
            },
            EcallNum::Memset => {
                if self.cfg.intercept_libc {
                    if let Err(v) = self.intercept_range_check(env, args[0], args[2]) {
                        return EcallOutcome::Violation(v);
                    }
                }
                match self.copy_fill(env, args[0], args[1] as u8, args[2]) {
                    Ok(()) => EcallOutcome::Done(args[0]),
                    Err(v) => EcallOutcome::Violation(v),
                }
            }
            EcallNum::Exit => EcallOutcome::Exit(args[0] as i32),
            EcallNum::PutChar => {
                self.output.push(args[0] as u8);
                EcallOutcome::Done(0)
            }
            EcallNum::Sbrk => {
                let old = self.sbrk;
                self.sbrk += args[0];
                EcallOutcome::Done(old)
            }
        }
    }

    fn do_malloc(&mut self, env: &mut RtEnv<'_>, size: u64) -> EcallOutcome {
        let prev = env.rec.set_component(Component::Allocator);
        let r = self.allocator.malloc(env, size);
        env.rec.set_component(prev);
        match r {
            Ok(ptr) => {
                if ptr != 0 {
                    let len = self.allocator.usable_size(ptr).unwrap_or(size).max(size);
                    env.note_alloc_site(ptr, len);
                }
                EcallOutcome::Done(ptr)
            }
            Err(v) => EcallOutcome::Violation(v),
        }
    }

    fn do_realloc(&mut self, env: &mut RtEnv<'_>, ptr: u64, new_size: u64) -> EcallOutcome {
        if ptr == 0 {
            return self.do_malloc(env, new_size);
        }
        let old = self.allocator.usable_size(ptr).unwrap_or(new_size);
        let new_ptr = match self.do_malloc(env, new_size) {
            EcallOutcome::Done(p) if p != 0 => p,
            other => return other,
        };
        if let Err(v) = self.copy_words(env, new_ptr, ptr, old.min(new_size)) {
            return EcallOutcome::Violation(v);
        }
        env.note_free_site(ptr);
        let prev = env.rec.set_component(Component::Allocator);
        let r = self.allocator.free(env, ptr);
        env.rec.set_component(prev);
        match r {
            Ok(()) => EcallOutcome::Done(new_ptr),
            Err(v) => EcallOutcome::Violation(v),
        }
    }

    fn do_memcpy(&mut self, env: &mut RtEnv<'_>, dst: u64, src: u64, len: u64) -> Result<(), Violation> {
        if self.cfg.intercept_libc {
            self.intercept_range_check(env, src, len)?;
            self.intercept_range_check(env, dst, len)?;
        }
        self.copy_words(env, dst, src, len)
    }

    /// The ASan libc-interception model (overhead component 4): before a
    /// data-movement call runs, its argument range is validated against
    /// shadow memory — one shadow load per 64 app bytes, attributed to
    /// [`Component::ApiIntercept`].
    fn intercept_range_check(
        &mut self,
        env: &mut RtEnv<'_>,
        addr: u64,
        len: u64,
    ) -> Result<(), Violation> {
        if len == 0 {
            return Ok(());
        }
        self.intercept_checks += 1;
        let prev = env.rec.set_component(Component::ApiIntercept);
        env.rec.alu(2);
        let mut a = addr;
        while a < addr + len {
            env.rec.load(crate::layout::shadow_addr(a), 8);
            a += 64;
        }
        env.rec.set_component(prev);
        if let Err(kind) = shadow::classify_access(env.mem, addr, len) {
            return Err(Violation::Asan(AsanReport {
                kind,
                addr,
                size: len,
                pc: env.guest_pc,
            }));
        }
        Ok(())
    }

    /// Word-wise copy loop with recorded, scheme-checked accesses.
    fn copy_words(&mut self, env: &mut RtEnv<'_>, dst: u64, src: u64, len: u64) -> Result<(), Violation> {
        let mut i = 0;
        while i < len {
            let step = (len - i).min(8);
            let size = size_for(step);
            let v = env.checked_load(src + i, size)?;
            env.checked_store(dst + i, v, size)?;
            i += size.bytes();
        }
        Ok(())
    }

    /// Word-wise fill loop with recorded, scheme-checked stores.
    fn copy_fill(&mut self, env: &mut RtEnv<'_>, dst: u64, byte: u8, len: u64) -> Result<(), Violation> {
        let word = u64::from_le_bytes([byte; 8]);
        let mut i = 0;
        while i < len {
            let step = (len - i).min(8);
            let size = size_for(step);
            env.checked_store(dst + i, word, size)?;
            i += size.bytes();
        }
        Ok(())
    }
}

fn size_for(step: u64) -> MemSize {
    match step {
        8.. => MemSize::B8,
        4..=7 => MemSize::B4,
        2..=3 => MemSize::B2,
        _ => MemSize::B1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::{Mode, ProtectionBackend, Token};
    use rest_isa::GuestMemory;

    use crate::traffic::TrafficRecorder;
    use crate::violation::AsanReportKind;

    struct Fx {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: Box<dyn ProtectionBackend>,
        token: Token,
        cfg: RtConfig,
    }

    impl Fx {
        fn new(cfg: RtConfig) -> Fx {
            let mut rng = StdRng::seed_from_u64(77);
            Fx {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: cfg.build_backend(77),
                token: Token::generate(cfg.token_width, &mut rng),
                cfg,
            }
        }

        fn env(&mut self) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut *self.backend,
                token: &self.token,
                check_backend: self.cfg.checks_in_backend(),
                check_shadow: false,
                perfect_hw: self.cfg.perfect_hw,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    fn call(rt: &mut Runtime, fx: &mut Fx, num: EcallNum, args: [u64; 6]) -> EcallOutcome {
        let mut env = fx.env();
        rt.ecall(num, args, &mut env)
    }

    #[test]
    fn malloc_free_round_trip_all_schemes() {
        for cfg in [RtConfig::plain(), RtConfig::asan(), RtConfig::rest(Mode::Secure, true)] {
            let mut fx = Fx::new(cfg.clone());
            let mut rt = Runtime::new(cfg.clone());
            let p = match call(&mut rt, &mut fx, EcallNum::Malloc, [128, 0, 0, 0, 0, 0]) {
                EcallOutcome::Done(p) => p,
                other => panic!("{cfg:?}: {other:?}"),
            };
            assert_ne!(p, 0);
            assert_eq!(
                call(&mut rt, &mut fx, EcallNum::Free, [p, 0, 0, 0, 0, 0]),
                EcallOutcome::Done(0)
            );
            assert_eq!(rt.allocator().stats().allocs, 1);
            assert_eq!(rt.allocator().stats().frees, 1);
        }
    }

    #[test]
    fn memcpy_copies_and_memset_fills() {
        let cfg = RtConfig::plain();
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        fx.mem.write_bytes(0x8000, b"hello world!!");
        assert_eq!(
            call(&mut rt, &mut fx, EcallNum::Memcpy, [0x9000, 0x8000, 13, 0, 0, 0]),
            EcallOutcome::Done(0x9000)
        );
        assert!(fx.mem.bytes_equal(0x9000, b"hello world!!"));
        assert_eq!(
            call(&mut rt, &mut fx, EcallNum::Memset, [0x9000, 0x2a, 5, 0, 0, 0]),
            EcallOutcome::Done(0x9000)
        );
        assert!(fx.mem.bytes_equal(0x9000, &[0x2a; 5]));
        assert!(fx.mem.bytes_equal(0x9005, b" world!!"));
    }

    #[test]
    fn rest_memcpy_over_redzone_raises_hardware_violation() {
        // The Heartbleed pattern: an over-long memcpy from a heap buffer
        // runs into the right redzone token.
        let cfg = RtConfig::rest(Mode::Secure, false);
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        let p = match call(&mut rt, &mut fx, EcallNum::Malloc, [64, 0, 0, 0, 0, 0]) {
            EcallOutcome::Done(p) => p,
            other => panic!("{other:?}"),
        };
        let out = call(&mut rt, &mut fx, EcallNum::Memcpy, [0x9000, p, 4096, 0, 0, 0]);
        assert!(
            matches!(out, EcallOutcome::Violation(Violation::Rest(_))),
            "{out:?}"
        );
    }

    #[test]
    fn asan_intercept_catches_overlong_memcpy_before_copying() {
        let cfg = RtConfig::asan();
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        let p = match call(&mut rt, &mut fx, EcallNum::Malloc, [64, 0, 0, 0, 0, 0]) {
            EcallOutcome::Done(p) => p,
            other => panic!("{other:?}"),
        };
        let out = call(&mut rt, &mut fx, EcallNum::Memcpy, [0x9000, p, 4096, 0, 0, 0]);
        assert!(
            matches!(
                out,
                EcallOutcome::Violation(Violation::Asan(r))
                    if r.kind == AsanReportKind::HeapRedzone
            ),
            "{out:?}"
        );
        assert_eq!(rt.intercept_checks(), 1);
    }

    #[test]
    fn plain_memcpy_over_bounds_silently_succeeds() {
        // The unprotected baseline lets the over-read through — this is
        // the vulnerable behaviour REST exists to stop.
        let cfg = RtConfig::plain();
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        let p = match call(&mut rt, &mut fx, EcallNum::Malloc, [64, 0, 0, 0, 0, 0]) {
            EcallOutcome::Done(p) => p,
            other => panic!("{other:?}"),
        };
        let out = call(&mut rt, &mut fx, EcallNum::Memcpy, [0x9000, p, 4096, 0, 0, 0]);
        assert_eq!(out, EcallOutcome::Done(0x9000));
    }

    #[test]
    fn calloc_zeroes_and_realloc_preserves() {
        let cfg = RtConfig::rest(Mode::Secure, true);
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        let p = match call(&mut rt, &mut fx, EcallNum::Calloc, [4, 8, 0, 0, 0, 0]) {
            EcallOutcome::Done(p) => p,
            other => panic!("{other:?}"),
        };
        assert!(fx.mem.bytes_equal(p, &[0u8; 32]));
        fx.mem.write_u64(p, 0x1234_5678);
        let q = match call(&mut rt, &mut fx, EcallNum::Realloc, [p, 128, 0, 0, 0, 0]) {
            EcallOutcome::Done(q) => q,
            other => panic!("{other:?}"),
        };
        assert_ne!(p, q);
        assert_eq!(fx.mem.read_u64(q), 0x1234_5678);
    }

    #[test]
    fn sbrk_bumps_and_putchar_collects() {
        let cfg = RtConfig::plain();
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        let a = match call(&mut rt, &mut fx, EcallNum::Sbrk, [100, 0, 0, 0, 0, 0]) {
            EcallOutcome::Done(a) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(a, STATIC_BASE);
        let b = match call(&mut rt, &mut fx, EcallNum::Sbrk, [0, 0, 0, 0, 0, 0]) {
            EcallOutcome::Done(b) => b,
            other => panic!("{other:?}"),
        };
        assert_eq!(b, STATIC_BASE + 100);
        call(&mut rt, &mut fx, EcallNum::PutChar, [b'h' as u64, 0, 0, 0, 0, 0]);
        call(&mut rt, &mut fx, EcallNum::PutChar, [b'i' as u64, 0, 0, 0, 0, 0]);
        assert_eq!(rt.output(), b"hi");
    }

    #[test]
    fn exit_propagates_code() {
        let cfg = RtConfig::plain();
        let mut fx = Fx::new(cfg.clone());
        let mut rt = Runtime::new(cfg);
        assert_eq!(
            call(&mut rt, &mut fx, EcallNum::Exit, [3, 0, 0, 0, 0, 0]),
            EcallOutcome::Exit(3)
        );
    }
}
