//! Guest address-space layout.
//!
//! A fixed single-process layout, mirroring the 32-bit-ish map the paper
//! simulated (gem5 syscall-emulation mode):
//!
//! ```text
//! 0x0001_0000  code          (instructions; PCs only, not data)
//! 0x00f0_0000  runtime code  (synthetic PCs for runtime-injected ops)
//! 0x0010_0000  static data   (sbrk region for workload arrays)
//! 0x4000_0000  heap          (allocator arena, grows up)
//! 0x7fff_f000  stack top     (grows down)
//! 0x1_0000_0000 shadow       (ASan shadow: shadow(a) = BASE + a/8)
//! 0x2_0000_0000 tag storage  (MTE tags: tag(a) = BASE + a/16)
//! ```

/// Base of the static-data (sbrk) region.
pub const STATIC_BASE: u64 = 0x0010_0000;

/// Base of the heap arena.
pub const HEAP_BASE: u64 = 0x4000_0000;

/// Architectural ceiling on the heap arena: `Arena::grow` refuses to
/// move the break past `HEAP_BASE + HEAP_SPAN`, so every heap address —
/// user bytes, redzones, and quarantined chunks alike — lives inside
/// `[HEAP_BASE, HEAP_BASE + HEAP_SPAN)`. Static analyses (the check
/// elision pass in `rest-verify`) rely on this bound to separate heap
/// tokens from stack and static tokens.
pub const HEAP_SPAN: u64 = 256 * 1024 * 1024;

/// Initial stack pointer (stack grows toward lower addresses).
pub const STACK_TOP: u64 = 0x7fff_f000;

/// Base of the ASan shadow region.
pub const SHADOW_BASE: u64 = 0x1_0000_0000;

/// Bytes of application memory covered by one shadow byte.
pub const SHADOW_GRANULE: u64 = 8;

/// Synthetic PC region for micro-ops injected by runtime services
/// (allocator, memcpy, …). Kept small so the injected "code" behaves like
/// a resident runtime loop in the I-cache and branch predictor.
pub const RUNTIME_PC_BASE: u64 = 0x00f0_0000;

/// Size of the synthetic runtime code region in bytes.
pub const RUNTIME_PC_SPAN: u64 = 1024;

/// Maps an application address to its shadow-byte address.
pub fn shadow_addr(addr: u64) -> u64 {
    SHADOW_BASE + addr / SHADOW_GRANULE
}

/// Base of the MTE tag-storage region. Tag fetches and tag-set stores
/// travel through the cache hierarchy against this region, modeling
/// tag-carrying DRAM/SRAM the way ASan's shadow models poison bytes.
pub const TAG_BASE: u64 = 0x2_0000_0000;

/// Bytes of application memory covered by one tag-storage byte (one
/// 4-bit tag per 16-byte granule; we charge a byte per granule).
pub const TAG_STORAGE_GRANULE: u64 = 16;

/// Maps an application address to its tag-storage address.
pub fn tag_addr(addr: u64) -> u64 {
    TAG_BASE + addr / TAG_STORAGE_GRANULE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_mapping_is_compressing_and_disjoint() {
        assert_eq!(shadow_addr(0), SHADOW_BASE);
        assert_eq!(shadow_addr(7), SHADOW_BASE);
        assert_eq!(shadow_addr(8), SHADOW_BASE + 1);
        assert_eq!(shadow_addr(HEAP_BASE), SHADOW_BASE + HEAP_BASE / 8);
        // Shadow of the whole user region stays below 2 * SHADOW_BASE.
        assert!(shadow_addr(STACK_TOP) < 2 * SHADOW_BASE);
        // And above the user region.
        assert!(shadow_addr(0) > STACK_TOP);
    }

    #[test]
    fn tag_mapping_is_compressing_and_disjoint_from_shadow() {
        assert_eq!(tag_addr(0), TAG_BASE);
        assert_eq!(tag_addr(15), TAG_BASE);
        assert_eq!(tag_addr(16), TAG_BASE + 1);
        // Tag storage of the whole user region stays within its region
        // and never collides with the ASan shadow.
        assert!(tag_addr(STACK_TOP) < TAG_BASE + SHADOW_BASE);
        assert!(shadow_addr(STACK_TOP) < TAG_BASE);
    }

    // Compile-time layout invariants (const asserts avoid the
    // constant-assertion lint while checking the same facts).
    const _: () = {
        assert!(STATIC_BASE < HEAP_BASE);
        assert!(HEAP_BASE < STACK_TOP);
        assert!(STACK_TOP < SHADOW_BASE);
        assert!(SHADOW_BASE < TAG_BASE);
        assert!(RUNTIME_PC_BASE + RUNTIME_PC_SPAN <= STATIC_BASE + 0x0100_0000);
    };
}
