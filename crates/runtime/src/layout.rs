//! Guest address-space layout.
//!
//! A fixed single-process layout, mirroring the 32-bit-ish map the paper
//! simulated (gem5 syscall-emulation mode):
//!
//! ```text
//! 0x0001_0000  code          (instructions; PCs only, not data)
//! 0x00f0_0000  runtime code  (synthetic PCs for runtime-injected ops)
//! 0x0010_0000  static data   (sbrk region for workload arrays)
//! 0x4000_0000  heap          (allocator arena, grows up)
//! 0x7fff_f000  stack top     (grows down)
//! 0x1_0000_0000 shadow       (ASan shadow: shadow(a) = BASE + a/8)
//! ```

/// Base of the static-data (sbrk) region.
pub const STATIC_BASE: u64 = 0x0010_0000;

/// Base of the heap arena.
pub const HEAP_BASE: u64 = 0x4000_0000;

/// Initial stack pointer (stack grows toward lower addresses).
pub const STACK_TOP: u64 = 0x7fff_f000;

/// Base of the ASan shadow region.
pub const SHADOW_BASE: u64 = 0x1_0000_0000;

/// Bytes of application memory covered by one shadow byte.
pub const SHADOW_GRANULE: u64 = 8;

/// Synthetic PC region for micro-ops injected by runtime services
/// (allocator, memcpy, …). Kept small so the injected "code" behaves like
/// a resident runtime loop in the I-cache and branch predictor.
pub const RUNTIME_PC_BASE: u64 = 0x00f0_0000;

/// Size of the synthetic runtime code region in bytes.
pub const RUNTIME_PC_SPAN: u64 = 1024;

/// Maps an application address to its shadow-byte address.
pub fn shadow_addr(addr: u64) -> u64 {
    SHADOW_BASE + addr / SHADOW_GRANULE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_mapping_is_compressing_and_disjoint() {
        assert_eq!(shadow_addr(0), SHADOW_BASE);
        assert_eq!(shadow_addr(7), SHADOW_BASE);
        assert_eq!(shadow_addr(8), SHADOW_BASE + 1);
        assert_eq!(shadow_addr(HEAP_BASE), SHADOW_BASE + HEAP_BASE / 8);
        // Shadow of the whole user region stays below 2 * SHADOW_BASE.
        assert!(shadow_addr(STACK_TOP) < 2 * SHADOW_BASE);
        // And above the user region.
        assert!(shadow_addr(0) > STACK_TOP);
    }

    // Compile-time layout invariants (const asserts avoid the
    // constant-assertion lint while checking the same facts).
    const _: () = {
        assert!(STATIC_BASE < HEAP_BASE);
        assert!(HEAP_BASE < STACK_TOP);
        assert!(STACK_TOP < SHADOW_BASE);
        assert!(RUNTIME_PC_BASE + RUNTIME_PC_SPAN <= STATIC_BASE + 0x0100_0000);
    };
}
