use std::error::Error;
use std::fmt;

use rest_core::{BackendFault, PacFault, RestException, TagFault};

/// Class of an ASan-detected violation, derived from the poison value in
/// the shadow byte the faulting access mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsanReportKind {
    /// Access landed in a heap redzone (out-of-bounds heap access).
    HeapRedzone,
    /// Access landed in freed (quarantined) memory — use after free.
    UseAfterFree,
    /// Access landed in a stack redzone (out-of-bounds stack access).
    StackRedzone,
    /// `free` of a pointer that is not a live allocation (double free or
    /// invalid free), detected by the allocator.
    BadFree,
    /// Access landed in a partially-addressable granule beyond the valid
    /// prefix.
    PartialGranule,
}

impl AsanReportKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AsanReportKind::HeapRedzone => "heap-buffer-overflow",
            AsanReportKind::UseAfterFree => "heap-use-after-free",
            AsanReportKind::StackRedzone => "stack-buffer-overflow",
            AsanReportKind::BadFree => "bad-free",
            AsanReportKind::PartialGranule => "partial-granule-overflow",
        }
    }
}

impl fmt::Display for AsanReportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An AddressSanitizer error report (the software analogue of a REST
/// exception — but produced by same-privilege instrumentation, which is
/// why §V-C argues it is weaker as a *security* mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsanReport {
    /// Violation class.
    pub kind: AsanReportKind,
    /// Faulting data address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// PC of the faulting instruction (0 when raised inside an
    /// intercepted libc call).
    pub pc: u64,
}

impl fmt::Display for AsanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ASan: {} on address {:#x} (size {}, pc {:#x})",
            self.kind, self.addr, self.size, self.pc
        )
    }
}

impl Error for AsanReport {}

/// A memory-safety violation detected by whichever scheme is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Hardware-detected REST exception.
    Rest(RestException),
    /// Software-detected ASan report.
    Asan(AsanReport),
    /// MTE-style lock-and-key tag mismatch.
    Tag(TagFault),
    /// PA-style pointer-authentication failure.
    Pac(PacFault),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Rest(e) => e.fmt(f),
            Violation::Asan(r) => r.fmt(f),
            Violation::Tag(t) => t.fmt(f),
            Violation::Pac(p) => p.fmt(f),
        }
    }
}

impl Error for Violation {}

impl Violation {
    /// Converts the violation into an observability audit entry. The
    /// caller supplies the context the violation record itself does not
    /// carry: the execution mode, the software component owning the
    /// faulting PC, and the committed-instruction count at detection.
    pub fn audit_entry(
        &self,
        mode: &'static str,
        component: &'static str,
        insts: u64,
    ) -> rest_obs::AuditEntry {
        match self {
            Violation::Rest(e) => rest_obs::AuditEntry {
                detector: "rest",
                kind: e.kind.name(),
                pc: e.pc,
                addr: e.addr,
                size: 0,
                mode,
                component,
                precise: e.precise,
                insts,
            },
            // ASan reports are always precise: the check runs inline,
            // before the faulting access's instruction retires.
            Violation::Asan(r) => rest_obs::AuditEntry {
                detector: "asan",
                kind: r.kind.name(),
                pc: r.pc,
                addr: r.addr,
                size: r.size,
                mode,
                component,
                precise: true,
                insts,
            },
            Violation::Tag(t) => rest_obs::AuditEntry {
                detector: rest_obs::MTE_TAGGER,
                kind: if t.store {
                    "tag-store-mismatch"
                } else {
                    "tag-load-mismatch"
                },
                pc: t.pc,
                addr: t.addr,
                size: 0,
                mode,
                component,
                precise: t.precise,
                insts,
            },
            Violation::Pac(p) => rest_obs::AuditEntry {
                detector: rest_obs::PA_SIGNER,
                kind: if p.store {
                    "pac-auth-fail-store"
                } else {
                    "pac-auth-fail-load"
                },
                pc: p.pc,
                addr: p.addr,
                size: 0,
                mode,
                component,
                precise: true,
                insts,
            },
        }
    }
}

impl From<BackendFault> for Violation {
    fn from(f: BackendFault) -> Violation {
        match f {
            BackendFault::Token(e) => Violation::Rest(e),
            BackendFault::Tag(t) => Violation::Tag(t),
            BackendFault::Pac(p) => Violation::Pac(p),
        }
    }
}

impl From<RestException> for Violation {
    fn from(e: RestException) -> Violation {
        Violation::Rest(e)
    }
}

impl From<AsanReport> for Violation {
    fn from(r: AsanReport) -> Violation {
        Violation::Asan(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rest_core::RestExceptionKind;

    #[test]
    fn audit_entries_carry_detector_specifics() {
        let asan: Violation = AsanReport {
            kind: AsanReportKind::HeapRedzone,
            addr: 0x4000_0040,
            size: 4,
            pc: 0x1_0010,
        }
        .into();
        let e = asan.audit_entry("secure", "app", 900);
        assert_eq!(e.detector, "asan");
        assert_eq!(e.kind, "heap-buffer-overflow");
        assert_eq!(e.size, 4);
        assert!(e.precise);
        assert_eq!(e.insts, 900);

        let rest: Violation =
            RestException::new(RestExceptionKind::TokenLoad, 0x5000, 0x20, false).into();
        let e = rest.audit_entry("secure", "allocator", 12);
        assert_eq!(e.detector, "rest");
        assert_eq!(e.kind, "token-load");
        assert_eq!(e.addr, 0x5000);
        assert_eq!(e.pc, 0x20);
        assert!(!e.precise);
        assert_eq!(e.component, "allocator");
    }

    #[test]
    fn backend_faults_convert_and_carry_provenance() {
        let tag: Violation = Violation::from(BackendFault::Tag(TagFault {
            addr: 0x4000_0100,
            pc: 0x30,
            ptr_tag: 5,
            mem_tag: 2,
            store: false,
            precise: false,
        }));
        let e = tag.audit_entry("secure", "app", 77);
        assert_eq!(e.detector, rest_obs::MTE_TAGGER);
        assert_eq!(e.kind, "tag-load-mismatch");
        assert_eq!(e.pc, 0x30);
        assert_eq!(e.addr, 0x4000_0100);
        assert!(!e.precise);

        let pac: Violation = Violation::from(BackendFault::Pac(PacFault {
            addr: 0x4000_0200,
            pc: 0x44,
            expected: 0xab,
            found: 0xcd,
            store: true,
        }));
        let e = pac.audit_entry("secure", "app", 78);
        assert_eq!(e.detector, rest_obs::PA_SIGNER);
        assert_eq!(e.kind, "pac-auth-fail-store");
        assert!(e.precise);
        assert!(pac.to_string().contains("authentication failure"));
    }

    #[test]
    fn display_formats() {
        let v: Violation = AsanReport {
            kind: AsanReportKind::UseAfterFree,
            addr: 0x4000_0040,
            size: 8,
            pc: 0x1_0010,
        }
        .into();
        assert!(v.to_string().contains("heap-use-after-free"));

        let v: Violation =
            RestException::new(RestExceptionKind::TokenStore, 0x40, 0x10, true).into();
        assert!(v.to_string().contains("token-store"));
    }
}
