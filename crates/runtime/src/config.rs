use rest_core::{
    Mode, MteBackend, MteMode, NullBackend, PacBackend, ProtectionBackend, RestBackend, TokenWidth,
};

/// Which memory-safety scheme the runtime applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No protection: stock allocator, no instrumentation (the paper's
    /// "unsafe" baseline).
    Plain,
    /// AddressSanitizer: shadow memory, instrumented accesses, hardened
    /// allocator, intercepted libc calls.
    Asan,
    /// REST: token redzones, hardware detection, no access
    /// instrumentation.
    Rest,
    /// MTE-style 4-bit lock-and-key memory tagging (sync/async/asymm
    /// checking per [`RtConfig::mte_mode`]).
    Mte,
    /// PA-style pointer signing: sign on allocate, authenticate on use.
    Pa,
}

impl Scheme {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Plain => "plain",
            Scheme::Asan => "asan",
            Scheme::Rest => "rest",
            Scheme::Mte => "mte",
            Scheme::Pa => "pa",
        }
    }
}

/// Full runtime configuration for one simulated run.
///
/// The constructors produce exactly the configurations evaluated in the
/// paper: `plain`, `asan`, and the REST crosses of
/// {secure, debug, perfect-hw} × {full, heap-only} × token width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtConfig {
    /// Active scheme.
    pub scheme: Scheme,
    /// Protect stack frames (the "Full" defensive scope) as opposed to
    /// heap only.
    pub stack_protection: bool,
    /// ASan only: instrument every program load/store with a shadow
    /// check (overhead component 3 of Figure 3).
    pub access_checks: bool,
    /// ASan only: intercept libc data-movement calls and range-check
    /// their arguments (overhead component 4).
    pub intercept_libc: bool,
    /// REST only: model *perfect* (zero-cost) REST hardware by replacing
    /// every arm/disarm with one regular store (the paper's PerfectHW
    /// limit study). Disables actual protection.
    pub perfect_hw: bool,
    /// Ablation: model a naive arm that writes the full token value
    /// immediately (one store per 8 bytes of token width) instead of the
    /// paper's lazy write-on-eviction design (§III-B).
    pub naive_wide_arm: bool,
    /// §V-C mitigation for redzone-jumping: sprinkle decoy tokens into
    /// the gaps between heap chunks so strided scans that leap over
    /// redzones still land on tokens.
    pub sprinkle_tokens: bool,
    /// §VIII REST-aware fast pool: recycled chunks stay armed in the
    /// free pool; reuse disarms only the user area.
    pub fast_pool_allocator: bool,
    /// Token width for REST redzones.
    pub token_width: TokenWidth,
    /// Byte budget of the quarantine pool holding freed allocations.
    pub quarantine_bytes: u64,
    /// REST exception precision mode (secure/debug).
    pub mode: Mode,
    /// MTE only: tag-check mode (sync/async/asymmetric).
    pub mte_mode: MteMode,
}

impl RtConfig {
    /// Default quarantine budget. The paper inherits ASan's allocator;
    /// we scale the default to our workload footprints.
    pub const DEFAULT_QUARANTINE: u64 = 1 << 20;

    /// The unprotected baseline.
    pub fn plain() -> RtConfig {
        RtConfig {
            scheme: Scheme::Plain,
            stack_protection: false,
            access_checks: false,
            intercept_libc: false,
            perfect_hw: false,
            naive_wide_arm: false,
            sprinkle_tokens: false,
            fast_pool_allocator: false,
            token_width: TokenWidth::B64,
            quarantine_bytes: Self::DEFAULT_QUARANTINE,
            mode: Mode::Secure,
            mte_mode: MteMode::Sync,
        }
    }

    /// Full AddressSanitizer (all four overhead components enabled).
    pub fn asan() -> RtConfig {
        RtConfig {
            scheme: Scheme::Asan,
            stack_protection: true,
            access_checks: true,
            intercept_libc: true,
            perfect_hw: false,
            naive_wide_arm: false,
            sprinkle_tokens: false,
            fast_pool_allocator: false,
            token_width: TokenWidth::B64,
            quarantine_bytes: Self::DEFAULT_QUARANTINE,
            mode: Mode::Secure,
            mte_mode: MteMode::Sync,
        }
    }

    /// REST in the given exception `mode`; `full` enables stack
    /// protection in addition to heap protection.
    pub fn rest(mode: Mode, full: bool) -> RtConfig {
        RtConfig {
            scheme: Scheme::Rest,
            stack_protection: full,
            access_checks: false,
            intercept_libc: false,
            perfect_hw: false,
            naive_wide_arm: false,
            sprinkle_tokens: false,
            fast_pool_allocator: false,
            token_width: TokenWidth::B64,
            quarantine_bytes: Self::DEFAULT_QUARANTINE,
            mode,
            mte_mode: MteMode::Sync,
        }
    }

    /// The PerfectHW limit study: REST software with every arm/disarm
    /// replaced by one regular store on stock hardware.
    pub fn rest_perfect(full: bool) -> RtConfig {
        RtConfig {
            perfect_hw: true,
            ..RtConfig::rest(Mode::Secure, full)
        }
    }

    /// MTE-style lock-and-key tagging in the given check mode. Tags are
    /// a heap-granule mechanism: stack protection stays off, matching
    /// the deployed stack-tagging-disabled configurations.
    pub fn mte(mte_mode: MteMode) -> RtConfig {
        RtConfig {
            scheme: Scheme::Mte,
            mte_mode,
            ..RtConfig::plain()
        }
    }

    /// PA-style pointer signing: heap pointers signed on allocation and
    /// authenticated on use.
    pub fn pa() -> RtConfig {
        RtConfig {
            scheme: Scheme::Pa,
            ..RtConfig::plain()
        }
    }

    /// Returns a copy with a different token width.
    pub fn with_token_width(mut self, width: TokenWidth) -> RtConfig {
        self.token_width = width;
        self
    }

    /// Returns a copy with a different quarantine budget.
    pub fn with_quarantine(mut self, bytes: u64) -> RtConfig {
        self.quarantine_bytes = bytes;
        self
    }

    /// Returns a copy with decoy-token sprinkling enabled (§V-C).
    pub fn with_sprinkle(mut self) -> RtConfig {
        self.sprinkle_tokens = true;
        self
    }

    /// Returns a copy with the §VIII REST-aware fast pool enabled.
    pub fn with_fast_pool(mut self) -> RtConfig {
        self.fast_pool_allocator = true;
        self
    }

    /// Short label used by the benchmark harness (e.g. `"rest-secure-full"`).
    pub fn label(&self) -> String {
        match self.scheme {
            Scheme::Plain => "plain".to_string(),
            Scheme::Asan => "asan".to_string(),
            Scheme::Rest => {
                let hw = if self.perfect_hw {
                    "perfecthw".to_string()
                } else {
                    self.mode.to_string()
                };
                let scope = if self.stack_protection { "full" } else { "heap" };
                format!("rest-{hw}-{scope}")
            }
            Scheme::Mte => format!("mte-{}", self.mte_mode.name()),
            Scheme::Pa => "pa".to_string(),
        }
    }

    /// Builds the protection backend this configuration calls for. The
    /// `seed` feeds the MTE tag stream and the PA signing key; REST's
    /// token content lives in the system [`rest_core::Token`], not
    /// here. Plain and ASan get the inert [`NullBackend`] (ASan's
    /// shadow checks are same-privilege instrumentation outside the
    /// hardware seam), as does the PerfectHW limit study, whose arms
    /// degrade to plain stores.
    pub fn build_backend(&self, seed: u64) -> Box<dyn ProtectionBackend> {
        match self.scheme {
            Scheme::Plain | Scheme::Asan => Box::new(NullBackend),
            Scheme::Rest => Box::new(RestBackend::new(self.token_width, self.mode)),
            Scheme::Mte => Box::new(MteBackend::new(self.mte_mode, seed)),
            Scheme::Pa => Box::new(PacBackend::new(seed)),
        }
    }

    /// Whether recorded accesses are checked through the backend (the
    /// hardware-protected schemes; PerfectHW disables real protection).
    pub fn checks_in_backend(&self) -> bool {
        match self.scheme {
            Scheme::Plain | Scheme::Asan => false,
            Scheme::Rest => !self.perfect_hw,
            Scheme::Mte | Scheme::Pa => true,
        }
    }

    /// Parses a harness label back into the configuration it denotes —
    /// the inverse of [`RtConfig::label`] over every constructor-built
    /// configuration, so scheme labels can't silently drift from the
    /// enum. Returns `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<RtConfig> {
        match label {
            "plain" => return Some(RtConfig::plain()),
            "asan" => return Some(RtConfig::asan()),
            "pa" => return Some(RtConfig::pa()),
            "mte-sync" => return Some(RtConfig::mte(MteMode::Sync)),
            "mte-async" => return Some(RtConfig::mte(MteMode::Async)),
            "mte-asymm" => return Some(RtConfig::mte(MteMode::Asymm)),
            _ => {}
        }
        let rest = label.strip_prefix("rest-")?;
        let (hw, scope) = rest.split_once('-')?;
        let full = match scope {
            "full" => true,
            "heap" => false,
            _ => return None,
        };
        match hw {
            "secure" => Some(RtConfig::rest(Mode::Secure, full)),
            "debug" => Some(RtConfig::rest(Mode::Debug, full)),
            "perfecthw" => Some(RtConfig::rest_perfect(full)),
            _ => None,
        }
    }
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig::plain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_paper_configurations() {
        let p = RtConfig::plain();
        assert!(!p.access_checks && !p.stack_protection);

        let a = RtConfig::asan();
        assert!(a.access_checks && a.intercept_libc && a.stack_protection);

        let r = RtConfig::rest(Mode::Secure, true);
        assert!(!r.access_checks && !r.intercept_libc);
        assert!(r.stack_protection && !r.perfect_hw);

        let rh = RtConfig::rest(Mode::Debug, false);
        assert!(!rh.stack_protection);
        assert_eq!(rh.mode, Mode::Debug);

        let ph = RtConfig::rest_perfect(true);
        assert!(ph.perfect_hw);
    }

    #[test]
    fn labels() {
        assert_eq!(RtConfig::plain().label(), "plain");
        assert_eq!(RtConfig::asan().label(), "asan");
        assert_eq!(RtConfig::rest(Mode::Secure, true).label(), "rest-secure-full");
        assert_eq!(RtConfig::rest(Mode::Debug, false).label(), "rest-debug-heap");
        assert_eq!(RtConfig::rest_perfect(false).label(), "rest-perfecthw-heap");
    }

    #[test]
    fn mte_and_pa_constructors() {
        let m = RtConfig::mte(MteMode::Async);
        assert_eq!(m.scheme, Scheme::Mte);
        assert_eq!(m.mte_mode, MteMode::Async);
        assert!(!m.stack_protection && !m.access_checks && !m.intercept_libc);

        let p = RtConfig::pa();
        assert_eq!(p.scheme, Scheme::Pa);
        assert!(!p.stack_protection && !p.access_checks);
    }

    #[test]
    fn label_round_trips_exhaustively() {
        // Every constructor-built configuration the harness can name.
        let all = [
            RtConfig::plain(),
            RtConfig::asan(),
            RtConfig::rest(Mode::Secure, true),
            RtConfig::rest(Mode::Secure, false),
            RtConfig::rest(Mode::Debug, true),
            RtConfig::rest(Mode::Debug, false),
            RtConfig::rest_perfect(true),
            RtConfig::rest_perfect(false),
            RtConfig::mte(MteMode::Sync),
            RtConfig::mte(MteMode::Async),
            RtConfig::mte(MteMode::Asymm),
            RtConfig::pa(),
        ];
        for cfg in all.clone() {
            let label = cfg.label();
            let parsed = RtConfig::from_label(&label)
                .unwrap_or_else(|| panic!("label {label:?} failed to parse"));
            assert_eq!(parsed, cfg, "round trip drifted for {label:?}");
            assert_eq!(parsed.label(), label);
        }
        // Labels must be pairwise distinct.
        let labels: Vec<String> = all.iter().map(RtConfig::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels: {labels:?}");
    }

    #[test]
    fn from_label_rejects_unknown_labels() {
        for bad in [
            "", "rest", "rest-", "rest-secure", "rest-secure-", "rest-fast-full",
            "rest-secure-all", "mte", "mte-", "mte-sync-full", "pa-sync", "asan2",
        ] {
            assert!(RtConfig::from_label(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn with_modifiers() {
        let c = RtConfig::rest(Mode::Secure, true)
            .with_token_width(TokenWidth::B16)
            .with_quarantine(4096);
        assert_eq!(c.token_width, TokenWidth::B16);
        assert_eq!(c.quarantine_bytes, 4096);
    }
}
