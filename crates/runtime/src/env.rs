use rest_core::{ProtectionBackend, SiteTable, Token, TokenWidth};
use rest_isa::{GuestMemory, MemSize};

/// Scratch line used to charge the extra store beats of the
/// naive-wide-arm ablation (outside every real data region).
const NAIVE_ARM_SCRATCH: u64 = 0x3f00_0000;
use crate::shadow;
use crate::traffic::TrafficRecorder;
use crate::violation::{AsanReport, Violation};

/// The mutable machine context runtime services operate in.
///
/// Bundles the functional memory, the traffic recorder, and the active
/// protection backend so allocators and libc models can perform
/// *recorded, checked* guest-memory operations through one interface.
#[derive(Debug)]
pub struct RtEnv<'a> {
    /// Functional guest memory.
    pub mem: &'a mut GuestMemory,
    /// Micro-op recorder for the timing pipeline.
    pub rec: &'a mut TrafficRecorder,
    /// The active protection backend (armed set / tag map / signing
    /// registry, behind one seam).
    pub backend: &'a mut dyn ProtectionBackend,
    /// The system token.
    pub token: &'a Token,
    /// Check recorded accesses through the backend (hardware-protected
    /// schemes: REST with real hardware, MTE, PA).
    pub check_backend: bool,
    /// Check recorded accesses against shadow memory (ASan interception
    /// paths).
    pub check_shadow: bool,
    /// PerfectHW limit study: arms/disarms degrade to single stores.
    pub perfect_hw: bool,
    /// Ablation: arms write the token value eagerly (w/8 stores) instead
    /// of the paper's lazy write-on-eviction single-cycle arm.
    pub naive_wide_arm: bool,
    /// PC of the guest instruction (the `ecall`) that entered the
    /// runtime. Checks performed on the program's behalf — memcpy range
    /// walks, free validation — report faults at this PC, so deferred
    /// MTE-async faults carry the triggering call site rather than a
    /// synthetic runtime PC.
    pub guest_pc: u64,
    /// Per-allocation-site attribution table, when profiling is on.
    pub sites: Option<&'a mut SiteTable>,
}

impl<'a> RtEnv<'a> {
    /// Token width in force.
    pub fn token_width(&self) -> TokenWidth {
        self.token.width()
    }

    // --- unchecked (trusted, allocator-internal) recorded accesses ---

    /// Recorded 8-byte load of allocator metadata.
    pub fn load_u64(&mut self, addr: u64) -> u64 {
        self.rec.load(addr, 8);
        self.mem.read_u64(addr)
    }

    /// Recorded 8-byte store of allocator metadata.
    pub fn store_u64(&mut self, addr: u64, val: u64) {
        self.rec.store(addr, 8);
        self.mem.write_u64(addr, val);
    }

    // --- checked (untrusted-range) recorded accesses ---

    fn check(&mut self, ptr: u64, size: u64, store: bool) -> Result<(), Violation> {
        let addr = self.backend.canonical_addr(ptr);
        if self.check_backend {
            let had_deferred = self.backend.has_deferred();
            let fault = self.backend.check_access(ptr, size, store, self.guest_pc);
            if let Some(s) = self.sites.as_deref_mut() {
                s.note_check(addr, 0, self.backend.tags_pointers());
                if fault.is_some() {
                    s.note_fault(addr);
                } else if !had_deferred && self.backend.has_deferred() {
                    s.note_deferred(addr);
                }
            }
            if let Some(fault) = fault {
                return Err(fault.into());
            }
        }
        if self.check_shadow {
            let classified = shadow::classify_access(self.mem, addr, size);
            if let Some(s) = self.sites.as_deref_mut() {
                s.note_check(addr, 0, false);
                if classified.is_err() {
                    s.note_fault(addr);
                }
            }
            if let Err(kind) = classified {
                return Err(Violation::Asan(AsanReport {
                    kind,
                    addr,
                    size,
                    pc: self.guest_pc,
                }));
            }
        }
        Ok(())
    }

    /// Backend validation of a pointer outside the checked load/store
    /// path (the hardened allocators' free validation). Faults report
    /// at the calling guest PC and are attributed like any other check.
    pub fn backend_validate(&mut self, ptr: u64, len: u64) -> Option<rest_core::BackendFault> {
        let addr = self.backend.canonical_addr(ptr);
        let had_deferred = self.backend.has_deferred();
        let fault = self.backend.check_access(ptr, len, false, self.guest_pc);
        if let Some(s) = self.sites.as_deref_mut() {
            s.note_check(addr, 0, self.backend.tags_pointers());
            if fault.is_some() {
                s.note_fault(addr);
            } else if !had_deferred && self.backend.has_deferred() {
                s.note_deferred(addr);
            }
        }
        fault
    }

    /// Registers a successful allocation of `len` user bytes at the
    /// (possibly tagged) pointer `ptr`, attributed to the calling guest
    /// PC. No-op when site attribution is off.
    pub fn note_alloc_site(&mut self, ptr: u64, len: u64) {
        let base = self.backend.canonical_addr(ptr);
        if let Some(s) = self.sites.as_deref_mut() {
            s.note_alloc(self.guest_pc, base, len);
        }
    }

    /// Records a free of the allocation at `ptr` against its site.
    pub fn note_free_site(&mut self, ptr: u64) {
        let base = self.backend.canonical_addr(ptr);
        if let Some(s) = self.sites.as_deref_mut() {
            s.note_free(base);
        }
    }

    /// Recorded load through the active safety checks. `ptr` may carry
    /// backend metadata in its upper bits (MTE tag, PAC); memory and the
    /// recorder see the canonical address.
    ///
    /// # Errors
    ///
    /// Returns the scheme's violation if `[addr, addr+size)` touches a
    /// token slot (REST), a mismatched tag granule (MTE), fails pointer
    /// authentication (PA), or hits poisoned shadow (ASan interception).
    pub fn checked_load(&mut self, ptr: u64, size: MemSize) -> Result<u64, Violation> {
        self.check(ptr, size.bytes(), false)?;
        let addr = self.backend.canonical_addr(ptr);
        self.rec.load(addr, size.bytes());
        Ok(self.mem.read_scalar(addr, size))
    }

    /// Recorded store through the active safety checks.
    ///
    /// # Errors
    ///
    /// As for [`RtEnv::checked_load`], with the store-kind violation.
    pub fn checked_store(&mut self, ptr: u64, val: u64, size: MemSize) -> Result<(), Violation> {
        self.check(ptr, size.bytes(), true)?;
        let addr = self.backend.canonical_addr(ptr);
        self.rec.store(addr, size.bytes());
        self.mem.write_scalar(addr, val, size);
        Ok(())
    }

    // --- token operations ---

    /// The armed set behind the backend. Token operations are only
    /// reachable from the REST allocator and stackguard, whose backend
    /// always carries one.
    fn armed_mut(&mut self) -> &mut rest_core::ArmedSet {
        self.backend
            .armed_set_mut()
            .expect("token operation on a backend without an armed set")
    }

    /// Arms the token slot at `addr`: records the `arm`, writes the token
    /// bytes into functional memory, and updates the armed set. Under
    /// PerfectHW this degrades to one recorded 8-byte store.
    ///
    /// # Panics
    ///
    /// Panics on misaligned `addr` — the allocator always arms aligned
    /// slots; guest-code misalignment is handled by the emulator.
    pub fn arm_slot(&mut self, addr: u64) {
        let w = self.token_width().bytes();
        if self.perfect_hw {
            self.rec.store(addr, 8);
            return;
        }
        for line in (addr & !63..addr + w).step_by(64) {
            self.mem.snapshot_line_pre_image(line);
        }
        self.rec.arm(addr, w);
        if self.naive_wide_arm {
            // Eager value write (the naive wide-store arm the paper's
            // lazy design avoids): charge the extra w/8−1 store beats as
            // store-port/SQ occupancy against a scratch line, so the
            // cost is modelled without perturbing token-bit state.
            for _ in 1..w / 8 {
                self.rec.store(NAIVE_ARM_SCRATCH, 8);
            }
        }
        self.armed_mut()
            .arm(addr)
            .unwrap_or_else(|e| panic!("runtime armed misaligned slot {addr:#x}: {e}"));
        self.mem.write_bytes(addr, self.token.bytes());
    }

    /// Disarms the token slot at `addr`, zeroing it (the hardware zeroes
    /// the slot as part of the disarm). Under PerfectHW this degrades to
    /// one recorded 8-byte store that still zeroes the slot functionally.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not armed — the allocator only disarms slots
    /// it armed, so this indicates an allocator bug, not a guest error.
    pub fn disarm_slot(&mut self, addr: u64) {
        let w = self.token_width().bytes();
        if self.perfect_hw {
            self.rec.store(addr, 8);
            self.mem.fill(addr, w, 0);
            return;
        }
        for line in (addr & !63..addr + w).step_by(64) {
            self.mem.snapshot_line_pre_image(line);
        }
        self.rec.disarm(addr, w);
        if self.naive_wide_arm {
            for _ in 1..w / 8 {
                self.rec.store(NAIVE_ARM_SCRATCH, 8);
            }
        }
        self.armed_mut()
            .disarm(addr)
            .unwrap_or_else(|e| panic!("runtime disarmed bad slot {addr:#x}: {e}"));
        self.mem.fill(addr, w, 0);
    }

    /// Arms every token slot in `[addr, addr+len)`. Both ends must be
    /// token-aligned.
    pub fn arm_range(&mut self, addr: u64, len: u64) {
        let w = self.token_width().bytes();
        debug_assert_eq!(addr % w, 0, "arm_range base misaligned");
        debug_assert_eq!(len % w, 0, "arm_range length misaligned");
        let mut a = addr;
        while a < addr + len {
            self.arm_slot(a);
            a += w;
        }
    }

    /// Disarms (and zeroes) every token slot in `[addr, addr+len)`.
    pub fn disarm_range(&mut self, addr: u64, len: u64) {
        let w = self.token_width().bytes();
        debug_assert_eq!(addr % w, 0, "disarm_range base misaligned");
        debug_assert_eq!(len % w, 0, "disarm_range length misaligned");
        let mut a = addr;
        while a < addr + len {
            self.disarm_slot(a);
            a += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rest_core::{Mode, RestBackend, RestExceptionKind};

    struct Fixture {
        mem: GuestMemory,
        rec: TrafficRecorder,
        backend: RestBackend,
        token: Token,
    }

    impl Fixture {
        fn new() -> Fixture {
            let mut rng = StdRng::seed_from_u64(11);
            let token = Token::generate(TokenWidth::B64, &mut rng);
            Fixture {
                mem: GuestMemory::new(),
                rec: TrafficRecorder::new(),
                backend: RestBackend::new(TokenWidth::B64, Mode::Secure),
                token,
            }
        }

        fn env(&mut self, check_backend: bool, perfect_hw: bool) -> RtEnv<'_> {
            RtEnv {
                mem: &mut self.mem,
                rec: &mut self.rec,
                backend: &mut self.backend,
                token: &self.token,
                check_backend,
                check_shadow: false,
                perfect_hw,
                naive_wide_arm: false,
                guest_pc: 0,
                sites: None,
            }
        }
    }

    #[test]
    fn arm_slot_writes_token_and_updates_set() {
        let mut f = Fixture::new();
        let mut env = f.env(true, false);
        env.arm_slot(0x4000_0000);
        assert!(env.backend.armed_set().unwrap().is_armed(0x4000_0000));
        assert!(env.mem.bytes_equal(0x4000_0000, env.token.bytes()));
        let _ = env;
        let ops = f.rec.drain();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, rest_isa::OpKind::Arm);
    }

    #[test]
    fn checked_access_faults_on_armed_slot() {
        let mut f = Fixture::new();
        let mut env = f.env(true, false);
        env.arm_slot(0x4000_0040);
        let err = env.checked_load(0x4000_0040, MemSize::B8).unwrap_err();
        assert!(matches!(err, Violation::Rest(e) if e.kind == RestExceptionKind::TokenLoad));
        let err = env
            .checked_store(0x4000_0078, 1, MemSize::B8)
            .unwrap_err();
        assert!(matches!(err, Violation::Rest(e) if e.kind == RestExceptionKind::TokenStore));
        // Adjacent unarmed memory is fine.
        assert!(env.checked_load(0x4000_0080, MemSize::B8).is_ok());
    }

    #[test]
    fn disarm_zeroes_slot() {
        let mut f = Fixture::new();
        let mut env = f.env(true, false);
        env.arm_slot(0x4000_0000);
        env.disarm_slot(0x4000_0000);
        assert!(!env.backend.armed_set().unwrap().is_armed(0x4000_0000));
        assert!(env.mem.bytes_equal(0x4000_0000, &[0u8; 64]));
        assert!(env.checked_load(0x4000_0000, MemSize::B8).is_ok());
    }

    #[test]
    fn perfect_hw_degrades_to_single_stores_without_protection() {
        let mut f = Fixture::new();
        let mut env = f.env(true, true);
        env.arm_slot(0x4000_0000);
        assert!(!env.backend.armed_set().unwrap().is_armed(0x4000_0000));
        assert!(env.checked_load(0x4000_0000, MemSize::B8).is_ok());
        env.disarm_slot(0x4000_0000);
        let _ = env;
        let ops = f.rec.drain();
        // arm -> store, checked_load -> load, disarm -> store.
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].kind, rest_isa::OpKind::Store);
        assert_eq!(ops[1].kind, rest_isa::OpKind::Load);
        assert_eq!(ops[2].kind, rest_isa::OpKind::Store);
    }

    #[test]
    fn range_helpers_cover_every_slot() {
        let mut f = Fixture::new();
        let mut env = f.env(true, false);
        env.arm_range(0x4000_0000, 256);
        assert_eq!(env.backend.armed_set().unwrap().armed_count(), 4);
        env.disarm_range(0x4000_0000, 256);
        assert_eq!(env.backend.armed_set().unwrap().armed_count(), 0);
        let _ = env;
        assert_eq!(f.rec.drain().len(), 8);
    }

    #[test]
    fn mte_backend_checks_and_canonicalizes_through_env() {
        use rest_core::{MteBackend, MteMode};
        let mut rng = StdRng::seed_from_u64(11);
        let token = Token::generate(TokenWidth::B64, &mut rng);
        let mut mem = GuestMemory::new();
        let mut rec = TrafficRecorder::new();
        let mut backend = MteBackend::new(MteMode::Sync, 5);
        let tagged = backend.on_alloc(0x4000_0100, 32);
        let mut env = RtEnv {
            mem: &mut mem,
            rec: &mut rec,
            backend: &mut backend,
            token: &token,
            check_backend: true,
            check_shadow: false,
            perfect_hw: false,
            naive_wide_arm: false,
            guest_pc: 0,
            sites: None,
        };
        env.checked_store(tagged, 0xbeef, MemSize::B8).unwrap();
        assert_eq!(env.checked_load(tagged, MemSize::B8).unwrap(), 0xbeef);
        // Functional memory saw the canonical address, not the tagged one.
        assert_eq!(env.mem.read_u64(0x4000_0100), 0xbeef);
        // Walking off the end with a nonzero key faults (unless the
        // drawn tag is 0 and aliases untagged memory — not with seed 5).
        let tag = (tagged >> rest_core::backend::TAG_SHIFT) & 0xF;
        assert_ne!(tag, 0, "seed 5 draws a nonzero first tag");
        let err = env.checked_load(tagged + 32, MemSize::B8).unwrap_err();
        assert!(matches!(err, Violation::Tag(_)), "{err:?}");
    }

    #[test]
    fn runtime_checks_report_the_calling_guest_pc() {
        let mut f = Fixture::new();
        let mut env = f.env(true, false);
        env.guest_pc = 0x1_2340;
        env.arm_slot(0x4000_0040);
        let err = env.checked_load(0x4000_0040, MemSize::B8).unwrap_err();
        assert!(
            matches!(err, Violation::Rest(e) if e.pc == 0x1_2340),
            "runtime check should fault at the guest call site, got {err:?}"
        );
    }

    #[test]
    fn site_table_attributes_env_checks_and_deferred_latches() {
        use rest_core::{MteBackend, MteMode, SiteTable};
        let mut rng = StdRng::seed_from_u64(11);
        let token = Token::generate(TokenWidth::B64, &mut rng);
        let mut mem = GuestMemory::new();
        let mut rec = TrafficRecorder::new();
        let mut backend = MteBackend::new(MteMode::Async, 5);
        let tagged = backend.on_alloc(0x4000_0100, 32);
        let mut sites = SiteTable::new();
        {
            let mut env = RtEnv {
                mem: &mut mem,
                rec: &mut rec,
                backend: &mut backend,
                token: &token,
                check_backend: true,
                check_shadow: false,
                perfect_hw: false,
                naive_wide_arm: false,
                guest_pc: 0x1_0080,
                sites: Some(&mut sites),
            };
            env.note_alloc_site(tagged, 32);
            env.checked_store(tagged, 1, MemSize::B8).unwrap();
            // Async MTE: the out-of-range store latches a deferred
            // fault instead of raising, and the latch is charged to
            // the site.
            env.checked_store(tagged + 32, 1, MemSize::B8).unwrap();
            assert!(env.backend.has_deferred());
        }
        let rows: Vec<_> = sites.rows().map(|(pc, c)| (pc, *c)).collect();
        assert_eq!(rows.len(), 2, "site + out-of-range pseudo-site: {rows:?}");
        assert_eq!(rows[1].0, 0x1_0080);
        assert_eq!(rows[1].1.allocs, 1);
        assert_eq!(rows[1].1.checks, 1);
        assert_eq!(rows[1].1.canonicalizations, 1);
        // The off-the-end granule lies outside the registered range.
        assert_eq!(rows[0].0, 0);
        assert_eq!(rows[0].1.deferred_latches, 1);
        assert_eq!(sites.total_checks(), backend.check_count());
    }
}
